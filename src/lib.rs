//! Root integration-suite crate for the SEALDB reproduction; see README.md.
