//! `sealdb-cli` — an interactive shell over the SEALDB reproduction.
//!
//! ```text
//! cargo run --release --bin sealdb-cli [-- --store sealdb|leveldb|smrdb|leveldb-sets]
//! cargo run --release --bin sealdb-cli -- serve [--seed N] [--metrics-out FILE]
//! ```
//!
//! `serve` skips the shell: it runs a small latency-under-load sweep
//! (multi-client YCSB-A against every main store), prints the latency
//! table, and with `--metrics-out` writes the same JSON artifact
//! `seal-bench --serve-out` produces.
//!
//! Interactive commands:
//!
//! ```text
//! put <key> <value>        insert or overwrite
//! get <key>                point lookup
//! del <key>                delete
//! scan <start> <n>         range scan
//! fill <n>                 load n synthetic records (random order)
//! stats                    WA/AWA/MWA, compactions, sets, bands
//! layout                   dynamic bands and free regions
//! gc                       run fragment garbage collection
//! flush                    flush memtable + quiesce compactions
//! crash                    simulated crash + recovery (reopen)
//! help | quit
//! ```

use sealdb::{Store, StoreConfig, StoreKind};
use std::io::{BufRead, Write};

fn parse_store(args: &[String]) -> StoreKind {
    match args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("leveldb") => StoreKind::LevelDb,
        Some("leveldb-sets") => StoreKind::LevelDbSets,
        Some("smrdb") => StoreKind::SmrDb,
        _ => StoreKind::SealDb,
    }
}

fn print_stats(store: &Store) {
    let s = store.snapshot();
    println!("simulated time : {:.3} s", s.clock_ns as f64 / 1e9);
    println!(
        "amplification  : WA {:.2}  AWA {:.2}  MWA {:.2}",
        s.io.wa(),
        s.io.awa(),
        s.io.mwa()
    );
    println!(
        "compactions    : {} ({} trivial), flushes {}",
        s.compactions.len(),
        s.compactions.iter().filter(|c| c.trivial_move).count(),
        s.flushes
    );
    if let Some(sets) = s.set_stats {
        println!(
            "sets           : {} created / {} live, avg {:.2} tables, {:.2} MiB",
            sets.sets_created,
            sets.sets_live,
            sets.avg_set_files(),
            sets.avg_set_bytes() / (1u64 << 20) as f64
        );
    }
    println!(
        "disk           : {:.1} MiB used span, {:.1} MiB allocated, {} free regions",
        s.high_water as f64 / (1u64 << 20) as f64,
        s.allocated_bytes as f64 / (1u64 << 20) as f64,
        s.free_regions.len()
    );
    let (levels, mem) = store.db.level_summary();
    let tree: Vec<String> = levels
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| *n > 0)
        .map(|(l, (n, b))| format!("L{l}:{n} files/{:.1} MiB", *b as f64 / (1u64 << 20) as f64))
        .collect();
    println!(
        "tree           : mem {:.2} MiB | {}",
        mem as f64 / (1u64 << 20) as f64,
        tree.join("  ")
    );
}

fn print_layout(store: &Store) {
    let s = store.snapshot();
    if s.bands.is_empty() {
        println!("(no dynamic bands — this store does not use them)");
    }
    for (i, (ext, members)) in s.bands.iter().enumerate() {
        println!(
            "band {i:>3}: [{:>9.2}, {:>9.2}) MiB, {members} sets",
            ext.offset as f64 / (1u64 << 20) as f64,
            ext.end() as f64 / (1u64 << 20) as f64
        );
    }
    for ext in &s.free_regions {
        println!(
            "free    : [{:>9.2}, {:>9.2}) MiB ({:.2} MiB)",
            ext.offset as f64 / (1u64 << 20) as f64,
            ext.end() as f64 / (1u64 << 20) as f64,
            ext.len as f64 / (1u64 << 20) as f64
        );
    }
}

/// `sealdb-cli serve`: a non-interactive small-scale serving sweep with
/// a human-readable latency table, mirroring `seal-bench serve` but at a
/// scale that finishes in seconds.
fn run_serve(args: &[String]) {
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    // The canonical sweep scale (~17 s): the same configuration CI uses
    // for BENCH_pr3.json, so the shell shows the headline curve.
    let mut scale = bench::BenchScale::serving();
    if let Some(seed) = flag("--seed").and_then(|s| s.parse().ok()) {
        scale.seed = seed;
    }
    println!(
        "serving sweep: YCSB-A, {} clients, {} preloaded records, {} ops per load point, seed {}",
        bench::serve_run::CLIENTS,
        scale.load_records(),
        scale.ycsb_ops,
        scale.seed
    );
    let sweeps = match bench::serve_run::run_sweep(&scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for sweep in &sweeps {
        println!(
            "\n{} — saturation {:.0} op/s (closed loop, zero think time)",
            sweep.store, sweep.saturation_ops_per_sec
        );
        println!(
            "  {:>11} {:>11} {:>9} {:>9} {:>9} {:>7} {:>7} {:>6}",
            "offered/s", "served/s", "p50 ms", "p95 ms", "p99 ms", "depth", "stalls", "group"
        );
        for p in &sweep.points {
            let r = &p.result;
            println!(
                "  {:>11.0} {:>11.0} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>7} {:>6.2}",
                p.offered_ops_per_sec,
                r.throughput_ops_per_sec,
                r.latency.p50_ns as f64 / 1e6,
                r.latency.p95_ns as f64 / 1e6,
                r.latency.p99_ns as f64 / 1e6,
                r.queue_depth_max,
                r.stalls.total_count(),
                r.avg_group_size()
            );
        }
    }
    if let Some(path) = flag("--metrics-out") {
        let json = bench::serve_run::sweep_to_json(&scale, &sweeps);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write serve artifact {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote serve artifact {path} ({} bytes)", json.len());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().skip(1).any(|a| a == "serve") {
        run_serve(&args);
        return;
    }
    let kind = parse_store(&args);
    let mut store = StoreConfig::new(kind, 256 << 10, 2 << 30)
        .build()
        .expect("build store");
    println!(
        "{} on a simulated 2 GiB SMR drive (256 KiB SSTables). Type `help`.",
        store.name()
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("{}> ", store.name());
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = match parts.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("put get del scan fill stats layout gc flush crash quit");
                Ok(())
            }
            ["put", k, v] => store.put(k.as_bytes(), v.as_bytes()),
            ["get", k] => {
                match store.get(k.as_bytes()) {
                    Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                    Ok(None) => println!("(not found)"),
                    Err(e) => println!("error: {e}"),
                }
                Ok(())
            }
            ["del", k] => store.delete(k.as_bytes()),
            ["scan", start, n] => {
                let n: usize = n.parse().unwrap_or(10);
                match store.scan(start.as_bytes(), n) {
                    Ok(rows) => {
                        for (k, v) in rows {
                            println!(
                                "{} = {}",
                                String::from_utf8_lossy(&k),
                                String::from_utf8_lossy(&v[..v.len().min(40)])
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                Ok(())
            }
            ["fill", n] => {
                let n: u64 = n.parse().unwrap_or(1000);
                let gen = workloads::RecordGenerator::new(16, 512, 7);
                let res = workloads::fill_random(&mut store, &gen, n, 11);
                match res {
                    Ok(r) => {
                        println!(
                            "{} records in {:.2} simulated s ({:.0} op/s)",
                            n,
                            r.sim_ns as f64 / 1e9,
                            r.ops_per_sec()
                        );
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            ["stats"] => {
                print_stats(&store);
                Ok(())
            }
            ["layout"] => {
                print_layout(&store);
                Ok(())
            }
            ["gc"] => match store.collect_garbage(&lsm_core::GcConfig::default()) {
                Ok(r) => {
                    println!(
                        "relocated {} sets, moved {:.2} MiB, fragments {:.2} -> {:.2} MiB",
                        r.relocated_sets,
                        r.moved_bytes as f64 / (1u64 << 20) as f64,
                        r.fragments_before as f64 / (1u64 << 20) as f64,
                        r.fragments_after as f64 / (1u64 << 20) as f64
                    );
                    Ok(())
                }
                Err(e) => Err(e),
            },
            ["flush"] => store.flush(),
            ["crash"] => {
                store = store.reopen().expect("recovery");
                println!("crashed and recovered; unsynced writes were lost (sync=false semantics)");
                Ok(())
            }
            other => {
                println!("unknown command {other:?}; try `help`");
                Ok(())
            }
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
}
