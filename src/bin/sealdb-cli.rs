//! `sealdb-cli` — an interactive shell over the SEALDB reproduction.
//!
//! ```text
//! cargo run --release --bin sealdb-cli [-- --store sealdb|leveldb|smrdb|leveldb-sets]
//! ```
//!
//! Commands:
//!
//! ```text
//! put <key> <value>        insert or overwrite
//! get <key>                point lookup
//! del <key>                delete
//! scan <start> <n>         range scan
//! fill <n>                 load n synthetic records (random order)
//! stats                    WA/AWA/MWA, compactions, sets, bands
//! layout                   dynamic bands and free regions
//! gc                       run fragment garbage collection
//! flush                    flush memtable + quiesce compactions
//! crash                    simulated crash + recovery (reopen)
//! help | quit
//! ```

use sealdb::{Store, StoreConfig, StoreKind};
use std::io::{BufRead, Write};

fn parse_store(args: &[String]) -> StoreKind {
    match args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("leveldb") => StoreKind::LevelDb,
        Some("leveldb-sets") => StoreKind::LevelDbSets,
        Some("smrdb") => StoreKind::SmrDb,
        _ => StoreKind::SealDb,
    }
}

fn print_stats(store: &Store) {
    let s = store.snapshot();
    println!("simulated time : {:.3} s", s.clock_ns as f64 / 1e9);
    println!(
        "amplification  : WA {:.2}  AWA {:.2}  MWA {:.2}",
        s.io.wa(),
        s.io.awa(),
        s.io.mwa()
    );
    println!(
        "compactions    : {} ({} trivial), flushes {}",
        s.compactions.len(),
        s.compactions.iter().filter(|c| c.trivial_move).count(),
        s.flushes
    );
    if let Some(sets) = s.set_stats {
        println!(
            "sets           : {} created / {} live, avg {:.2} tables, {:.2} MiB",
            sets.sets_created,
            sets.sets_live,
            sets.avg_set_files(),
            sets.avg_set_bytes() / (1u64 << 20) as f64
        );
    }
    println!(
        "disk           : {:.1} MiB used span, {:.1} MiB allocated, {} free regions",
        s.high_water as f64 / (1u64 << 20) as f64,
        s.allocated_bytes as f64 / (1u64 << 20) as f64,
        s.free_regions.len()
    );
    let (levels, mem) = store.db.level_summary();
    let tree: Vec<String> = levels
        .iter()
        .enumerate()
        .filter(|(_, (n, _))| *n > 0)
        .map(|(l, (n, b))| format!("L{l}:{n} files/{:.1} MiB", *b as f64 / (1u64 << 20) as f64))
        .collect();
    println!("tree           : mem {:.2} MiB | {}", mem as f64 / (1u64 << 20) as f64, tree.join("  "));
}

fn print_layout(store: &Store) {
    let s = store.snapshot();
    if s.bands.is_empty() {
        println!("(no dynamic bands — this store does not use them)");
    }
    for (i, (ext, members)) in s.bands.iter().enumerate() {
        println!(
            "band {i:>3}: [{:>9.2}, {:>9.2}) MiB, {members} sets",
            ext.offset as f64 / (1u64 << 20) as f64,
            ext.end() as f64 / (1u64 << 20) as f64
        );
    }
    for ext in &s.free_regions {
        println!(
            "free    : [{:>9.2}, {:>9.2}) MiB ({:.2} MiB)",
            ext.offset as f64 / (1u64 << 20) as f64,
            ext.end() as f64 / (1u64 << 20) as f64,
            ext.len as f64 / (1u64 << 20) as f64
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = parse_store(&args);
    let mut store = StoreConfig::new(kind, 256 << 10, 2 << 30)
        .build()
        .expect("build store");
    println!(
        "{} on a simulated 2 GiB SMR drive (256 KiB SSTables). Type `help`.",
        store.name()
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("{}> ", store.name());
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = match parts.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!("put get del scan fill stats layout gc flush crash quit");
                Ok(())
            }
            ["put", k, v] => store.put(k.as_bytes(), v.as_bytes()),
            ["get", k] => {
                match store.get(k.as_bytes()) {
                    Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                    Ok(None) => println!("(not found)"),
                    Err(e) => println!("error: {e}"),
                }
                Ok(())
            }
            ["del", k] => store.delete(k.as_bytes()),
            ["scan", start, n] => {
                let n: usize = n.parse().unwrap_or(10);
                match store.scan(start.as_bytes(), n) {
                    Ok(rows) => {
                        for (k, v) in rows {
                            println!(
                                "{} = {}",
                                String::from_utf8_lossy(&k),
                                String::from_utf8_lossy(&v[..v.len().min(40)])
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                Ok(())
            }
            ["fill", n] => {
                let n: u64 = n.parse().unwrap_or(1000);
                let gen = workloads::RecordGenerator::new(16, 512, 7);
                let res = workloads::fill_random(&mut store, &gen, n, 11);
                match res {
                    Ok(r) => {
                        println!("{} records in {:.2} simulated s ({:.0} op/s)", n, r.sim_ns as f64 / 1e9, r.ops_per_sec());
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            ["stats"] => {
                print_stats(&store);
                Ok(())
            }
            ["layout"] => {
                print_layout(&store);
                Ok(())
            }
            ["gc"] => match store.collect_garbage(&lsm_core::GcConfig::default()) {
                Ok(r) => {
                    println!(
                        "relocated {} sets, moved {:.2} MiB, fragments {:.2} -> {:.2} MiB",
                        r.relocated_sets,
                        r.moved_bytes as f64 / (1u64 << 20) as f64,
                        r.fragments_before as f64 / (1u64 << 20) as f64,
                        r.fragments_after as f64 / (1u64 << 20) as f64
                    );
                    Ok(())
                }
                Err(e) => Err(e),
            },
            ["flush"] => store.flush(),
            ["crash"] => {
                store = store.reopen().expect("recovery");
                println!("crashed and recovered; unsynced writes were lost (sync=false semantics)");
                Ok(())
            }
            other => {
                println!("unknown command {other:?}; try `help`");
                Ok(())
            }
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
}
