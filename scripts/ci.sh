#!/usr/bin/env bash
# Full CI gate: formatting, release build, complete test suite,
# lint-clean clippy, and the workspace's own static-analysis pass.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# seal-lint: workspace determinism/recovery-safety invariants (DESIGN.md §11).
# Any finding is a hard failure.
cargo run -q -p seal-lint --release

# Observability artifact: produce the metrics trajectory at smoke scale
# and schema-check it (fails on missing keys or any NaN/Inf leak).
cargo run -q --release -p bench -- --metrics-out BENCH_pr2.json --tiny
cargo run -q --release -p bench -- --metrics-check BENCH_pr2.json

# Serving artifact: the canonical latency-under-load sweep, then the
# schema check (required keys, no NaN/Inf) and the headline property —
# SEALDB sustains the highest saturation throughput of the three stores.
cargo run -q --release -p bench -- --serve-out BENCH_pr3.json --serving
cargo run -q --release -p bench -- --serve-check BENCH_pr3.json
sats=$(grep -o '"saturation_ops_per_sec":[0-9.]*' BENCH_pr3.json | cut -d: -f2)
echo "$sats" | awk 'NR==1{l=$1} NR==2{m=$1} NR==3{s=$1}
    END { if (NR != 3 || s <= l || s <= m) {
              printf "SEALDB saturation %s not highest (LevelDB %s, SMRDB %s)\n", s, l, m
              exit 1
          }
          printf "serve saturation ok: SEALDB %s > LevelDB %s, SMRDB %s\n", s, l, m }'

# Scrub artifact: plant latent sector errors, sweep scrub budget x fault
# count, then check the durability invariant — scrub-on cells lose ZERO
# keys while the scrub-off baselines lose a deterministic set (the
# checker enforces this; the awk pass restates it as a visible gate).
cargo run -q --release -p bench -- --scrub-out BENCH_pr5.json --tiny
cargo run -q --release -p bench -- --scrub-check BENCH_pr5.json
grep -o '"scrub":[a-z]*,"scrub_budget":[0-9]*,"fault_regions":[0-9]*,"lost_keys":[0-9]*' BENCH_pr5.json |
awk -F'[:,]' '$2=="true" && $8 != 0 { printf "scrub-on cell lost %s keys\n", $8; bad=1 }
    $2=="true" { on++ } $2=="false" { off_lost+=$8 }
    END { if (bad) exit 1
          if (on == 0 || off_lost == 0) { print "scrub sweep did not exercise the invariant"; exit 1 }
          printf "scrub durability ok: %d scrub-on cells lost 0 keys, baselines lost %d\n", on, off_lost }'
