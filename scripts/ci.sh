#!/usr/bin/env bash
# Full CI gate: formatting, release build, complete test suite,
# lint-clean clippy, and the workspace's own static-analysis pass.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# seal-lint: workspace determinism/recovery-safety/durability-ordering
# invariants (DESIGN.md §11, §16). Any non-baselined finding is a hard
# failure; stale baseline entries are warned on stderr.
cargo run -q -p seal-lint --release -- --baseline scripts/lint-baseline.txt

# The lint's machine-readable output must be byte-deterministic and
# carry the ordering rules: run the fixture tree twice in JSON mode
# (exit 1 expected — the fixtures are known-bad) and compare.
cargo run -q -p seal-lint --release -- --root crates/lint/tests/fixtures --everything --format json > lint-fixtures-a.json || true
cargo run -q -p seal-lint --release -- --root crates/lint/tests/fixtures --everything --format json > lint-fixtures-b.json || true
cmp lint-fixtures-a.json lint-fixtures-b.json
grep -q '"rule":"checkpoint-before-pointer"' lint-fixtures-a.json
grep -q '"rule":"recycle-after-fixups-durable"' lint-fixtures-a.json
rm -f lint-fixtures-a.json lint-fixtures-b.json
echo "seal-lint json self-check ok"

# Runtime half of the ordering contract: the debug-profile crash-point
# suites run with the OrderingAuditor live (debug_assert!s active), so
# a violated happens-before edge fails here even if every recovered
# value happens to read back correctly. (`cargo test --workspace` above
# also runs debug, but these suites are the designated ordering oracle —
# keep them green by name.)
cargo test -q --test vlog_crash_points --test crash_points --test recovery_hardening

# Observability artifact: produce the metrics trajectory at smoke scale
# and schema-check it (fails on missing keys or any NaN/Inf leak).
cargo run -q --release -p bench -- --metrics-out BENCH_pr2.json --tiny
cargo run -q --release -p bench -- --metrics-check BENCH_pr2.json

# Serving artifact: the canonical latency-under-load sweep, then the
# schema check (required keys, no NaN/Inf) and the headline property —
# SEALDB sustains the highest saturation throughput of the three stores.
cargo run -q --release -p bench -- --serve-out BENCH_pr3.json --serving
cargo run -q --release -p bench -- --serve-check BENCH_pr3.json
sats=$(grep -o '"saturation_ops_per_sec":[0-9.]*' BENCH_pr3.json | cut -d: -f2)
echo "$sats" | awk 'NR==1{l=$1} NR==2{m=$1} NR==3{s=$1}
    END { if (NR != 3 || s <= l || s <= m) {
              printf "SEALDB saturation %s not highest (LevelDB %s, SMRDB %s)\n", s, l, m
              exit 1
          }
          printf "serve saturation ok: SEALDB %s > LevelDB %s, SMRDB %s\n", s, l, m }'

# Scrub artifact: plant latent sector errors, sweep scrub budget x fault
# count, then check the durability invariant — scrub-on cells lose ZERO
# keys while the scrub-off baselines lose a deterministic set (the
# checker enforces this; the awk pass restates it as a visible gate).
cargo run -q --release -p bench -- --scrub-out BENCH_pr5.json --tiny
cargo run -q --release -p bench -- --scrub-check BENCH_pr5.json
grep -o '"scrub":[a-z]*,"scrub_budget":[0-9]*,"fault_regions":[0-9]*,"lost_keys":[0-9]*' BENCH_pr5.json |
awk -F'[:,]' '$2=="true" && $8 != 0 { printf "scrub-on cell lost %s keys\n", $8; bad=1 }
    $2=="true" { on++ } $2=="false" { off_lost+=$8 }
    END { if (bad) exit 1
          if (on == 0 || off_lost == 0) { print "scrub sweep did not exercise the invariant"; exit 1 }
          printf "scrub durability ok: %d scrub-on cells lost 0 keys, baselines lost %d\n", on, off_lost }'

# Replication artifact: ship-mode x ack-policy x link-latency x kill-point
# failover sweep, then the schema check (cell grid, RTO monotone in link
# latency) and the headline RPO gate — every quorum-ack cell lost ZERO
# acked writes, while the primary-only baselines lose their unshipped
# tail (the checker enforces this; the awk pass restates it as a gate).
cargo run -q --release -p bench -- --replicate-out BENCH_pr6.json --tiny
cargo run -q --release -p bench -- --replicate-check BENCH_pr6.json
grep -o '"ack":"[a-z]*","link_latency_ns":[0-9]*,"kill_after":[0-9]*,"writes":[0-9]*,"acked_writes":[0-9]*,"acked_lost":[0-9]*' BENCH_pr6.json |
awk -F'[:,]' '{ gsub(/"/, "") }
    $2=="quorum" && $12 != 0 { printf "quorum cell lost %s acked writes\n", $12; bad=1 }
    $2=="quorum" { q++ } $2=="primary" { p_lost+=$12 }
    END { if (bad) exit 1
          if (q == 0 || p_lost == 0) { print "replication sweep did not exercise the invariant"; exit 1 }
          printf "replication rpo ok: %d quorum cells lost 0 acked writes, primary-only baselines lost %d\n", q, p_lost }'

# Shard artifact: the multi-shard scale-out sweep at the canonical
# serving scale (1/2/4/8-shard saturation cells plus a mid-run split
# migration), then the schema check and two visible gates — aggregate
# saturation rises strictly with shard count, and the migration loses
# ZERO acked keys while actually moving data.
cargo run -q --release -p bench -- --shard-out BENCH_pr7.json --serving
cargo run -q --release -p bench -- --shard-check BENCH_pr7.json
grep -o '"saturation_ops_per_sec":[0-9.]*' BENCH_pr7.json | cut -d: -f2 |
awk 'NR>1 && $1 <= prev { printf "shard saturation not strictly increasing: %s after %s\n", $1, prev; exit 1 }
    { prev=$1; n++ }
    END { if (n != 4) { printf "expected 4 shard cells, saw %d\n", n; exit 1 }
          printf "shard scale-out ok: %d cells, saturation strictly increasing\n", n }'
grep -o '"moved_keys":[0-9]*,"moved_bytes":[0-9]*,"batches":[0-9]*,"duration_ns":[0-9]*,"checked_keys":[0-9]*,"lost_keys":[0-9]*' BENCH_pr7.json |
awk -F'[:,]' '{ moved=$2; lost=$12 }
    END { if (NR != 1) { print "expected exactly one migration cell"; exit 1 }
          if (lost != 0) { printf "migration lost %s acked keys\n", lost; exit 1 }
          if (moved == 0) { print "migration moved no keys"; exit 1 }
          printf "shard migration ok: moved %s keys, lost 0\n", moved }'

# Key-value-separation artifact: update-heavy YCSB A/F against inline vs
# value-log SEALDB builds in the large-value regime, then the schema
# check and the headline gates — separation cuts update-WA strictly at
# every cell (>=2x on workload A), sustains a higher saturation knee,
# and no cell loses a single key.
cargo run -q --release -p bench -- --vlog-out BENCH_pr8.json --tiny --value 4096 --load-mb 4 --ycsb-ops 4000
cargo run -q --release -p bench -- --vlog-check BENCH_pr8.json
grep -o '"workload":"[AF]","vlog":[a-z]*,"update_wa":[0-9.]*,[^}]*"saturation_ops_per_sec":[0-9.]*,[^}]*"lost_keys":[0-9]*' BENCH_pr8.json |
awk -F'[:,]' '{ gsub(/"/, "") }
    { w=$2; v=$4; wa=$6; lost=$NF
      for (i = 1; i <= NF; i++) if ($i == "saturation_ops_per_sec") sat=$(i+1)
      if (v == "true") { vwa[w]=wa; vsat[w]=sat } else { iwa[w]=wa; isat[w]=sat }
      if (lost != 0) { printf "vlog cell %s/%s lost %s keys\n", w, v, lost; bad=1 } }
    END { if (bad) exit 1
          if (!("A" in vwa) || !("F" in vwa)) { print "vlog sweep missing cells"; exit 1 }
          for (w in vwa) {
              if (vwa[w] >= iwa[w]) { printf "workload %s: vlog WA %s not below inline %s\n", w, vwa[w], iwa[w]; exit 1 }
              if (vsat[w] <= isat[w]) { printf "workload %s: vlog knee %s not above inline %s\n", w, vsat[w], isat[w]; exit 1 }
          }
          if (vwa["A"] * 2 > iwa["A"]) { printf "workload A: vlog WA %s not 2x below inline %s\n", vwa["A"], iwa["A"]; exit 1 }
          printf "vlog separation ok: A WA %s vs %s, F WA %s vs %s, knees higher\n", vwa["A"], iwa["A"], vwa["F"], iwa["F"] }'

# Chaos artifact: CHAOS_SCHEDULES (default 25) seeded random fault
# schedules over the composed stack — shard routing x replication x
# key-value separation x SMR device faults — each followed by the
# end-to-end durability oracle. Deliberately a DEBUG-profile run: debug
# builds arm the ordering auditors (DESIGN.md par. 16), so every
# schedule doubles as a happens-before oracle. The artifact is
# regenerated twice and must be byte-identical (same seeds, same
# schedules, same report), then the schema check and a visible gate:
# zero oracle violations and coverage spanning >=4 device and >=3
# cluster fault classes.
cargo run -q -p bench -- --chaos-out BENCH_pr10.json --tiny --chaos-schedules "${CHAOS_SCHEDULES:-25}"
cargo run -q -p bench -- --chaos-out BENCH_pr10.json.rerun --tiny --chaos-schedules "${CHAOS_SCHEDULES:-25}"
cmp BENCH_pr10.json BENCH_pr10.json.rerun
rm BENCH_pr10.json.rerun
cargo run -q -p bench -- --chaos-check BENCH_pr10.json
grep -o '"violations_total":[0-9]*' BENCH_pr10.json | cut -d: -f2 |
awk '{ v=$1 } END { if (v != 0) { printf "chaos oracle reported %d violations\n", v; exit 1 }
      print "chaos oracle ok: 0 violations" }'
grep -o '"device":{[^}]*}' BENCH_pr10.json | tr ',' '\n' | grep -c ':' |
awk '{ if ($1 < 4) { printf "chaos coverage spans only %d device fault classes\n", $1; exit 1 }
       printf "chaos device coverage ok: %d classes\n", $1 }'
grep -o '"cluster":{[^}]*}' BENCH_pr10.json | tr ',' '\n' | grep -c ':' |
awk '{ if ($1 < 3) { printf "chaos coverage spans only %d cluster fault classes\n", $1; exit 1 }
       printf "chaos cluster coverage ok: %d classes\n", $1 }'
