#!/usr/bin/env bash
# Full CI gate: release build, complete test suite, lint-clean clippy.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Observability artifact: produce the metrics trajectory at smoke scale
# and schema-check it (fails on missing keys or any NaN/Inf leak).
cargo run -q --release -p bench -- --metrics-out BENCH_pr2.json --tiny
cargo run -q --release -p bench -- --metrics-check BENCH_pr2.json
