#!/usr/bin/env bash
# Full CI gate: release build, complete test suite, lint-clean clippy.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
