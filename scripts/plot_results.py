#!/usr/bin/env python3
"""Plot the CSV series produced by `seal-bench` into the paper's figures.

Usage:
    cargo run --release -p bench -- all --out results
    python3 scripts/plot_results.py results [outdir]

Requires matplotlib. Each figure mirrors the layout of the corresponding
figure in the paper (IPDPS 2018).
"""

import csv
import os
import sys
from collections import defaultdict

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:
    sys.exit("matplotlib required: pip install matplotlib")

STORES = ["LevelDB", "LevelDB+sets", "SMRDB", "SEALDB"]


def read_csv(path):
    with open(path) as f:
        return list(csv.DictReader(f))


def save(fig, outdir, name):
    path = os.path.join(outdir, name)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def plot_layout(rows, outdir, name, title):
    """Fig. 2 / Fig. 11: SSTable placement scatter per compaction."""
    fig, ax = plt.subplots(figsize=(7, 4))
    xs = [int(r["compaction"]) for r in rows]
    ys = [float(r["offset_mb"]) for r in rows]
    ax.scatter(xs, ys, s=2, alpha=0.4, linewidths=0)
    ax.set_xlabel("compaction")
    ax.set_ylabel("physical offset (MiB)")
    ax.set_title(title)
    save(fig, outdir, name)


def plot_band_sweep(rows, outdir):
    """Fig. 3: tables/bands per compaction and WA/MWA vs band size."""
    fig, (a, b) = plt.subplots(1, 2, figsize=(9, 3.5))
    x = [float(r["band_mb"]) for r in rows]
    a.plot(x, [float(r["avg_sstables_per_compaction"]) for r in rows], "o-", label="SSTables")
    a.plot(x, [float(r["avg_bands_per_compaction"]) for r in rows], "s-", label="bands")
    a.set_xlabel("band size (MiB)")
    a.set_ylabel("avg per compaction")
    a.legend()
    a.set_title("(a) SSTables and bands per compaction")
    b.plot(x, [float(r["wa"]) for r in rows], "o-", label="WA")
    b.plot(x, [float(r["mwa"]) for r in rows], "s-", label="MWA")
    b.set_xlabel("band size (MiB)")
    b.set_ylabel("amplification")
    b.legend()
    b.set_title("(b) WA and MWA")
    save(fig, outdir, "fig03_band_sweep.png")


def plot_micro(rows, outdir, name, title):
    """Fig. 8 / Fig. 14: normalised micro-benchmark bars."""
    phases = ["fillseq", "fillrandom", "readrandom", "readseq"]
    data = defaultdict(dict)
    for r in rows:
        data[r["store"]][r["phase"]] = float(r["normalized_to_first"])
    stores = [s for s in STORES if s in data]
    fig, ax = plt.subplots(figsize=(8, 4))
    width = 0.8 / len(stores)
    for i, store in enumerate(stores):
        xs = [j + i * width for j in range(len(phases))]
        ys = [data[store].get(p, 0) for p in phases]
        bars = ax.bar(xs, ys, width, label=store)
        ax.bar_label(bars, fmt="%.2fx", fontsize=7)
    ax.set_xticks([j + width * (len(stores) - 1) / 2 for j in range(len(phases))])
    ax.set_xticklabels(phases)
    ax.set_ylabel("throughput normalised to LevelDB")
    ax.set_title(title)
    ax.legend()
    save(fig, outdir, name)


def plot_ycsb(rows, outdir):
    """Fig. 9: YCSB workloads."""
    workloads = sorted({r["workload"] for r in rows})
    data = defaultdict(dict)
    for r in rows:
        data[r["store"]][r["workload"]] = float(r["ops_per_sec"])
    stores = [s for s in STORES if s in data]
    fig, ax = plt.subplots(figsize=(8, 4))
    width = 0.8 / len(stores)
    for i, store in enumerate(stores):
        xs = [j + i * width for j in range(len(workloads))]
        ax.bar(xs, [data[store].get(w, 0) for w in workloads], width, label=store)
    ax.set_xticks([j + width * (len(stores) - 1) / 2 for j in range(len(workloads))])
    ax.set_xticklabels([f"YCSB-{w}" for w in workloads])
    ax.set_ylabel("ops per simulated second")
    ax.set_title("Fig. 9 — YCSB macro-benchmark")
    ax.legend()
    save(fig, outdir, "fig09_ycsb.png")


def plot_compactions(rows, outdir):
    """Fig. 10(a): per-compaction latency series."""
    fig, ax = plt.subplots(figsize=(8, 4))
    for store in STORES:
        series = [(int(r["compaction"]), float(r["latency_ms"])) for r in rows if r["store"] == store]
        if series:
            ax.plot(*zip(*series), ".", markersize=3, alpha=0.6, label=store)
    ax.set_yscale("log")
    ax.set_xlabel("compaction")
    ax.set_ylabel("latency (ms, log)")
    ax.set_title("Fig. 10(a) — compaction latency during random load")
    ax.legend()
    save(fig, outdir, "fig10_compactions.png")


def plot_wa(rows, outdir):
    """Fig. 12: WA/AWA/MWA bars."""
    fig, ax = plt.subplots(figsize=(7, 4))
    metrics = ["wa", "awa", "mwa"]
    stores = [r["store"] for r in rows]
    width = 0.8 / len(stores)
    for i, r in enumerate(rows):
        xs = [j + i * width for j in range(len(metrics))]
        bars = ax.bar(xs, [float(r[m]) for m in metrics], width, label=r["store"])
        ax.bar_label(bars, fmt="%.1f", fontsize=8)
    ax.set_xticks([j + width * (len(stores) - 1) / 2 for j in range(len(metrics))])
    ax.set_xticklabels([m.upper() for m in metrics])
    ax.set_title("Fig. 12 — write amplification")
    ax.legend()
    save(fig, outdir, "fig12_write_amplification.png")


def plot_bands(rows, outdir):
    """Fig. 13: dynamic band layout."""
    fig, ax = plt.subplots(figsize=(9, 2.5))
    colors = {"band": "#2a6fb0", "fragment": "#d1402f", "free": "#bbbbbb"}
    for r in rows:
        ax.barh(
            0,
            float(r["len_mb"]),
            left=float(r["offset_mb"]),
            height=0.6,
            color=colors.get(r["kind"], "#888888"),
            edgecolor="white",
            linewidth=0.2,
        )
    ax.set_yticks([])
    ax.set_xlabel("physical offset (MiB)")
    ax.set_title("Fig. 13 — dynamic bands (blue), fragments (red), large free (grey)")
    save(fig, outdir, "fig13_dynamic_bands.png")


def plot_hasmr(rows, outdir):
    """HA-SMR latency series (bimodality)."""
    fig, ax = plt.subplots(figsize=(8, 3.5))
    xs = [int(r["op"]) for r in rows]
    ys = [max(float(r["latency_ms"]), 1e-4) for r in rows]
    ax.plot(xs, ys, ".", markersize=2, alpha=0.5)
    ax.set_yscale("log")
    ax.set_xlabel("operation")
    ax.set_ylabel("latency (ms, log)")
    ax.set_title("LevelDB on HA-SMR — cleaning stalls (paper §II-C)")
    save(fig, outdir, "hasmr_latency_series.png")


def main():
    indir = sys.argv[1] if len(sys.argv) > 1 else "results"
    outdir = sys.argv[2] if len(sys.argv) > 2 else indir
    os.makedirs(outdir, exist_ok=True)
    plots = {
        "fig02_leveldb_layout.csv": lambda r: plot_layout(
            r, outdir, "fig02_leveldb_layout.png", "Fig. 2 — LevelDB SSTable placement per compaction"
        ),
        "fig03_band_sweep.csv": lambda r: plot_band_sweep(r, outdir),
        "fig08_micro.csv": lambda r: plot_micro(r, outdir, "fig08_micro.png", "Fig. 8 — micro-benchmarks"),
        "fig09_ycsb.csv": lambda r: plot_ycsb(r, outdir),
        "fig10_compactions.csv": lambda r: plot_compactions(r, outdir),
        "fig11_sealdb_layout.csv": lambda r: plot_layout(
            r, outdir, "fig11_sealdb_layout.png", "Fig. 11 — SEALDB set placement per compaction"
        ),
        "fig12_write_amplification.csv": lambda r: plot_wa(r, outdir),
        "fig13_dynamic_bands.csv": lambda r: plot_bands(r, outdir),
        "fig14_contribution.csv": lambda r: plot_micro(
            r, outdir, "fig14_contribution.png", "Fig. 14 — contribution of sets vs dynamic bands"
        ),
        "hasmr_latency_series.csv": lambda r: plot_hasmr(r, outdir),
    }
    for name, fn in plots.items():
        path = os.path.join(indir, name)
        if os.path.exists(path):
            fn(read_csv(path))
        else:
            print(f"skip {name} (not found)")


if __name__ == "__main__":
    main()
