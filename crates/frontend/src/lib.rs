//! # seal-front — a deterministic multi-client serving front-end
//!
//! The paper's db_bench-style experiments measure one client issuing
//! operations back to back, so latency is pure service time. A serving
//! deployment looks different: many clients, an offered load that does
//! not care how fast the store is, a queue in front of the disk, and
//! background compaction competing with foreground requests. This crate
//! models that as a discrete-event simulation on the store's *simulated*
//! clock — no threads, no wall time, so a (config, seed) pair always
//! produces byte-identical results.
//!
//! The moving pieces, each borrowed from LevelDB's serving machinery:
//!
//! * **Virtual clients** issue YCSB-mix operations either *open-loop*
//!   (seeded Poisson arrivals at a target rate, [`ArrivalProcess`]) or
//!   *closed-loop* (wait for completion, think, reissue).
//! * **Group commit** — writes waiting in the queue behind a serving
//!   write are merged into its batch (`BuildBatchGroup`): one WAL
//!   append, one sync, one contiguous sequence range for the group.
//! * **Write backpressure** — the store runs in deferred-compaction
//!   mode, so L0 slowdown/stop triggers and memtable-full stalls hit
//!   the serving path exactly as they would a real writer, and the
//!   front-end drives [`sealdb::Store::compact_step`] during idle gaps,
//!   standing in for the background compaction thread.

use lsm_core::util::rng::XorShift64;
use lsm_core::{Result, ScrubConfig, StallStats, WriteBatch};
use sealdb::Store;
use smr_sim::ObsLayer;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use workloads::distributions::{Distribution, Latest, ScrambledZipfian, Uniform};
use workloads::ycsb::{Dist, WorkloadSpec};
use workloads::{ArrivalProcess, InterArrival, RecordGenerator};

/// Configuration of one serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of virtual clients.
    pub clients: usize,
    /// Total operations to serve across all clients.
    pub total_ops: u64,
    /// Records preloaded into the store (the YCSB keyspace).
    pub record_count: u64,
    /// Operation mix and key distribution.
    pub spec: WorkloadSpec,
    /// Traffic shape (per client).
    pub arrival: ArrivalProcess,
    /// Seed for every RNG stream the run owns.
    pub seed: u64,
    /// Group-commit size cap in batch wire bytes (LevelDB: 1 MiB).
    pub max_group_bytes: usize,
    /// Whether idle gaps run background compaction steps.
    pub idle_compaction: bool,
    /// In-request retries for a point read that errors (latent sector
    /// error, corrupt block). Each retry waits `retry_backoff_ns` (then
    /// doubling) of simulated time before reissuing.
    pub read_retries: u32,
    /// Backoff before the first read retry, ns; doubles per retry up to
    /// [`ServeConfig::retry_backoff_max_ns`].
    pub retry_backoff_ns: u64,
    /// Cap on the doubling retry backoff, ns: long fault bursts (or a
    /// replication failover holding reads off) must not balloon a
    /// single wait past the sweep horizon. Values below
    /// `retry_backoff_ns` clamp up to it.
    pub retry_backoff_max_ns: u64,
    /// Failed point reads a client tolerates before giving up and
    /// abandoning the rest of its operations (degraded-mode SLO: a
    /// client facing a broken shard walks away rather than hammering
    /// it). Failed reads are served as misses either way.
    pub client_error_budget: u64,
    /// When non-zero, idle gaps also run one scrub step with this byte
    /// budget, so repair proceeds under load in the space compaction
    /// leaves over. Zero disables in-flight scrubbing.
    pub idle_scrub_bytes: u64,
    /// When non-zero and the store has a value log, idle gaps also run
    /// one cooperative GC step with this byte budget
    /// ([`sealdb::Store::vlog_gc_step`]), standing in for the value
    /// log's background GC thread the same way `idle_compaction` stands
    /// in for the compaction thread. Zero disables in-flight vlog GC.
    pub idle_vlog_gc_bytes: u64,
}

impl ServeConfig {
    /// A serving run with the default group cap and idle compaction on.
    pub fn new(
        spec: WorkloadSpec,
        arrival: ArrivalProcess,
        clients: usize,
        total_ops: u64,
        record_count: u64,
    ) -> Self {
        ServeConfig {
            clients,
            total_ops,
            record_count,
            spec,
            arrival,
            seed: 0x5EA1F007,
            max_group_bytes: 1 << 20,
            idle_compaction: true,
            read_retries: 2,
            retry_backoff_ns: 500_000,
            retry_backoff_max_ns: 8_000_000,
            client_error_budget: 64,
            idle_scrub_bytes: 0,
            idle_vlog_gc_bytes: 0,
        }
    }

    /// Same run with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Exact latency summary from a complete sample vector (the obs layer's
/// histograms are bucketed; serving percentiles are reported exactly).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 95th percentile, ns.
    pub p95_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Summarises a sample slice (sorted in place, nearest-rank
    /// percentiles).
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |q: f64| -> u64 {
            let idx = ((n as f64 * q).ceil() as usize).clamp(1, n) - 1;
            samples[idx]
        };
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        LatencySummary {
            count: n as u64,
            mean_ns: sum as f64 / n as f64,
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            p99_ns: rank(0.99),
            max_ns: samples[n - 1],
        }
    }
}

/// Everything one serving run measured.
#[derive(Clone, Debug)]
pub struct ServeResult {
    /// Display name of the store served.
    pub store: &'static str,
    /// Operations completed.
    pub ops: u64,
    /// Simulated duration of the serving phase, ns.
    pub sim_ns: u64,
    /// Completed operations per simulated second.
    pub throughput_ops_per_sec: f64,
    /// End-to-end latency (arrival → completion): queueing + service.
    pub latency: LatencySummary,
    /// Queueing delay alone (arrival → service start).
    pub queue_delay: LatencySummary,
    /// Deepest request queue observed at a service start.
    pub queue_depth_max: usize,
    /// Mean queue depth over service starts.
    pub queue_depth_mean: f64,
    /// `Store::write` calls issued (each is one WAL append + sync).
    pub write_calls: u64,
    /// Write operations carried by those calls (≥ `write_calls`; the
    /// ratio is the group-commit amortisation factor).
    pub write_ops: u64,
    /// Largest write group merged.
    pub max_group_len: usize,
    /// Largest committed group in wire bytes. Never exceeds
    /// [`ServeConfig::max_group_bytes`] unless a single oversized batch
    /// committed alone (merging must not overshoot the cap; a lone batch
    /// bigger than the cap still commits).
    pub max_group_wire: usize,
    /// Write stalls during the serving phase only.
    pub stalls: StallStats,
    /// Background compaction steps run in idle gaps.
    pub idle_compactions: u64,
    /// Point reads that found their key.
    pub hits: u64,
    /// Point reads that missed.
    pub misses: u64,
    /// Point reads that succeeded only after at least one in-request
    /// retry (the request was served, but degraded).
    pub degraded_reads: u64,
    /// Point reads that exhausted their retry budget and were served as
    /// misses.
    pub failed_reads: u64,
    /// Files the in-flight scrubber repaired during idle gaps.
    pub repaired_in_flight: u64,
    /// Value-log GC steps run in idle gaps.
    pub vlog_gc_steps: u64,
    /// Operations abandoned by clients that blew their error budget.
    pub abandoned_ops: u64,
    /// Clients that gave up before issuing all their operations.
    pub clients_abandoned: u64,
}

impl ServeResult {
    /// Mean write operations per WAL commit (1.0 = no grouping).
    pub fn avg_group_size(&self) -> f64 {
        if self.write_calls == 0 {
            0.0
        } else {
            self.write_ops as f64 / self.write_calls as f64
        }
    }
}

/// One operation, decided at issue time so queued writes are visible to
/// group commit.
enum Op {
    Get(Vec<u8>),
    Write(WriteBatch),
    Scan(Vec<u8>, usize),
    Rmw(Vec<u8>, Vec<u8>),
}

/// A request sitting in the server's queue.
struct Request {
    arrival_ns: u64,
    client: usize,
    op: Op,
}

/// Shared operation-drawing state, mirroring `workloads::ycsb::run` so a
/// serve run and a db_bench run draw from the same op/key streams.
struct OpDraw<'a> {
    gen: &'a RecordGenerator,
    spec: WorkloadSpec,
    op_rng: XorShift64,
    key_rng: XorShift64,
    dist: Box<dyn Distribution>,
    n_now: u64,
}

impl<'a> OpDraw<'a> {
    fn new(gen: &'a RecordGenerator, spec: WorkloadSpec, record_count: u64, seed: u64) -> Self {
        let dist: Box<dyn Distribution> = match spec.dist {
            Dist::Uniform => Box::new(Uniform),
            Dist::Zipfian => Box::new(ScrambledZipfian::new(record_count)),
            Dist::Latest => Box::new(Latest::new(record_count * 2)),
        };
        OpDraw {
            gen,
            spec,
            op_rng: XorShift64::new(seed),
            key_rng: XorShift64::new(seed ^ 0xDEADBEEF),
            dist,
            n_now: record_count,
        }
    }

    fn draw(&mut self) -> Op {
        let r = (self.op_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let m = &self.spec.mix;
        if r < m.read {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            Op::Get(self.gen.key(i))
        } else if r < m.read + m.update {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            let mut b = WriteBatch::new();
            b.put(&self.gen.key(i), &self.gen.value(i));
            Op::Write(b)
        } else if r < m.read + m.update + m.insert {
            let i = self.n_now;
            self.n_now += 1;
            let mut b = WriteBatch::new();
            b.put(&self.gen.key(i), &self.gen.value(i));
            Op::Write(b)
        } else if r < m.read + m.update + m.insert + m.scan {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            let len = 1 + (self.key_rng.next_below(self.spec.max_scan_len as u64) as usize);
            Op::Scan(self.gen.key(i), len)
        } else {
            let i = self.dist.next(&mut self.key_rng, self.n_now);
            Op::Rmw(self.gen.key(i), self.gen.value(i))
        }
    }
}

fn advance_clock(store: &mut Store, ns: u64) {
    store.db.ctx().lock().fs.disk_mut().advance_ns(ns);
}

/// What the degraded read path observed for one point read.
struct ReadOutcome {
    value: Option<Vec<u8>>,
    /// Served, but only after at least one retry.
    retried: bool,
    /// Retry budget exhausted; served as a miss.
    failed: bool,
}

/// Whether merging `next` into the group led by `head` keeps the merged
/// batch within `cap` wire bytes. Checked *before* appending, so a group
/// never overshoots the cap; the merged size charges `next` its body
/// bytes only (the group shares the leader's 12-byte header). A head
/// batch already at or past the cap simply admits no followers — it
/// still commits, alone. Shared by `seal-front`'s serve loop and the
/// shard router's per-shard group commit.
pub fn group_fits(head: &WriteBatch, next: &WriteBatch, cap: usize) -> bool {
    head.byte_size() + next.body_bytes() <= cap
}

/// Capped exponential backoff: `base_ns * 2^attempt` (attempt 0 is the
/// first wait), saturating, clamped to `max_ns` — with both knobs
/// floored at 1 ns so a zero config cannot spin the retry loop without
/// advancing the simulated clock. Shared by the degraded read path and
/// by replication failover clients modelling redirect retries. The
/// formula now lives in [`smr_sim::backoff`] (with an optional
/// jittered [`smr_sim::Backoff`] policy); this re-export keeps the
/// historical `seal_front::bounded_backoff_ns` path working.
pub use smr_sim::backoff::bounded_backoff_ns;

/// Per-client error-budget accounting with *at-most-once-per-op*
/// failure counting.
///
/// An operation can fail at more than one point in its life — a
/// failover redirect that times out *and* a read that then exhausts
/// its retry budget. Charging the client once per failure point
/// double-counts the op and trips the budget early (the historical
/// serve-loop accounting charged each site separately); this helper
/// pins the contract that one operation costs at most one unit of
/// budget no matter how many ways it failed.
#[derive(Clone, Debug)]
pub struct ClientBudget {
    /// Failure budget per client; a client at or past it gives up.
    budget: u64,
    /// Failed-op tally per client.
    failures: Vec<u64>,
    /// Clients that already gave up (latched).
    gave_up: Vec<bool>,
}

impl ClientBudget {
    /// A fresh accountant for `clients` clients with the given budget
    /// (floored at 1, like the serve loop always did).
    pub fn new(clients: usize, budget: u64) -> Self {
        ClientBudget {
            budget: budget.max(1),
            failures: vec![0; clients],
            gave_up: vec![false; clients],
        }
    }

    /// Records the outcome of ONE operation for `client` that observed
    /// `failure_events` distinct failure points (0 = clean). The op is
    /// charged at most one unit of budget regardless of how many points
    /// it failed at. Returns `true` exactly when this op newly tripped
    /// the client's budget (the caller abandons the client's remaining
    /// work once).
    pub fn note_op(&mut self, client: usize, failure_events: u32) -> bool {
        if failure_events > 0 {
            self.failures[client] += 1;
        }
        if !self.gave_up[client] && self.failures[client] >= self.budget {
            self.gave_up[client] = true;
            return true;
        }
        false
    }

    /// Failed ops charged to `client` so far.
    pub fn failures(&self, client: usize) -> u64 {
        self.failures[client]
    }

    /// True once `client` has blown its budget.
    pub fn tripped(&self, client: usize) -> bool {
        self.gave_up[client]
    }
}

/// A point read that survives device faults: on error, back off on the
/// simulated clock (doubling, capped at `cfg.retry_backoff_max_ns`) and
/// reissue, up to `cfg.read_retries` times. A read that keeps failing
/// is served as a miss rather than tearing down the serving loop —
/// availability degrades, the server stays up, and the scrubber repairs
/// the damage out-of-band.
fn degraded_get(store: &mut Store, cfg: &ServeConfig, key: &[u8]) -> ReadOutcome {
    let mut attempt = 0u32;
    loop {
        match store.get(key) {
            Ok(value) => {
                return ReadOutcome {
                    value,
                    retried: attempt > 0,
                    failed: false,
                }
            }
            Err(_) if attempt < cfg.read_retries => {
                advance_clock(
                    store,
                    bounded_backoff_ns(cfg.retry_backoff_ns, cfg.retry_backoff_max_ns, attempt),
                );
                attempt += 1;
            }
            Err(_) => {
                return ReadOutcome {
                    value: None,
                    retried: attempt > 0,
                    failed: true,
                }
            }
        }
    }
}

/// Serves `cfg.total_ops` operations against a preloaded store and
/// reports latency under the offered load.
///
/// The store is flipped into deferred-compaction (serve) mode for the
/// duration and restored afterwards, so preload and any surrounding
/// benchmark phases keep the original quiesce-on-write behavior.
pub fn run_serve(
    store: &mut Store,
    gen: &RecordGenerator,
    cfg: &ServeConfig,
) -> Result<ServeResult> {
    assert!(cfg.clients > 0, "serve needs at least one client");
    store.set_deferred_compaction(true);
    let result = serve_loop(store, gen, cfg);
    store.set_deferred_compaction(false);
    result
}

fn serve_loop(store: &mut Store, gen: &RecordGenerator, cfg: &ServeConfig) -> Result<ServeResult> {
    let start = store.clock_ns();
    let stalls_before = store.stall_stats();
    let mut draw = OpDraw::new(gen, cfg.spec, cfg.record_count, cfg.seed);

    // Per-client traffic state: gap generator and unissued-op quota.
    let mut gaps: Vec<InterArrival> = (0..cfg.clients)
        .map(|c| InterArrival::new(cfg.arrival, cfg.seed ^ (0xC11E57 + c as u64 * 0x9E3779B9)))
        .collect();
    let mut remaining: Vec<u64> = {
        let base = cfg.total_ops / cfg.clients as u64;
        let extra = (cfg.total_ops % cfg.clients as u64) as usize;
        (0..cfg.clients)
            .map(|c| base + u64::from(c < extra))
            .collect()
    };
    let open_loop = matches!(cfg.arrival, ArrivalProcess::OpenLoopPoisson { .. });

    // Future arrivals, ordered by (time, admission index) — the index
    // breaks ties deterministically.
    let mut arrivals: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut next_idx = 0u64;
    for c in 0..cfg.clients {
        if remaining[c] == 0 {
            continue;
        }
        let t = if open_loop {
            start + gaps[c].next_gap_ns()
        } else {
            start
        };
        arrivals.push(Reverse((t, next_idx, c)));
        next_idx += 1;
        remaining[c] -= 1;
    }

    let mut pending: VecDeque<Request> = VecDeque::new();
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.total_ops as usize);
    let mut queue_delays: Vec<u64> = Vec::with_capacity(cfg.total_ops as usize);
    let mut depth_max = 0usize;
    let mut depth_sum = 0u64;
    let mut depth_samples = 0u64;
    let mut write_calls = 0u64;
    let mut write_ops = 0u64;
    let mut max_group_len = 0usize;
    let mut max_group_wire = 0usize;
    let mut idle_compactions = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut completed = 0u64;
    let mut degraded_reads = 0u64;
    let mut failed_reads = 0u64;
    let mut repaired_in_flight = 0u64;
    let mut vlog_gc_steps = 0u64;
    let mut abandoned_ops = 0u64;
    let mut clients_abandoned = 0u64;
    // Per-client failed-op accounting; each op charges at most one
    // unit of budget no matter how many points it failed at.
    let mut budget = ClientBudget::new(cfg.clients, cfg.client_error_budget);

    while completed + abandoned_ops < cfg.total_ops {
        // Admit every arrival at or before the current clock. Open-loop
        // clients immediately schedule their next arrival (the offered
        // load ignores completions); closed-loop clients reschedule at
        // completion time below.
        let now = store.clock_ns();
        while let Some(&Reverse((t, _, c))) = arrivals.peek() {
            if t > now {
                break;
            }
            arrivals.pop();
            pending.push_back(Request {
                arrival_ns: t,
                client: c,
                op: draw.draw(),
            });
            if open_loop && remaining[c] > 0 {
                arrivals.push(Reverse((t + gaps[c].next_gap_ns(), next_idx, c)));
                next_idx += 1;
                remaining[c] -= 1;
            }
        }

        if pending.is_empty() {
            // Idle until the next arrival: spend the gap on background
            // compaction (the stand-in for LevelDB's compaction thread
            // sharing the disk), then advance the clock the rest of the
            // way. A compaction may overshoot the arrival — then the
            // request queues behind it, exactly like a foreground write
            // behind a busy disk.
            let Some(&Reverse((t, _, _))) = arrivals.peek() else {
                break;
            };
            // The value log's cooperative GC gets the first slice of the
            // gap: one budgeted step, relocating live values and
            // recycling dead segments. It runs *before* the compaction
            // loop because that loop is greedy (it eats the gap until
            // the next arrival), while a budgeted GC step is bounded —
            // ordered the other way, update-heavy traffic starves the
            // value log and dead segments pile up.
            if cfg.idle_vlog_gc_bytes > 0 && store.vlog_gc_pending() {
                store.vlog_gc_step(cfg.idle_vlog_gc_bytes)?;
                vlog_gc_steps += 1;
            }
            if cfg.idle_compaction {
                while store.clock_ns() < t && store.needs_compaction() {
                    if !store.compact_step()? {
                        break;
                    }
                    idle_compactions += 1;
                }
            }
            // Spare idle time also advances the scrubber: one budgeted
            // step per gap, so repair makes progress under load without
            // starving foreground requests (it may overshoot the next
            // arrival, which then queues — same deal as compaction).
            if cfg.idle_scrub_bytes > 0 && store.clock_ns() < t {
                let scrub_cfg = ScrubConfig {
                    bytes_per_step: cfg.idle_scrub_bytes,
                    repair: true,
                };
                repaired_in_flight += store.scrub_step(&scrub_cfg)?.files_repaired;
            }
            let now = store.clock_ns();
            if now < t {
                advance_clock(store, t - now);
            }
            continue;
        }

        // Serve the head request; a write absorbs queued writes behind
        // it (group commit).
        depth_max = depth_max.max(pending.len());
        depth_sum += pending.len() as u64;
        depth_samples += 1;
        let service_start = store.clock_ns();
        let head = pending.pop_front().expect("non-empty queue");
        let head_client = head.client;
        let mut members: Vec<(u64, usize)> = vec![(head.arrival_ns, head.client)];
        let mut op_failure_events = 0u32;
        match head.op {
            Op::Write(mut batch) => {
                loop {
                    let fits = match pending.front() {
                        Some(next) => match &next.op {
                            Op::Write(b) => group_fits(&batch, b, cfg.max_group_bytes),
                            _ => false,
                        },
                        None => false,
                    };
                    if !fits {
                        break;
                    }
                    let next = pending.pop_front().expect("checked front");
                    let Op::Write(b) = next.op else {
                        unreachable!("checked write")
                    };
                    batch.append(&b);
                    members.push((next.arrival_ns, next.client));
                }
                write_calls += 1;
                write_ops += members.len() as u64;
                max_group_len = max_group_len.max(members.len());
                max_group_wire = max_group_wire.max(batch.byte_size());
                store.write(batch)?;
            }
            Op::Get(key) => {
                let out = degraded_get(store, cfg, &key);
                if out.retried {
                    degraded_reads += 1;
                }
                if out.failed {
                    failed_reads += 1;
                    op_failure_events += 1;
                }
                if out.value.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
            Op::Scan(key, len) => {
                store.scan(&key, len)?;
            }
            Op::Rmw(key, value) => {
                let out = degraded_get(store, cfg, &key);
                if out.retried {
                    degraded_reads += 1;
                }
                if out.failed {
                    failed_reads += 1;
                    op_failure_events += 1;
                }
                if out.value.is_some() {
                    hits += 1;
                } else {
                    misses += 1;
                }
                store.put(&key, &value)?;
            }
        }
        // A client that has blown its error budget walks away: whatever
        // it had not yet issued is abandoned, not served. Checked before
        // completion bookkeeping so a closed-loop client that just gave
        // up does not reissue. The accountant charges the op at most
        // once however many points it failed at.
        if budget.note_op(head_client, op_failure_events) {
            clients_abandoned += 1;
            abandoned_ops += remaining[head_client];
            remaining[head_client] = 0;
        }
        let done = store.clock_ns();
        for &(arrival, client) in &members {
            latencies.push(done - arrival);
            queue_delays.push(service_start - arrival);
            completed += 1;
            if !open_loop && remaining[client] > 0 {
                arrivals.push(Reverse((
                    done + gaps[client].next_gap_ns(),
                    next_idx,
                    client,
                )));
                next_idx += 1;
                remaining[client] -= 1;
            }
        }
    }

    let sim_ns = store.clock_ns() - start;
    let stalls = store.stall_stats().delta_since(&stalls_before);
    let latency = LatencySummary::from_samples(&mut latencies);
    let queue_delay = LatencySummary::from_samples(&mut queue_delays);
    let queue_depth_mean = if depth_samples == 0 {
        0.0
    } else {
        depth_sum as f64 / depth_samples as f64
    };
    let result = ServeResult {
        store: store.name(),
        ops: completed,
        sim_ns,
        throughput_ops_per_sec: if sim_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / sim_ns as f64
        },
        latency,
        queue_delay,
        queue_depth_max: depth_max,
        queue_depth_mean,
        write_calls,
        write_ops,
        max_group_len,
        max_group_wire,
        stalls,
        idle_compactions,
        hits,
        misses,
        degraded_reads,
        failed_reads,
        repaired_in_flight,
        vlog_gc_steps,
        abandoned_ops,
        clients_abandoned,
    };
    publish_obs(store, &result, &latencies, &queue_delays);
    Ok(result)
}

/// Mirrors the run into the store's observability bundle under the
/// frontend layer: exact sample vectors feed the bucketed histograms,
/// scalars become counters/gauges, so `metrics_snapshot` exports carry
/// the serving view alongside every other layer.
fn publish_obs(store: &mut Store, r: &ServeResult, latencies: &[u64], queue_delays: &[u64]) {
    let ctx = store.db.ctx();
    let mut guard = ctx.lock();
    let obs = guard.fs.disk_mut().obs_mut();
    for &ns in latencies {
        obs.latency(ObsLayer::Frontend, "latency_ns", ns);
    }
    for &ns in queue_delays {
        obs.latency(ObsLayer::Frontend, "queue_delay_ns", ns);
    }
    obs.counter_add(ObsLayer::Frontend, "ops", r.ops);
    obs.counter_add(ObsLayer::Frontend, "write_calls", r.write_calls);
    obs.counter_add(ObsLayer::Frontend, "write_ops", r.write_ops);
    obs.counter_add(ObsLayer::Frontend, "idle_compactions", r.idle_compactions);
    obs.counter_add(ObsLayer::Frontend, "degraded_reads", r.degraded_reads);
    obs.counter_add(ObsLayer::Frontend, "failed_reads", r.failed_reads);
    obs.counter_add(
        ObsLayer::Frontend,
        "repaired_in_flight",
        r.repaired_in_flight,
    );
    obs.counter_add(ObsLayer::Frontend, "vlog_gc_steps", r.vlog_gc_steps);
    obs.counter_add(ObsLayer::Frontend, "abandoned_ops", r.abandoned_ops);
    obs.gauge_set(
        ObsLayer::Frontend,
        "queue_depth_max",
        r.queue_depth_max as f64,
    );
    obs.gauge_set(ObsLayer::Frontend, "queue_depth_mean", r.queue_depth_mean);
    obs.gauge_set(
        ObsLayer::Frontend,
        "throughput_ops_per_sec",
        r.throughput_ops_per_sec,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealdb::{StoreConfig, StoreKind};
    use workloads::micro::fill_random;

    fn preloaded(kind: StoreKind, gen: &RecordGenerator, n: u64) -> Store {
        let mut store = StoreConfig::new(kind, 32 << 10, 1 << 30).build().unwrap();
        fill_random(&mut store, gen, n, 3).unwrap();
        store
    }

    fn run(kind: StoreKind, cfg: &ServeConfig, gen: &RecordGenerator) -> ServeResult {
        let mut store = preloaded(kind, gen, cfg.record_count);
        run_serve(&mut store, gen, cfg).unwrap()
    }

    #[test]
    fn closed_loop_serves_all_ops() {
        let gen = RecordGenerator::new(16, 100, 1);
        let cfg = ServeConfig::new(
            WorkloadSpec::a(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            4,
            400,
            1000,
        );
        let r = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(r.ops, 400);
        assert!(r.sim_ns > 0);
        assert!(r.throughput_ops_per_sec > 0.0);
        assert_eq!(r.misses, 0, "closed keyspace must not miss");
        assert_eq!(r.latency.count, 400);
        assert!(r.latency.p95_ns >= r.latency.p50_ns);
        assert!(r.latency.max_ns >= r.latency.p99_ns);
    }

    #[test]
    fn group_commit_merges_concurrent_writers() {
        let gen = RecordGenerator::new(16, 100, 1);
        // Write-only mix, 8 clients hammering with zero think time: every
        // service round finds the other clients' writes queued behind the
        // head, so groups must form.
        let mut spec = WorkloadSpec::a();
        spec.mix.read = 0.0;
        spec.mix.update = 1.0;
        let cfg = ServeConfig::new(
            spec,
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            8,
            400,
            800,
        );
        let r = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(r.ops, 400);
        assert_eq!(r.write_ops, 400);
        assert!(
            r.write_calls < r.write_ops,
            "no grouping: {} calls for {} writes",
            r.write_calls,
            r.write_ops
        );
        assert!(r.max_group_len > 1);
        assert!(r.avg_group_size() > 1.5, "avg group {}", r.avg_group_size());
    }

    /// A single-put batch whose wire representation is exactly `wire`
    /// bytes (value length solved by search around the encoding
    /// overhead).
    fn batch_of_wire_size(wire: usize) -> WriteBatch {
        for vlen in wire.saturating_sub(64)..wire {
            let mut b = WriteBatch::new();
            b.put(b"k", &vec![0xAB; vlen]);
            if b.byte_size() == wire {
                return b;
            }
        }
        panic!("no single-put batch encodes to exactly {wire} wire bytes");
    }

    #[test]
    fn group_cap_admits_merges_up_to_the_exact_boundary() {
        // LevelDB's 1 MiB cap, probed at cap-1 / cap / cap+1 merged wire
        // bytes. The pre-fix check charged the follower its full wire
        // size (12-byte header included), so a merge landing exactly on
        // the cap — or within 11 bytes below it — was wrongly refused.
        let cap = 1 << 20;
        let head = batch_of_wire_size(cap / 2);
        let fit = |merged_wire: usize| {
            let follow = batch_of_wire_size(merged_wire - head.byte_size() + 12);
            assert_eq!(head.byte_size() + follow.body_bytes(), merged_wire);
            group_fits(&head, &follow, cap)
        };
        assert!(fit(cap - 1), "merge to cap-1 bytes must be admitted");
        assert!(fit(cap), "merge to exactly cap bytes must be admitted");
        assert!(!fit(cap + 1), "merge to cap+1 bytes must be refused");
    }

    #[test]
    fn merging_checks_the_cap_before_appending() {
        // The merged group never overshoots: appending happens only
        // after the size check admits the follower.
        let cap = 1 << 20;
        let mut head = batch_of_wire_size(cap - 100);
        let follow = batch_of_wire_size(200);
        assert!(!group_fits(&head, &follow, cap));
        // Were it appended anyway, the group would overshoot:
        head.append(&follow);
        assert!(head.byte_size() > cap);
    }

    #[test]
    fn oversized_single_batch_still_commits_alone() {
        let cap = 1 << 20;
        let head = batch_of_wire_size(cap + 1);
        // No follower may join it...
        assert!(!group_fits(&head, &batch_of_wire_size(50), cap));
        // ...but the serve loop still commits it: an over-cap head batch
        // admits no followers, it is never rejected.
        let gen = RecordGenerator::new(16, 100, 1);
        let mut spec = WorkloadSpec::a();
        spec.mix.read = 0.0;
        spec.mix.update = 1.0;
        let mut cfg = ServeConfig::new(
            spec,
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            4,
            100,
            400,
        );
        // Cap below a single update batch's wire size (16 B key + 100 B
        // value + framing): every batch is oversized and commits alone.
        cfg.max_group_bytes = 64;
        let r = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(r.ops, 100);
        assert_eq!(
            r.write_calls, r.write_ops,
            "oversized batches must commit alone, not merge"
        );
        assert_eq!(r.max_group_len, 1);
        assert!(r.max_group_wire > cfg.max_group_bytes);
    }

    #[test]
    fn merged_groups_never_overshoot_the_cap() {
        let gen = RecordGenerator::new(16, 100, 1);
        let mut spec = WorkloadSpec::a();
        spec.mix.read = 0.0;
        spec.mix.update = 1.0;
        let mut cfg = ServeConfig::new(
            spec,
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            8,
            400,
            800,
        );
        // A cap admitting a few followers per group: groups must form,
        // and no committed group may exceed the cap in wire bytes.
        cfg.max_group_bytes = 600;
        let r = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(r.ops, 400);
        assert!(r.max_group_len > 1, "groups must form under this cap");
        assert!(
            r.max_group_wire <= cfg.max_group_bytes,
            "group of {} wire bytes overshot the {} cap",
            r.max_group_wire,
            cfg.max_group_bytes
        );
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let gen = RecordGenerator::new(16, 100, 1);
        let cfg = ServeConfig::new(
            WorkloadSpec::b(),
            ArrivalProcess::OpenLoopPoisson { ops_per_sec: 300.0 },
            4,
            300,
            1000,
        );
        let a = run(StoreKind::SealDb, &cfg, &gen);
        let b = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.queue_delay, b.queue_delay);
        assert_eq!(
            a.throughput_ops_per_sec.to_bits(),
            b.throughput_ops_per_sec.to_bits()
        );
        assert_eq!(a.write_calls, b.write_calls);
        assert_eq!(a.stalls, b.stalls);
        // A different seed shifts the schedule.
        let c = run(StoreKind::SealDb, &cfg.clone().with_seed(99), &gen);
        assert_ne!(a.latency, c.latency);
    }

    #[test]
    fn overload_inflates_tail_latency() {
        let gen = RecordGenerator::new(16, 100, 1);
        let spec = WorkloadSpec::a();
        let n = 1000u64;
        // Measure saturation throughput closed-loop, then offer well
        // below and well above it open-loop.
        let closed = ServeConfig::new(spec, ArrivalProcess::ClosedLoop { think_ns: 0 }, 4, 300, n);
        let sat = run(StoreKind::SealDb, &closed, &gen).throughput_ops_per_sec;
        let at = |x: f64| {
            let cfg = ServeConfig::new(
                spec,
                ArrivalProcess::OpenLoopPoisson {
                    ops_per_sec: sat * x / 4.0,
                },
                4,
                300,
                n,
            );
            run(StoreKind::SealDb, &cfg, &gen)
        };
        let light = at(0.3);
        let heavy = at(2.0);
        assert!(
            heavy.latency.p99_ns > light.latency.p99_ns,
            "overload p99 {} must exceed light-load p99 {}",
            heavy.latency.p99_ns,
            light.latency.p99_ns
        );
        assert!(
            heavy.queue_delay.mean_ns > light.queue_delay.mean_ns,
            "overload must queue"
        );
        assert!(heavy.queue_depth_max >= light.queue_depth_max);
    }

    #[test]
    fn frontend_metrics_reach_the_obs_layer() {
        let gen = RecordGenerator::new(16, 100, 1);
        let cfg = ServeConfig::new(
            WorkloadSpec::a(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            2,
            200,
            500,
        );
        let mut store = preloaded(StoreKind::SealDb, &gen, cfg.record_count);
        let r = run_serve(&mut store, &gen, &cfg).unwrap();
        let m = store.metrics_snapshot();
        let h = m.obs.histogram(ObsLayer::Frontend, "latency_ns").unwrap();
        assert_eq!(h.count(), r.ops);
        assert_eq!(m.obs.registry.counter(ObsLayer::Frontend, "ops"), r.ops);
        assert_eq!(
            m.obs.registry.counter(ObsLayer::Frontend, "write_calls"),
            r.write_calls
        );
        assert!(
            m.obs
                .registry
                .gauge(ObsLayer::Frontend, "throughput_ops_per_sec")
                > 0.0
        );
    }

    /// Extent of the largest live table — the degraded-mode tests damage
    /// it so the read path is guaranteed to trip over the fault.
    fn largest_file_extent(store: &Store) -> smr_sim::Extent {
        let v = store.db.current_version();
        let f = v
            .files
            .iter()
            .flatten()
            .max_by_key(|f| f.size)
            .expect("preload left no tables")
            .clone();
        store.db.ctx().lock().fs.file_extent(f.id).unwrap()
    }

    #[test]
    fn backoff_doubles_then_caps() {
        // Doubles from the base, clamps at the cap, never overflows.
        assert_eq!(bounded_backoff_ns(500_000, 2_000_000, 0), 500_000);
        assert_eq!(bounded_backoff_ns(500_000, 2_000_000, 1), 1_000_000);
        assert_eq!(bounded_backoff_ns(500_000, 2_000_000, 2), 2_000_000);
        assert_eq!(bounded_backoff_ns(500_000, 2_000_000, 3), 2_000_000);
        assert_eq!(bounded_backoff_ns(500_000, 2_000_000, 200), 2_000_000);
        assert_eq!(bounded_backoff_ns(u64::MAX, u64::MAX, 63), u64::MAX);
        // A cap below the base clamps up to the base; zeros floor at 1.
        assert_eq!(bounded_backoff_ns(500_000, 1, 5), 500_000);
        assert_eq!(bounded_backoff_ns(0, 0, 0), 1);
        assert_eq!(bounded_backoff_ns(0, 0, 10), 1);
    }

    /// The boundary the redirect-plus-retry bug lived on: an op that
    /// fails at TWO points (failover redirect timed out AND the read
    /// exhausted its retries) charges the client's budget exactly once.
    /// Under the old per-site accounting a budget of 2 tripped after
    /// one such op; it must take two failing ops.
    #[test]
    fn error_budget_charges_each_op_at_most_once() {
        let mut b = ClientBudget::new(2, 2);
        // One op, two failure events: one charge, budget not tripped.
        assert!(!b.note_op(0, 2));
        assert_eq!(b.failures(0), 1);
        assert!(!b.tripped(0));
        // A clean op charges nothing.
        assert!(!b.note_op(0, 0));
        assert_eq!(b.failures(0), 1);
        // The second failing op (again double-failed) trips the budget,
        // exactly once — the latch never re-fires.
        assert!(b.note_op(0, 2));
        assert!(b.tripped(0));
        assert!(!b.note_op(0, 1));
        assert_eq!(b.failures(0), 3);
        // Other clients are untouched.
        assert_eq!(b.failures(1), 0);
        assert!(!b.tripped(1));
    }

    /// A zero configured budget behaves like 1 (the serve loop's
    /// historical `.max(1)` floor): the first failing op trips it.
    #[test]
    fn error_budget_zero_floors_at_one() {
        let mut b = ClientBudget::new(1, 0);
        assert!(!b.note_op(0, 0));
        assert!(b.note_op(0, 1));
        assert!(b.tripped(0));
    }

    #[test]
    fn degraded_reads_wait_capped_backoff_on_the_simulated_clock() {
        let gen = RecordGenerator::new(16, 100, 1);
        let mut store = preloaded(StoreKind::SealDb, &gen, 200);
        let ext = largest_file_extent(&store);
        // Persistent read errors: every retry fails, so the degraded
        // read path walks the full backoff schedule.
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .fail_reads_permanently(smr_sim::Extent::new(ext.offset, ext.len));
        let mut cfg = ServeConfig::new(
            WorkloadSpec::c(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            1,
            1,
            200,
        );
        cfg.read_retries = 10;
        cfg.retry_backoff_ns = 1_000_000;
        cfg.retry_backoff_max_ns = 2_000_000;
        let key = gen.key(0);
        let t0 = store.clock_ns();
        let out = degraded_get(&mut store, &cfg, &key);
        assert!(out.failed);
        let waited = store.clock_ns() - t0;
        // Uncapped doubling would wait 1+2+4+...+512 = 1023 ms; the cap
        // bounds the schedule at 1 + 2 + 8*2 = 19 ms (plus read time).
        let capped_total = 19_000_000u64;
        assert!(
            waited >= capped_total,
            "backoff waits missing: {waited} < {capped_total}"
        );
        assert!(
            waited < 100_000_000,
            "cap not applied: waited {waited} ns, uncapped schedule is ~1s"
        );
    }

    #[test]
    fn clean_run_reports_no_degradation() {
        let gen = RecordGenerator::new(16, 100, 1);
        let cfg = ServeConfig::new(
            WorkloadSpec::b(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            4,
            300,
            800,
        );
        let r = run(StoreKind::SealDb, &cfg, &gen);
        assert_eq!(r.ops, 300);
        assert_eq!(r.degraded_reads, 0);
        assert_eq!(r.failed_reads, 0);
        assert_eq!(r.repaired_in_flight, 0);
        assert_eq!(r.abandoned_ops, 0);
        assert_eq!(r.clients_abandoned, 0);
    }

    #[test]
    fn serving_survives_persistent_corruption_and_repairs_in_flight() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 1000u64;
        let mut store = preloaded(StoreKind::SealDb, &gen, n);
        let ext = largest_file_extent(&store);
        // A latent-error region inside the table's first data block:
        // every read through it returns flipped bits, so point reads on
        // those keys keep failing until the scrubber rewrites the file.
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .corrupt_extent(smr_sim::Extent::new(ext.offset + 100, 64));
        let mut cfg = ServeConfig::new(
            WorkloadSpec::c(),
            ArrivalProcess::ClosedLoop {
                think_ns: 2_000_000,
            },
            4,
            600,
            n,
        );
        cfg.idle_scrub_bytes = 64 << 10;
        cfg.client_error_budget = u64::MAX;
        let r = run_serve(&mut store, &gen, &cfg).unwrap();
        // The loop survived the fault: every op was served, none
        // abandoned, and the scrubber repaired the table under load.
        assert_eq!(r.ops, 600);
        assert_eq!(r.abandoned_ops, 0);
        assert!(
            r.repaired_in_flight >= 1,
            "idle scrub must repair the damaged table"
        );
        // Reads that hit the bad block before the repair were served as
        // misses; the closed keyspace makes them the only misses.
        assert_eq!(r.misses, r.failed_reads);
        // After the serve, the damage is gone: every key reads back.
        for i in 0..n {
            assert!(store.get(&gen.key(i)).unwrap().is_some(), "key {i}");
        }
        let m = store.metrics_snapshot();
        assert_eq!(
            m.obs
                .registry
                .counter(ObsLayer::Frontend, "repaired_in_flight"),
            r.repaired_in_flight
        );
    }

    #[test]
    fn vlog_store_serves_update_heavy_mixes_with_idle_gc() {
        // YCSB A (updates) and F (read-modify-writes) against a store
        // with key-value separation on: every update routes its value
        // through the vlog, idle gaps drive the cooperative GC, and the
        // closed keyspace proves no pointer ever dangles.
        let gen = RecordGenerator::new(16, 600, 1);
        let n = 400u64;
        for spec in [WorkloadSpec::a(), WorkloadSpec::f()] {
            let params = sealdb::VlogParams {
                segment_bytes: 16 << 10,
                value_threshold: 256,
                ..Default::default()
            };
            let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 1 << 30)
                .with_vlog(params)
                .build()
                .unwrap();
            fill_random(&mut store, &gen, n, 3).unwrap();
            let mut cfg = ServeConfig::new(
                spec,
                ArrivalProcess::ClosedLoop {
                    think_ns: 40_000_000,
                },
                4,
                600,
                n,
            );
            cfg.idle_vlog_gc_bytes = 32 << 10;
            let r = run_serve(&mut store, &gen, &cfg).unwrap();
            assert_eq!(r.ops, 600, "workload {}", spec.name);
            assert_eq!(r.misses, 0, "workload {} missed reads", spec.name);
            assert!(
                r.vlog_gc_steps > 0,
                "workload {}: idle gaps must drive vlog GC",
                spec.name
            );
            // GC relocations must not have broken any pointer.
            for i in 0..n {
                assert!(store.get(&gen.key(i)).unwrap().is_some(), "key {i}");
            }
        }
    }

    #[test]
    fn error_budget_makes_clients_walk_away() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 1000u64;
        let mut store = preloaded(StoreKind::SealDb, &gen, n);
        let ext = largest_file_extent(&store);
        // The whole table sits on a dead region: every read into it
        // errors, unrecoverably. No scrub runs, so it never heals.
        store
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .fail_reads_permanently(ext);
        let mut cfg = ServeConfig::new(
            WorkloadSpec::c(),
            ArrivalProcess::ClosedLoop { think_ns: 0 },
            4,
            600,
            n,
        );
        cfg.client_error_budget = 3;
        cfg.read_retries = 1;
        let r = run_serve(&mut store, &gen, &cfg).unwrap();
        assert!(r.failed_reads >= 3, "reads into the dead table must fail");
        assert!(r.clients_abandoned >= 1, "budget must trip");
        assert!(r.abandoned_ops > 0);
        assert_eq!(
            r.ops + r.abandoned_ops,
            600,
            "every op is either served or abandoned"
        );
    }

    #[test]
    fn degraded_runs_with_same_seed_are_identical() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 800u64;
        let go = || {
            let mut store = preloaded(StoreKind::SealDb, &gen, n);
            let ext = largest_file_extent(&store);
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .corrupt_extent(smr_sim::Extent::new(ext.offset + 64, 32));
            let mut cfg = ServeConfig::new(
                WorkloadSpec::b(),
                ArrivalProcess::ClosedLoop {
                    think_ns: 1_000_000,
                },
                4,
                400,
                n,
            );
            cfg.idle_scrub_bytes = 64 << 10;
            run_serve(&mut store, &gen, &cfg).unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.failed_reads, b.failed_reads);
        assert_eq!(a.degraded_reads, b.degraded_reads);
        assert_eq!(a.repaired_in_flight, b.repaired_in_flight);
        assert_eq!(a.abandoned_ops, b.abandoned_ops);
    }
}
