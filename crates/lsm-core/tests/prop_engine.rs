//! Randomized tests for the LSM engine's components and the full DbCore
//! against an in-memory model. Seeded xorshift generation instead of a
//! property-testing framework: no external crates, reproducible cases.

use lsm_core::db::{options::Options, DbCore};
use lsm_core::iterator::InternalIterator;
use lsm_core::memtable::MemTable;
use lsm_core::policy::PerFilePolicy;
use lsm_core::sstable::{scan_all, TableBuilder, TableOptions};
use lsm_core::types::{internal_compare, make_internal_key, user_key, ValueType};
use lsm_core::util::rng::XorShift64;
use lsm_core::wal::{LogReader, LogWriter};
use placement::Ext4Sim;
use smr_sim::{Disk, Layout, TimeModel};
use std::collections::{BTreeMap, BTreeSet};

/// Memtable get/iterate agrees with a BTreeMap of the newest version
/// of each key.
#[test]
fn memtable_matches_model() {
    let mut rng = XorShift64::new(0x3E3);
    for _case in 0..32 {
        let count = 1 + rng.next_below(299) as usize;
        let entries: Vec<(u32, u8, bool)> = (0..count)
            .map(|_| {
                (
                    rng.next_below(100) as u32,
                    rng.next_u64() as u8,
                    rng.one_in(2),
                )
            })
            .collect();
        let mut mem = MemTable::new(7);
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (seq, (k, v, del)) in entries.iter().enumerate() {
            let key = format!("k{k:04}").into_bytes();
            if *del {
                mem.add(seq as u64 + 1, ValueType::Deletion, &key, b"");
                model.insert(key, None);
            } else {
                let val = vec![*v; 10];
                mem.add(seq as u64 + 1, ValueType::Value, &key, &val);
                model.insert(key, Some(val));
            }
        }
        for k in 0..100u32 {
            let key = format!("k{k:04}").into_bytes();
            let got = mem.get(&key, u64::MAX >> 8);
            match model.get(&key) {
                None => assert_eq!(got, None),
                Some(None) => assert_eq!(got, Some(None)),
                Some(Some(v)) => assert_eq!(got, Some(Some(v.clone()))),
            }
        }
        // Iteration yields sorted internal keys covering every write.
        let mut it = mem.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            if let Some(p) = &prev {
                assert_eq!(internal_compare(p, it.key()), std::cmp::Ordering::Less);
            }
            prev = Some(it.key().to_vec());
            count += 1;
            it.next();
        }
        assert_eq!(count, entries.len());
    }
}

/// SSTable build -> scan_all round-trips arbitrary sorted entries.
#[test]
fn table_roundtrip() {
    let mut rng = XorShift64::new(0x7AB1E);
    for _case in 0..32 {
        let mut keys: BTreeSet<Vec<u8>> = BTreeSet::new();
        let want = 1 + rng.next_below(199) as usize;
        while keys.len() < want {
            let len = 1 + rng.next_below(12) as usize;
            let k: Vec<u8> = (0..len)
                .map(|_| b'a' + (rng.next_below(26) as u8))
                .collect();
            keys.insert(k);
        }
        let vlen = rng.next_below(300) as usize;
        let entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    make_internal_key(k, i as u64 + 1, ValueType::Value),
                    vec![(i % 251) as u8; vlen],
                )
            })
            .collect();
        let mut b = TableBuilder::new(TableOptions {
            block_size: 256,
            ..Default::default()
        });
        for (k, v) in &entries {
            b.add(k, v);
        }
        let data = b.finish();
        let back = scan_all(&data).unwrap();
        assert_eq!(back, entries);
    }
}

/// WAL round-trips arbitrary record sequences, including empty and
/// block-spanning records.
#[test]
fn wal_roundtrip() {
    let mut rng = XorShift64::new(0x4A1);
    for _case in 0..32 {
        let count = rng.next_below(30) as usize;
        let records: Vec<Vec<u8>> = (0..count)
            .map(|_| {
                let len = rng.next_below(5000) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        let mut w = LogWriter::new();
        for r in &records {
            w.add_record(r);
        }
        let bytes = w.take();
        let back = LogReader::new(&bytes).all_records();
        assert_eq!(back, records);
    }
}

/// Full engine vs BTreeMap under random put/delete/get sequences with
/// tiny tables (so flushes and compactions happen inside the test).
#[test]
fn dbcore_matches_model() {
    let mut rng = XorShift64::new(0xDBC0);
    for _case in 0..32 {
        let count = 1 + rng.next_below(249) as usize;
        let ops: Vec<(u32, u8, u8)> = (0..count)
            .map(|_| {
                (
                    rng.next_below(150) as u32,
                    rng.next_u64() as u8,
                    rng.next_below(10) as u8,
                )
            })
            .collect();
        let cap: u64 = 512 << 20;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        let mut opts = Options::scaled(4 << 10);
        opts.wal_buffer_bytes = 0;
        let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 1 << 20);
        let mut db =
            DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v, action) in &ops {
            let key = format!("key{k:05}").into_bytes();
            if *action == 0 {
                db.delete(&key).unwrap();
                model.remove(&key);
            } else {
                let val = vec![*v; 40];
                db.put(&key, &val).unwrap();
                model.insert(key, val);
            }
        }
        for k in 0..150u32 {
            let key = format!("key{k:05}").into_bytes();
            assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned());
        }
        let scanned = db.scan(b"", 10_000).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(scanned, expected);
    }
}

/// Internal-key ordering is a strict total order consistent with
/// (user key asc, seq desc).
#[test]
fn internal_key_order_laws() {
    let mut rng = XorShift64::new(0x0DE);
    let word = |rng: &mut XorShift64| {
        let len = 1 + rng.next_below(4) as usize;
        (0..len)
            .map(|_| b'a' + (rng.next_below(3) as u8))
            .collect::<Vec<u8>>()
    };
    for _case in 0..256 {
        let a = word(&mut rng);
        let b = word(&mut rng);
        let sa = rng.next_below(100);
        let sb = rng.next_below(100);
        let ka = make_internal_key(&a, sa, ValueType::Value);
        let kb = make_internal_key(&b, sb, ValueType::Value);
        let ord = internal_compare(&ka, &kb);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => assert_eq!(ord, std::cmp::Ordering::Less),
            std::cmp::Ordering::Greater => assert_eq!(ord, std::cmp::Ordering::Greater),
            std::cmp::Ordering::Equal => {
                // Same user key: higher sequence sorts first.
                assert_eq!(ord, sb.cmp(&sa));
                assert_eq!(user_key(&ka), user_key(&kb));
            }
        }
        // Antisymmetry.
        assert_eq!(internal_compare(&kb, &ka), ord.reverse());
    }
}

/// Robustness: a WAL with one corrupted byte never panics the reader
/// and every record it does return was genuinely written.
#[test]
fn wal_reader_survives_single_byte_corruption() {
    let mut rng = XorShift64::new(0x3A1);
    for _case in 0..48 {
        let count = 1 + rng.next_below(19) as usize;
        let records: Vec<Vec<u8>> = (0..count)
            .map(|_| {
                let len = 1 + rng.next_below(599) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();
        let mut w = LogWriter::new();
        for r in &records {
            w.add_record(r);
        }
        let mut bytes = w.take();
        let pos = rng.next_below(bytes.len() as u64) as usize;
        let flip_bit = rng.next_below(8) as u8;
        bytes[pos] ^= 1 << flip_bit;
        let mut reader = LogReader::new(&bytes);
        let mut recovered = Vec::new();
        while let Some(rec) = reader.next_record() {
            if let Ok(r) = rec {
                recovered.push(r);
            }
        }
        // Every recovered record is one of the originals, in order.
        let mut idx = 0;
        for r in &recovered {
            let found = records[idx..].iter().position(|orig| orig == r);
            assert!(
                found.is_some(),
                "reader fabricated a record (flip at {pos} bit {flip_bit})"
            );
            idx += found.expect("checked") + 1;
        }
    }
}

/// Robustness: a table with one corrupted byte either still parses to
/// the original entries or reports corruption — never wrong data.
#[test]
fn table_reader_survives_single_byte_corruption() {
    let mut rng = XorShift64::new(0x7AB2);
    for _case in 0..48 {
        let n = 1 + rng.next_below(99) as usize;
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    make_internal_key(
                        format!("k{i:05}").as_bytes(),
                        i as u64 + 1,
                        ValueType::Value,
                    ),
                    vec![i as u8; 20],
                )
            })
            .collect();
        let mut b = TableBuilder::new(TableOptions {
            block_size: 128,
            ..Default::default()
        });
        for (k, v) in &entries {
            b.add(k, v);
        }
        let mut data = b.finish();
        let pos = rng.next_below(data.len() as u64) as usize;
        data[pos] ^= 0xFF;
        match scan_all(&data) {
            Err(_) => {} // corruption detected: fine
            Ok(back) => assert_eq!(back, entries, "undetected corruption changed data"),
        }
    }
}
