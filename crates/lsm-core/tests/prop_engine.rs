//! Property tests for the LSM engine's components and the full DbCore
//! against an in-memory model.

use lsm_core::db::{options::Options, DbCore};
use lsm_core::memtable::MemTable;
use lsm_core::policy::PerFilePolicy;
use lsm_core::sstable::{scan_all, TableBuilder, TableOptions};
use lsm_core::types::{internal_compare, make_internal_key, user_key, ValueType};
use lsm_core::wal::{LogReader, LogWriter};
use lsm_core::iterator::InternalIterator;
use placement::Ext4Sim;
use proptest::prelude::*;
use smr_sim::{Disk, Layout, TimeModel};
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Memtable get/iterate agrees with a BTreeMap of the newest version
    /// of each key.
    #[test]
    fn memtable_matches_model(entries in proptest::collection::vec((0..100u32, any::<u8>(), any::<bool>()), 1..300)) {
        let mut mem = MemTable::new(7);
        let mut model: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (seq, (k, v, del)) in entries.iter().enumerate() {
            let key = format!("k{k:04}").into_bytes();
            if *del {
                mem.add(seq as u64 + 1, ValueType::Deletion, &key, b"");
                model.insert(key, None);
            } else {
                let val = vec![*v; 10];
                mem.add(seq as u64 + 1, ValueType::Value, &key, &val);
                model.insert(key, Some(val));
            }
        }
        for k in 0..100u32 {
            let key = format!("k{k:04}").into_bytes();
            let got = mem.get(&key, u64::MAX >> 8);
            match model.get(&key) {
                None => prop_assert_eq!(got, None),
                Some(None) => prop_assert_eq!(got, Some(None)),
                Some(Some(v)) => prop_assert_eq!(got, Some(Some(v.clone()))),
            }
        }
        // Iteration yields sorted internal keys covering every write.
        let mut it = mem.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut prev: Option<Vec<u8>> = None;
        while it.valid() {
            if let Some(p) = &prev {
                prop_assert_eq!(internal_compare(p, it.key()), std::cmp::Ordering::Less);
            }
            prev = Some(it.key().to_vec());
            count += 1;
            it.next();
        }
        prop_assert_eq!(count, entries.len());
    }

    /// SSTable build -> scan_all round-trips arbitrary sorted entries.
    #[test]
    fn table_roundtrip(keys in proptest::collection::btree_set("[a-z]{1,12}", 1..200), vlen in 0..300usize) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                (
                    make_internal_key(k.as_bytes(), i as u64 + 1, ValueType::Value),
                    vec![(i % 251) as u8; vlen],
                )
            })
            .collect();
        let mut b = TableBuilder::new(TableOptions { block_size: 256, ..Default::default() });
        for (k, v) in &entries {
            b.add(k, v);
        }
        let data = b.finish();
        let back = scan_all(&data).unwrap();
        prop_assert_eq!(back, entries);
    }

    /// WAL round-trips arbitrary record sequences, including empty and
    /// block-spanning records.
    #[test]
    fn wal_roundtrip(records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..5000), 0..30)) {
        let mut w = LogWriter::new();
        for r in &records {
            w.add_record(r);
        }
        let bytes = w.take();
        let back = LogReader::new(&bytes).all_records();
        prop_assert_eq!(back, records);
    }

    /// Full engine vs BTreeMap under random put/delete/get sequences with
    /// tiny tables (so flushes and compactions happen inside the test).
    #[test]
    fn dbcore_matches_model(ops in proptest::collection::vec((0..150u32, any::<u8>(), 0..10u8), 1..250)) {
        let cap: u64 = 512 << 20;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        let mut opts = Options::scaled(4 << 10);
        opts.wal_buffer_bytes = 0;
        let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 1 << 20);
        let mut db = DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v, action) in &ops {
            let key = format!("key{k:05}").into_bytes();
            if *action == 0 {
                db.delete(&key).unwrap();
                model.remove(&key);
            } else {
                let val = vec![*v; 40];
                db.put(&key, &val).unwrap();
                model.insert(key, val);
            }
        }
        for k in 0..150u32 {
            let key = format!("key{k:05}").into_bytes();
            prop_assert_eq!(db.get(&key).unwrap(), model.get(&key).cloned());
        }
        let scanned = db.scan(b"", 10_000).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Internal-key ordering is a strict total order consistent with
    /// (user key asc, seq desc).
    #[test]
    fn internal_key_order_laws(a in "[a-c]{1,4}", b in "[a-c]{1,4}", sa in 0..100u64, sb in 0..100u64) {
        let ka = make_internal_key(a.as_bytes(), sa, ValueType::Value);
        let kb = make_internal_key(b.as_bytes(), sb, ValueType::Value);
        let ord = internal_compare(&ka, &kb);
        match a.as_bytes().cmp(b.as_bytes()) {
            std::cmp::Ordering::Less => prop_assert_eq!(ord, std::cmp::Ordering::Less),
            std::cmp::Ordering::Greater => prop_assert_eq!(ord, std::cmp::Ordering::Greater),
            std::cmp::Ordering::Equal => {
                // Same user key: higher sequence sorts first.
                prop_assert_eq!(ord, sb.cmp(&sa));
                prop_assert_eq!(user_key(&ka), user_key(&kb));
            }
        }
        // Antisymmetry.
        prop_assert_eq!(internal_compare(&kb, &ka), ord.reverse());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Robustness: a WAL with one corrupted byte never panics the reader
    /// and every record it does return was genuinely written.
    #[test]
    fn wal_reader_survives_single_byte_corruption(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..600), 1..20),
        flip_at in any::<proptest::sample::Index>(),
        flip_bit in 0..8u8,
    ) {
        let mut w = LogWriter::new();
        for r in &records {
            w.add_record(r);
        }
        let mut bytes = w.take();
        let pos = flip_at.index(bytes.len());
        bytes[pos] ^= 1 << flip_bit;
        let mut reader = LogReader::new(&bytes);
        let mut recovered = Vec::new();
        while let Some(rec) = reader.next_record() {
            if let Ok(r) = rec {
                recovered.push(r);
            }
        }
        // Every recovered record is one of the originals, in order.
        let mut idx = 0;
        for r in &recovered {
            let found = records[idx..].iter().position(|orig| orig == r);
            prop_assert!(found.is_some(), "reader fabricated a record");
            idx += found.expect("checked") + 1;
        }
    }

    /// Robustness: a table with one corrupted byte either still parses to
    /// the original entries or reports corruption — never wrong data.
    #[test]
    fn table_reader_survives_single_byte_corruption(
        n in 1..100usize,
        flip_at in any::<proptest::sample::Index>(),
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    make_internal_key(format!("k{i:05}").as_bytes(), i as u64 + 1, ValueType::Value),
                    vec![i as u8; 20],
                )
            })
            .collect();
        let mut b = TableBuilder::new(TableOptions { block_size: 128, ..Default::default() });
        for (k, v) in &entries {
            b.add(k, v);
        }
        let mut data = b.finish();
        let pos = flip_at.index(data.len());
        data[pos] ^= 0xFF;
        match scan_all(&data) {
            Err(_) => {} // corruption detected: fine
            Ok(back) => prop_assert_eq!(back, entries, "undetected corruption changed data"),
        }
    }
}
