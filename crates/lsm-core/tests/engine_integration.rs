//! Integration tests for engine paths not covered by unit tests:
//! batched writes, iterator machinery over real tables, cache behaviour
//! and compaction progression into deep levels.

use lsm_core::context::get_table;
use lsm_core::db::{batch::WriteBatch, options::Options, DbCore};
use lsm_core::iterator::InternalIterator;
use lsm_core::policy::PerFilePolicy;
use lsm_core::types::{lookup_key, user_key, MAX_SEQUENCE};
use placement::Ext4Sim;
use smr_sim::{Disk, IoKind, Layout, TimeModel};

const MB: u64 = 1 << 20;

fn open_db(sstable: u64) -> DbCore {
    let cap = 1024 * MB;
    let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
    let mut opts = Options::scaled(sstable);
    opts.wal_buffer_bytes = 0;
    let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 16 * MB);
    DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap()
}

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    (
        format!("key{i:010}").into_bytes(),
        format!("val{i:06}-{}", "y".repeat(64)).into_bytes(),
    )
}

#[test]
fn batched_writes_are_atomic_and_ordered() {
    let mut db = open_db(64 << 10);
    let mut batch = WriteBatch::new();
    for i in 0..100 {
        let (k, v) = kv(i);
        batch.put(&k, &v);
    }
    batch.delete(&kv(50).0);
    let count = batch.count();
    db.write(batch).unwrap();
    assert_eq!(u64::from(count), db.last_sequence());
    assert_eq!(db.get(&kv(0).0).unwrap(), Some(kv(0).1));
    assert_eq!(
        db.get(&kv(50).0).unwrap(),
        None,
        "later delete wins in batch"
    );
    assert_eq!(db.get(&kv(99).0).unwrap(), Some(kv(99).1));
}

#[test]
fn deep_levels_form_under_sustained_load() {
    let mut db = open_db(8 << 10);
    for i in 0..30_000u64 {
        let j = (i * 2654435761) % 30_000;
        let (k, _) = kv(j);
        db.put(&k, &[(j % 251) as u8; 48]).unwrap();
    }
    db.flush().unwrap();
    let v = db.current_version();
    v.check_invariants().unwrap();
    // With AF=10 and tiny tables the tree must reach level 2+.
    let deep: usize = (2..v.num_levels()).map(|l| v.level_file_count(l)).sum();
    assert!(
        deep > 0,
        "no files below level 1: {:?}",
        (0..7).map(|l| v.level_file_count(l)).collect::<Vec<_>>()
    );
    // Spot-check correctness after all that churn.
    for i in (0..30_000u64).step_by(997) {
        let (k, _) = kv(i);
        assert_eq!(
            db.get(&k).unwrap(),
            Some(vec![(i % 251) as u8; 48]),
            "key {i}"
        );
    }
}

#[test]
fn table_iterator_via_cache_matches_file_contents() {
    let mut db = open_db(16 << 10);
    let n = 3000u64;
    for i in 0..n {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    db.flush().unwrap();
    let version = db.current_version();
    // Walk every file through the table cache; keys must be sorted and
    // within the file's recorded bounds.
    let mut total = 0usize;
    for level in 0..version.num_levels() {
        for f in &version.files[level] {
            let table = get_table(db.ctx(), f.id, f.size).unwrap();
            let mut it = table.iter(db.ctx().clone(), IoKind::Scan);
            it.seek_to_first();
            let mut prev: Option<Vec<u8>> = None;
            while it.valid() {
                assert!(it.key() >= f.smallest.as_slice() || prev.is_none());
                if let Some(p) = &prev {
                    assert!(
                        lsm_core::types::internal_compare(p, it.key()) == std::cmp::Ordering::Less
                    );
                }
                prev = Some(it.key().to_vec());
                total += 1;
                it.next();
            }
            // Largest key matches the metadata.
            assert_eq!(prev.as_deref(), Some(f.largest.as_slice()));
        }
    }
    assert!(total >= n as usize, "all versions present across files");
}

#[test]
fn seek_positions_across_file_boundaries() {
    let mut db = open_db(8 << 10);
    for i in 0..5000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    db.flush().unwrap();
    // Scans starting at every 500th key see exactly the right successor.
    for start in (0..4500u64).step_by(500) {
        let got = db.scan(&kv(start).0, 3).unwrap();
        assert_eq!(got[0].0, kv(start).0);
        assert_eq!(got[1].0, kv(start + 1).0);
        assert_eq!(got[2].0, kv(start + 2).0);
    }
}

#[test]
fn block_cache_hit_rate_improves_repeat_scans() {
    let mut db = open_db(16 << 10);
    for i in 0..2000u64 {
        let (k, v) = kv(i);
        db.put(&k, &v).unwrap();
    }
    db.flush().unwrap();
    // Keep the scanned window inside the cache budget (2x sstable).
    db.scan(&kv(0).0, 150).unwrap();
    let (h1, m1) = {
        let g = db.ctx().lock();
        g.block_cache.hit_stats()
    };
    db.scan(&kv(0).0, 150).unwrap();
    let (h2, m2) = {
        let g = db.ctx().lock();
        g.block_cache.hit_stats()
    };
    assert!(h2 > h1, "second scan must hit the block cache");
    assert!(m2 - m1 < m1.max(1), "few new misses on the repeat scan");
}

#[test]
fn lookup_key_semantics_through_table_get() {
    let mut db = open_db(16 << 10);
    db.put(b"alpha", b"1").unwrap();
    db.flush().unwrap();
    let version = db.current_version();
    let f = version.files[0][0].clone();
    let table = get_table(db.ctx(), f.id, f.size).unwrap();
    let hit = table
        .get(db.ctx(), &lookup_key(b"alpha", MAX_SEQUENCE))
        .unwrap()
        .expect("present");
    assert_eq!(user_key(&hit.0), b"alpha");
    assert_eq!(hit.1, b"1");
    assert!(table
        .get(db.ctx(), &lookup_key(b"zzz", MAX_SEQUENCE))
        .unwrap()
        .is_none());
}
