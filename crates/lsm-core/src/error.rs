//! Error type for the LSM engine.

use placement::AllocError;
use smr_sim::DiskError;
use std::fmt;

/// Errors surfaced by the engine.
#[derive(Debug, Clone)]
pub enum Error {
    /// An underlying simulated-disk fault.
    Disk(DiskError),
    /// Disk space allocation failed.
    Alloc(AllocError),
    /// On-disk data failed validation (bad CRC, truncated block, ...).
    Corruption(String),
    /// The request is invalid (unknown file, misuse of the API, ...).
    InvalidArgument(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Disk(e) => write!(f, "disk error: {e}"),
            Error::Alloc(e) => write!(f, "allocation error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Disk(e) => Some(e),
            Error::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for Error {
    fn from(e: DiskError) -> Self {
        Error::Disk(e)
    }
}

impl From<AllocError> for Error {
    fn from(e: AllocError) -> Self {
        Error::Alloc(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Shorthand constructor for corruption errors.
pub fn corruption<T>(msg: impl Into<String>) -> Result<T> {
    Err(Error::Corruption(msg.into()))
}
