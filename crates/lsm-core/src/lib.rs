//! # lsm-core — a LevelDB-style LSM-tree engine on simulated SMR disks
//!
//! A from-scratch reproduction of the LevelDB architecture the SEALDB
//! paper builds on (its Fig. 1): write-ahead log → arena-skiplist
//! memtable → L0 SSTable flush → leveled compaction with amplification
//! factor 10. The engine runs *directly on* the [`smr_sim`] simulated
//! disk through a file-id → extent indirection (§III-D of the paper: no
//! filesystem), and delegates every physical-placement decision to a
//! [`policy::PlacementPolicy`] — the seam where the `sealdb` crate
//! implements sets and dynamic bands.
//!
//! ```
//! use lsm_core::db::{options::Options, DbCore};
//! use lsm_core::policy::PerFilePolicy;
//! use placement::Ext4Sim;
//! use smr_sim::{Disk, Layout, TimeModel};
//!
//! let cap = 1 << 30;
//! let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
//! let opts = Options::scaled(256 << 10);
//! let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 16 << 20);
//! let mut db = DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! ```

pub mod cache;
pub mod context;
pub mod db;
pub mod error;
pub mod filestore;
pub mod iterator;
pub mod memtable;
pub mod policy;
pub mod sstable;
pub mod types;
pub mod util;
pub mod version;
pub mod wal;

pub use db::{
    batch::WriteBatch, options::Options, CompactionRecord, DbCore, RecoveryReport, Snapshot,
    StallStats,
};
pub use error::{Error, Result};
pub use filestore::{CrashImage, FileStore};
pub use policy::{GcConfig, GcReport, PerFilePolicy, PlacementPolicy, SetStats};
pub use types::{FileId, SequenceNumber, ValueType};
