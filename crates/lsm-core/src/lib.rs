//! # lsm-core — a LevelDB-style LSM-tree engine on simulated SMR disks
//!
//! A from-scratch reproduction of the LevelDB architecture the SEALDB
//! paper builds on (its Fig. 1): write-ahead log → arena-skiplist
//! memtable → L0 SSTable flush → leveled compaction with amplification
//! factor 10. The engine runs *directly on* the [`smr_sim`] simulated
//! disk through a file-id → extent indirection (§III-D of the paper: no
//! filesystem), and delegates every physical-placement decision to a
//! [`policy::PlacementPolicy`] — the seam where the `sealdb` crate
//! implements sets and dynamic bands.
//!
//! ```
//! use lsm_core::db::{options::Options, DbCore};
//! use lsm_core::policy::PerFilePolicy;
//! use placement::Ext4Sim;
//! use smr_sim::{Disk, Layout, TimeModel};
//!
//! let cap = 1 << 30;
//! let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
//! let opts = Options::scaled(256 << 10);
//! let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 16 << 20);
//! let mut db = DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap(), Some(b"world".to_vec()));
//! ```

/// Byte-budgeted LRU caches (block cache, table cache).
pub mod cache;
/// Shared store context threading the file store and caches.
pub mod context;
/// The database core: writes, reads, flushes, compactions.
pub mod db;
/// Error and result types for the engine.
pub mod error;
/// File-id to disk-extent indirection over the simulated disk.
pub mod filestore;
/// Internal iterator traits and the merging iterator.
pub mod iterator;
/// Skiplist memtable with arena storage.
pub mod memtable;
/// Placement-policy trait and the per-file baseline policy.
pub mod policy;
/// SSTable blocks, builders and readers.
pub mod sstable;
/// Core identifiers: file ids, sequence numbers, value tags.
pub mod types;
/// Wire coding, checksums, bloom filters and the seeded RNG.
pub mod util;
/// Versioned file-layout metadata and manifest logging.
pub mod version;
/// Write-ahead log record format (LevelDB block framing).
pub mod wal;

pub use db::{
    batch::WriteBatch,
    options::Options,
    scrub::{FileHealth, ScrubConfig, ScrubReport},
    CompactionRecord, DbCore, RecoveryReport, Snapshot, StallStats, VLOG_FILE_BASE,
};
pub use error::{Error, Result};
pub use filestore::{CrashImage, FileStore};
pub use policy::{GcConfig, GcReport, PerFilePolicy, PlacementPolicy, SetStats};
pub use types::{FileId, SequenceNumber, ValueType};
pub use wal::{LogWriter, WalStream};
