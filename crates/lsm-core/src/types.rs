//! Core types of the LSM engine: sequence numbers, value types and the
//! *internal key* encoding (user key + 8-byte trailer packing the
//! sequence number and the value type), identical in spirit to LevelDB's.

use crate::util::coding::{decode_fixed64, put_fixed64};
use std::cmp::Ordering;

/// Identifies a file (SSTable or log) within one database instance.
pub type FileId = u64;

/// Monotonically increasing per-write sequence number (56 bits usable).
pub type SequenceNumber = u64;

/// Largest representable sequence number.
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// Kind of an entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueType {
    /// A tombstone.
    Deletion = 0,
    /// A regular value.
    Value = 1,
}

impl ValueType {
    /// Decodes from the trailer's low byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// Packs sequence and type into the 8-byte trailer value.
pub fn pack_seq_type(seq: SequenceNumber, ty: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE);
    (seq << 8) | ty as u64
}

/// Appends `user_key` plus the packed trailer to `dst`.
pub fn append_internal_key(dst: &mut Vec<u8>, user_key: &[u8], seq: SequenceNumber, ty: ValueType) {
    dst.extend_from_slice(user_key);
    put_fixed64(dst, pack_seq_type(seq, ty));
}

/// Builds an internal key as a fresh vector.
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, ty: ValueType) -> Vec<u8> {
    let mut v = Vec::with_capacity(user_key.len() + 8);
    append_internal_key(&mut v, user_key, seq, ty);
    v
}

/// The user-key prefix of an internal key.
pub fn user_key(ikey: &[u8]) -> &[u8] {
    debug_assert!(ikey.len() >= 8);
    &ikey[..ikey.len() - 8]
}

/// Decoded trailer of an internal key. Panics on an unknown type byte —
/// only for keys the engine built itself (memtable entries); keys read
/// back from disk go through [`try_parse_trailer`].
pub fn parse_trailer(ikey: &[u8]) -> (SequenceNumber, ValueType) {
    debug_assert!(ikey.len() >= 8);
    let packed = decode_fixed64(&ikey[ikey.len() - 8..]);
    let ty = ValueType::from_u8((packed & 0xFF) as u8).expect("valid value type");
    (packed >> 8, ty)
}

/// Decoded trailer of an internal key that came off the disk: an unknown
/// type byte or a short key is a corruption error, not a panic.
pub fn try_parse_trailer(ikey: &[u8]) -> crate::error::Result<(SequenceNumber, ValueType)> {
    if ikey.len() < 8 {
        return crate::error::corruption("internal key shorter than its trailer");
    }
    let packed = decode_fixed64(&ikey[ikey.len() - 8..]);
    let Some(ty) = ValueType::from_u8((packed & 0xFF) as u8) else {
        return crate::error::corruption(format!(
            "unknown value type {} in internal key",
            packed & 0xFF
        ));
    };
    Ok((packed >> 8, ty))
}

/// Sequence number embedded in an internal key.
pub fn sequence_of(ikey: &[u8]) -> SequenceNumber {
    parse_trailer(ikey).0
}

/// Orders internal keys: ascending user key, then *descending* sequence
/// (so the newest version of a key sorts first), then descending type.
pub fn internal_compare(a: &[u8], b: &[u8]) -> Ordering {
    let ua = user_key(a);
    let ub = user_key(b);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = decode_fixed64(&a[a.len() - 8..]);
            let tb = decode_fixed64(&b[b.len() - 8..]);
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// The internal key used to *start* a lookup of `user_key` at `snapshot`:
/// it sorts before every entry of that user key with sequence <= snapshot.
pub fn lookup_key(user_key: &[u8], snapshot: SequenceNumber) -> Vec<u8> {
    make_internal_key(user_key, snapshot, ValueType::Value)
}

/// Shortens `start` in place to a key that is still `>= start` and
/// `< limit` (user-key space); used by table builders to cut index keys.
pub fn find_shortest_separator(start: &mut Vec<u8>, limit: &[u8]) {
    let min_len = start.len().min(limit.len());
    let mut diff = 0;
    while diff < min_len && start[diff] == limit[diff] {
        diff += 1;
    }
    if diff >= min_len {
        return; // one is a prefix of the other
    }
    let byte = start[diff];
    if byte < 0xFF && byte + 1 < limit[diff] {
        start[diff] = byte + 1;
        start.truncate(diff + 1);
        debug_assert!(start.as_slice() < limit);
    }
}

/// Shortens `key` in place to a short key `>= key`.
pub fn find_short_successor(key: &mut Vec<u8>) {
    for i in 0..key.len() {
        if key[i] != 0xFF {
            key[i] += 1;
            key.truncate(i + 1);
            return;
        }
    }
    // All 0xFF: leave unchanged.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_parse_roundtrip() {
        let ik = make_internal_key(b"foo", 1234, ValueType::Value);
        assert_eq!(user_key(&ik), b"foo");
        assert_eq!(parse_trailer(&ik), (1234, ValueType::Value));
        let ik = make_internal_key(b"", MAX_SEQUENCE, ValueType::Deletion);
        assert_eq!(user_key(&ik), b"");
        assert_eq!(parse_trailer(&ik), (MAX_SEQUENCE, ValueType::Deletion));
    }

    #[test]
    fn ordering_user_key_dominates() {
        let a = make_internal_key(b"aaa", 1, ValueType::Value);
        let b = make_internal_key(b"bbb", 100, ValueType::Value);
        assert_eq!(internal_compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn ordering_newer_sequence_first() {
        let newer = make_internal_key(b"k", 10, ValueType::Value);
        let older = make_internal_key(b"k", 5, ValueType::Value);
        assert_eq!(internal_compare(&newer, &older), Ordering::Less);
    }

    #[test]
    fn lookup_key_sorts_before_visible_entries() {
        let lk = lookup_key(b"k", 10);
        for seq in 0..=10 {
            let e = make_internal_key(b"k", seq, ValueType::Value);
            assert_ne!(internal_compare(&lk, &e), Ordering::Greater);
        }
        let newer = make_internal_key(b"k", 11, ValueType::Value);
        assert_eq!(internal_compare(&lk, &newer), Ordering::Greater);
    }

    #[test]
    fn shortest_separator() {
        // ('o' + 1 = 'p') < 'z': shortened to "fp".
        let mut s = b"foo".to_vec();
        find_shortest_separator(&mut s, b"fz");
        assert_eq!(s, b"fp");

        // 'o' + 1 == 'p' == limit byte: cannot shorten.
        let mut s = b"helloworld".to_vec();
        find_shortest_separator(&mut s, b"hellp");
        assert_eq!(s, b"helloworld");

        // Prefix case: unchanged.
        let mut s = b"abc".to_vec();
        find_shortest_separator(&mut s, b"abcdef");
        assert_eq!(s, b"abc");
    }

    #[test]
    fn short_successor() {
        let mut k = b"abc".to_vec();
        find_short_successor(&mut k);
        assert_eq!(k, b"b");
        let mut k = vec![0xFF, 0xFF];
        find_short_successor(&mut k);
        assert_eq!(k, vec![0xFF, 0xFF]);
        let mut k = vec![0xFF, 0x01];
        find_short_successor(&mut k);
        assert_eq!(k, vec![0xFF, 0x02]);
    }
}
