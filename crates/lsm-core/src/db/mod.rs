//! The database core: LevelDB's write path (WAL → memtable → L0 flush),
//! read path (memtable → L0 → sorted levels), and synchronous leveled
//! compaction. Placement is delegated to a [`PlacementPolicy`], which is
//! where the SEALDB crate plugs in sets and dynamic bands.
//!
//! Compactions run synchronously on the caller thread: LevelDB serialises
//! them on a single background thread anyway, and inline execution makes
//! the simulated-latency attribution of the paper's Fig. 10 exact.

/// Atomic multi-key write batches.
pub mod batch;
/// Full-database merged iterators.
pub mod iter;
/// Tunable open-time options.
pub mod options;
/// Online scrub-and-repair of SSTable blocks.
pub mod scrub;

use crate::context::{evict_file, get_table, new_ctx, SharedCtx};
use crate::error::Result;
use crate::filestore::{CrashImage, FileStore};
use crate::iterator::{InternalIterator, MergingIterator};
use crate::memtable::MemTable;
use crate::policy::PlacementPolicy;
use crate::sstable::TableBuilder;
use crate::types::{
    lookup_key, try_parse_trailer, user_key, FileId, SequenceNumber, ValueType, MAX_SEQUENCE,
};
use crate::version::{
    Compaction, FileMetaData, FileMetaHandle, VersionEdit, VersionSet, FSMETA_LOG_ID,
    MANIFEST_LOG_ID,
};
use crate::wal::{LogReader, LogWriter};
use batch::WriteBatch;
use iter::{DbIterator, LevelIterator};
use options::Options;
use smr_sim::{Disk, IoKind, ObsEventKind, ObsLayer};

/// A finished compaction output awaiting placement:
/// `(file id, encoded table bytes, smallest key, largest key)`.
type PendingOutput = (FileId, Vec<u8>, Vec<u8>, Vec<u8>);

/// First file id reserved for value-log segments. Segment ids live far
/// above anything the version set's file-id counter can reach, so the
/// two id spaces never collide and [`DbCore::reopen`]'s orphan cleanup
/// can tell a vlog segment (reconciled by the value log against its own
/// manifest checkpoint) from an orphaned table.
pub const VLOG_FILE_BASE: FileId = 1 << 48;

/// Details of one executed compaction (drives the paper's Fig. 10).
#[derive(Clone, Debug)]
pub struct CompactionRecord {
    /// 1-based compaction sequence number.
    pub id: u64,
    /// Input level (outputs land in `level + 1`).
    pub level: usize,
    /// Number of input SSTables (victims + overlapped set).
    pub input_files: usize,
    /// Total input bytes.
    pub input_bytes: u64,
    /// Number of output SSTables.
    pub output_files: usize,
    /// Total output bytes (the paper's "compaction data size").
    pub output_bytes: u64,
    /// Simulated clock when the compaction started.
    pub start_ns: u64,
    /// Simulated latency of the compaction.
    pub duration_ns: u64,
    /// Distinct fixed bands the outputs touched (1 per extent elsewhere).
    pub output_bands: u64,
    /// Whether this was a trivial move (no data rewritten).
    pub trivial_move: bool,
}

/// What [`DbCore::reopen`] had to tolerate or repair to come back up.
///
/// All-zero after a clean shutdown; non-zero fields mean the recovery
/// paths did real work (torn WAL tail skipped, manifest truncated to its
/// last consistent prefix, orphaned files reclaimed).
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// WAL records replayed into the recovered memtable.
    pub wal_records_recovered: u64,
    /// WAL records skipped because they were torn or failed their CRC.
    pub wal_records_skipped: u64,
    /// WAL bytes discarded by the log reader while resynchronising.
    pub wal_bytes_dropped: u64,
    /// Manifest edits applied.
    pub manifest_edits_applied: u64,
    /// Manifest records dropped after the first corrupt one.
    pub manifest_records_dropped: u64,
    /// Data files found on disk but absent from the recovered version
    /// (placed by an edit that never committed) and reclaimed.
    pub orphan_files_dropped: u64,
    /// Version files that failed validation on reopen and were removed
    /// from the tree rather than left to load-bear (see
    /// [`DbCore::quarantine_invalid_files`]).
    pub files_quarantined: u64,
}

impl RecoveryReport {
    /// True if any recovery path had to repair something.
    pub fn any_damage(&self) -> bool {
        self.wal_records_skipped != 0
            || self.wal_bytes_dropped != 0
            || self.manifest_records_dropped != 0
            || self.orphan_files_dropped != 0
            || self.files_quarantined != 0
    }
}

/// Write-stall accounting for deferred-compaction mode: how often and for
/// how long the write path was held back by LevelDB's three backpressure
/// mechanisms. All durations are simulated nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallStats {
    /// Writes delayed once by the L0 slowdown trigger.
    pub slowdown_count: u64,
    /// Total slowdown delay injected.
    pub slowdown_ns: u64,
    /// Writes stopped at the L0 stop trigger.
    pub stop_count: u64,
    /// Total time writes spent stopped waiting for compaction.
    pub stop_ns: u64,
    /// Writes that waited for a full memtable to flush.
    pub memtable_count: u64,
    /// Total time writes spent waiting on memtable flushes.
    pub memtable_ns: u64,
}

impl StallStats {
    /// Total stall events of any kind.
    pub fn total_count(&self) -> u64 {
        self.slowdown_count + self.stop_count + self.memtable_count
    }

    /// Total stalled time of any kind, ns.
    pub fn total_ns(&self) -> u64 {
        self.slowdown_ns + self.stop_ns + self.memtable_ns
    }

    /// Stalls accumulated since `baseline` (a snapshot taken earlier on
    /// the same database).
    pub fn delta_since(&self, baseline: &StallStats) -> StallStats {
        StallStats {
            slowdown_count: self.slowdown_count - baseline.slowdown_count,
            slowdown_ns: self.slowdown_ns - baseline.slowdown_ns,
            stop_count: self.stop_count - baseline.stop_count,
            stop_ns: self.stop_ns - baseline.stop_ns,
            memtable_count: self.memtable_count - baseline.memtable_count,
            memtable_ns: self.memtable_ns - baseline.memtable_ns,
        }
    }
}

/// A pinned read point; obtain via [`DbCore::snapshot`] and return via
/// [`DbCore::release_snapshot`].
#[derive(Debug)]
pub struct Snapshot {
    seq: SequenceNumber,
}

impl Snapshot {
    /// The pinned sequence number.
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }
}

/// The LSM-tree database.
pub struct DbCore {
    opts: Options,
    ctx: SharedCtx,
    mem: MemTable,
    versions: VersionSet,
    wal: Option<LogWriter>,
    wal_id: FileId,
    policy: Box<dyn PlacementPolicy>,
    compactions: Vec<CompactionRecord>,
    flush_count: u64,
    /// Sequence numbers pinned by live snapshots.
    snapshots: Vec<SequenceNumber>,
    /// What the last open/reopen had to repair.
    recovery: RecoveryReport,
    /// Write-stall accounting (deferred-compaction mode).
    stalls: StallStats,
    /// Resume point of the incremental scrubber: the (level, file id)
    /// most recently scanned this pass.
    scrub_cursor: Option<(usize, FileId)>,
    /// Lifetime scrub totals across all steps.
    scrub_totals: scrub::ScrubReport,
}

impl std::fmt::Debug for DbCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbCore")
            .field("policy", &self.policy.name())
            .field("mem_entries", &self.mem.len())
            .field("flush_count", &self.flush_count)
            .finish_non_exhaustive()
    }
}

impl DbCore {
    /// Opens a fresh database on `disk` with the given placement policy.
    pub fn open(disk: Disk, opts: Options, policy: Box<dyn PlacementPolicy>) -> Result<DbCore> {
        opts.validate()
            .map_err(crate::error::Error::InvalidArgument)?;
        let fs = FileStore::new(disk, opts.log_zone_bytes);
        let ctx = new_ctx(fs, opts.block_cache_bytes, opts.table_cache_entries);
        let mut versions = VersionSet::new(opts.level_params());
        let mem = MemTable::new(opts.seed);
        let (wal, wal_id) = {
            let mut guard = ctx.lock();
            versions.create(&mut guard.fs)?;
            if opts.wal_enabled {
                let id = versions.new_file_id();
                guard.fs.create_log(id)?;
                versions.set_log_number(id);
                // Persist the counters so a crash before the first flush
                // still recovers a consistent next-file id.
                versions.log_and_apply(&mut guard.fs, VersionEdit::default())?;
                (Some(LogWriter::new()), id)
            } else {
                (None, 0)
            }
        };
        Ok(DbCore {
            opts,
            ctx,
            mem,
            versions,
            wal,
            wal_id,
            policy,
            compactions: Vec::new(),
            flush_count: 0,
            snapshots: Vec::new(),
            recovery: RecoveryReport::default(),
            stalls: StallStats::default(),
            scrub_cursor: None,
            scrub_totals: scrub::ScrubReport::default(),
        })
    }

    /// Re-opens the database from its on-disk state: rebuilds the version
    /// set from the manifest (falling back to its last consistent prefix
    /// if the tail is corrupt), replays outstanding WAL records into a
    /// fresh memtable with skip-and-report on torn or corrupt records,
    /// and reclaims data files that no committed version references.
    /// [`DbCore::recovery_report`] says what was repaired.
    pub fn reopen(self) -> Result<DbCore> {
        let DbCore {
            opts,
            ctx,
            mut policy,
            ..
        } = self;
        let mut versions = VersionSet::new(opts.level_params());
        let mut mem = MemTable::new(opts.seed ^ 0xC0FFEE);
        let mut max_seq = 0u64;
        let mut report = RecoveryReport::default();
        {
            let mut guard = ctx.lock();
            let manifest = versions.recover(&mut guard.fs)?;
            report.manifest_edits_applied = manifest.edits_applied;
            report.manifest_records_dropped = manifest.records_dropped;
            let replay_from = versions.log_number();
            for log_id in guard.fs.log_ids() {
                if log_id == MANIFEST_LOG_ID || log_id == FSMETA_LOG_ID || log_id < replay_from {
                    continue;
                }
                let data = guard.fs.log_read_all(log_id, IoKind::Meta)?;
                let mut reader = LogReader::new(&data);
                while let Some(rec) = reader.next_record() {
                    // Skip-and-report: a torn or corrupt record loses its
                    // batch, but later intact records still replay.
                    let rec = match rec {
                        Ok(rec) => rec,
                        Err(_) => {
                            report.wal_records_skipped += 1;
                            guard.fs.disk_mut().stats_mut().faults.checksum_failures += 1;
                            continue;
                        }
                    };
                    let Ok(batch) = WriteBatch::decode(&rec) else {
                        report.wal_records_skipped += 1;
                        continue;
                    };
                    for (seq, ty, key, value) in batch.iter() {
                        mem.add(seq, ty, key, value);
                        max_seq = max_seq.max(seq);
                    }
                    report.wal_records_recovered += 1;
                }
                report.wal_bytes_dropped += reader.dropped_bytes as u64;
            }
            // Orphan cleanup: a crash between file placement and the
            // manifest commit (or a manifest tail we just dropped) leaves
            // data files no version references. They must not load-bear;
            // reclaim their space.
            let live: std::collections::BTreeSet<FileId> = versions
                .current()
                .files
                .iter()
                .flatten()
                .map(|f| f.id)
                .collect();
            let orphans: Vec<FileId> = guard
                .fs
                .file_extents()
                .into_iter()
                .map(|(id, _)| id)
                // Value-log segments are not version files; the value log
                // reconciles them against its own manifest checkpoint.
                .filter(|id| !live.contains(id) && *id < VLOG_FILE_BASE)
                .collect();
            for id in orphans {
                if policy.delete_file(&mut guard.fs, id).is_ok() {
                    report.orphan_files_dropped += 1;
                }
            }
        }
        if max_seq > versions.last_sequence() {
            versions.set_last_sequence(max_seq);
        }
        // Start a fresh WAL for new writes (replayed logs stay until the
        // recovered memtable flushes).
        let (wal, wal_id) = if opts.wal_enabled {
            let mut guard = ctx.lock();
            let mut id = versions.new_file_id();
            while guard.fs.has_log(id) {
                id = versions.new_file_id();
            }
            guard.fs.create_log(id)?;
            versions.log_and_apply(&mut guard.fs, VersionEdit::default())?;
            (Some(LogWriter::new()), id)
        } else {
            (None, 0)
        };
        Ok(DbCore {
            opts,
            ctx,
            mem,
            versions,
            wal,
            wal_id,
            policy,
            compactions: Vec::new(),
            flush_count: 0,
            snapshots: Vec::new(),
            recovery: report,
            stalls: StallStats::default(),
            scrub_cursor: None,
            scrub_totals: scrub::ScrubReport::default(),
        })
    }

    /// Rebuilds the database from a crash image: the file store reverts
    /// to the captured power-cut state, both caches drop (they may hold
    /// blocks from the discarded future), the placement policy relearns
    /// exactly the surviving extents, and normal recovery (manifest +
    /// WAL replay + orphan cleanup) runs on what the disk retained.
    pub fn restore_crash_image(mut self, image: &CrashImage) -> Result<DbCore> {
        {
            let mut guard = self.ctx.lock();
            guard.fs.restore_crash_image(image);
            guard.block_cache.clear();
            guard.table_cache.clear();
            let live = guard.fs.file_extents();
            self.policy.rebuild(&live);
        }
        self.reopen()
    }

    /// Validates every data file the current version references by
    /// opening it as a table (footer, index and filter checks). Files
    /// that fail are *quarantined*: removed from the version through a
    /// committed manifest edit and their space reclaimed, so a corrupt
    /// file can never load-bear a read. Returns the quarantined ids.
    pub fn quarantine_invalid_files(&mut self) -> Result<Vec<FileId>> {
        let version = self.versions.current();
        let mut bad: Vec<(usize, FileId)> = Vec::new();
        for (level, files) in version.files.iter().enumerate() {
            for f in files {
                if get_table(&self.ctx, f.id, f.size).is_err() {
                    bad.push((level, f.id));
                }
            }
        }
        if bad.is_empty() {
            return Ok(Vec::new());
        }
        let mut edit = VersionEdit::default();
        for &(level, id) in &bad {
            edit.delete_file(level, id);
        }
        {
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            for &(_, id) in &bad {
                self.policy.delete_file(&mut guard.fs, id)?;
            }
        }
        for &(level, id) in &bad {
            self.obs_event(
                ObsLayer::Lsm,
                ObsEventKind::FileQuarantined,
                id,
                level as u64,
            );
        }
        let ids: Vec<FileId> = bad.into_iter().map(|(_, id)| id).collect();
        for &id in &ids {
            evict_file(&self.ctx, id);
        }
        self.recovery.files_quarantined += ids.len() as u64;
        Ok(ids)
    }

    /// The shared store context (disk stats, traces, caches).
    pub fn ctx(&self) -> &SharedCtx {
        &self.ctx
    }

    /// What the last [`DbCore::reopen`] had to tolerate or repair
    /// (all-zero for a freshly opened database).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Engine options.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// The placement policy.
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// Runs the placement policy's garbage collector (fragment
    /// coalescing for set-based policies; a no-op report otherwise).
    pub fn collect_garbage(
        &mut self,
        cfg: &crate::policy::GcConfig,
    ) -> Result<crate::policy::GcReport> {
        let mut guard = self.ctx.lock();
        // GC relocations change file extents but not file ids, so the
        // table cache stays valid; the block cache keys include offsets
        // within the file, which are also unchanged.
        self.policy.collect_garbage(&mut guard.fs, cfg)
    }

    /// Executed compactions, in order.
    pub fn compaction_log(&self) -> &[CompactionRecord] {
        &self.compactions
    }

    /// Number of memtable flushes performed.
    pub fn flush_count(&self) -> u64 {
        self.flush_count
    }

    /// The current version (file layout snapshot).
    pub fn current_version(&self) -> std::sync::Arc<crate::version::Version> {
        self.versions.current()
    }

    /// Last sequence number issued.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.versions.last_sequence()
    }

    /// Simulated clock of the underlying disk, ns.
    pub fn clock_ns(&self) -> u64 {
        self.ctx.lock().fs.disk().clock_ns()
    }

    // ----- observability plumbing -----
    //
    // The disk owns the store's single `Obs` sink (one clock, one event
    // order, deterministic exports); these helpers reach it through the
    // shared context so every layer of the engine reports into the same
    // registry.

    fn obs_latency(&self, layer: ObsLayer, name: &str, ns: u64) {
        self.ctx
            .lock()
            .fs
            .disk_mut()
            .obs_mut()
            .latency(layer, name, ns);
    }

    fn obs_counter(&self, layer: ObsLayer, name: &str, delta: u64) {
        self.ctx
            .lock()
            .fs
            .disk_mut()
            .obs_mut()
            .counter_add(layer, name, delta);
    }

    fn obs_event(&self, layer: ObsLayer, kind: ObsEventKind, a: u64, b: u64) {
        self.ctx.lock().fs.disk_mut().obs_event(layer, kind, a, b);
    }

    /// Per-level (file count, bytes) summary plus the memtable size —
    /// LevelDB's `leveldb.stats` property in structured form.
    pub fn level_summary(&self) -> (Vec<(usize, u64)>, usize) {
        let v = self.versions.current();
        let levels = (0..v.num_levels())
            .map(|l| (v.level_file_count(l), v.level_bytes(l)))
            .collect();
        (levels, self.mem.approximate_memory_usage())
    }

    // ----- write path -----

    /// Inserts a key/value pair.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(b)
    }

    /// Deletes a key.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write(b)
    }

    /// Applies a batch atomically: WAL first, then the memtable. In the
    /// default mode, flush and compactions run inline to quiescence when
    /// thresholds trip; in deferred-compaction mode the write instead
    /// passes through [`DbCore::make_room_for_write`]'s backpressure and
    /// leaves compaction to [`DbCore::compact_step`] callers.
    pub fn write(&mut self, batch: WriteBatch) -> Result<()> {
        self.write_inner(batch, true)
    }

    fn write_inner(&mut self, mut batch: WriteBatch, account: bool) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let t0 = self.clock_ns();
        if self.opts.deferred_compaction {
            self.make_room_for_write()?;
        }
        let seq = self.versions.last_sequence() + 1;
        batch.set_sequence(seq);
        if let Some(wal) = self.wal.as_mut() {
            wal.add_record(batch.rep());
        }
        // The OS page cache absorbs small appends; bytes reach the
        // disk in `wal_buffer_bytes` chunks (sync=false semantics).
        self.flush_wal_buffer(false)?;
        for (s, ty, key, value) in batch.iter() {
            self.mem.add(s, ty, key, value);
        }
        self.versions
            .set_last_sequence(seq + u64::from(batch.count()) - 1);
        if account {
            self.ctx.lock().fs.disk_mut().stats_mut().user_payload += batch.payload_bytes();
        }
        if !self.opts.deferred_compaction {
            self.maybe_flush_and_compact()?;
        }
        // Whole-op latency, flush/compaction stalls included: the paper's
        // Fig. 10 bimodality lives in this histogram's tail.
        self.obs_latency(ObsLayer::Store, "write_ns", self.clock_ns() - t0);
        Ok(())
    }

    /// Drains the buffered WAL tail to disk. When `force` is false this
    /// honours the `wal_buffer_bytes` chunking; when true any pending
    /// bytes go down immediately (a durability barrier for callers that
    /// must not let later work overtake an acked record).
    fn flush_wal_buffer(&mut self, force: bool) -> Result<()> {
        let threshold = if force {
            1
        } else {
            self.opts.wal_buffer_bytes.max(1)
        };
        let Some(wal) = self.wal.as_mut() else {
            return Ok(());
        };
        if wal.pending_len() == 0 || wal.pending_len() < threshold {
            return Ok(());
        }
        let bytes = wal.take();
        let mut guard = self.ctx.lock();
        let s0 = guard.fs.disk().clock_ns();
        guard.fs.log_append(self.wal_id, &bytes, IoKind::Wal)?;
        let s1 = guard.fs.disk().clock_ns();
        let obs = guard.fs.disk_mut().obs_mut();
        obs.latency(ObsLayer::Wal, "sync_ns", s1 - s0);
        obs.counter_add(ObsLayer::Wal, "sync_bytes", bytes.len() as u64);
        Ok(())
    }

    /// Forces any buffered WAL bytes to disk. Value-log GC calls this
    /// after a pointer-fixup batch so the fixups are durable before the
    /// victim segment is recycled — otherwise a crash could replay the
    /// world to a state where live pointers still reference freed bytes.
    pub fn sync_wal(&mut self) -> Result<()> {
        self.flush_wal_buffer(true)
    }

    /// Bytes buffered in the WAL but not yet on disk. Zero means every
    /// acked record is durable; the debug-build ordering auditor asserts
    /// this at ack time.
    pub fn wal_pending_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.pending_len() as u64)
    }

    /// Applies a batch exactly like [`DbCore::write`] but without
    /// crediting `user_payload`: internal traffic (value-log GC pointer
    /// fixups) must not deflate the write-amplification denominator.
    pub fn write_unaccounted(&mut self, batch: WriteBatch) -> Result<()> {
        self.write_inner(batch, false)
    }

    /// Runs a closure with the file store and placement policy borrowed
    /// together — the value log appends segments and recycles victims
    /// through exactly the allocator state the LSM itself uses.
    pub fn with_fs_and_policy<R>(
        &mut self,
        f: impl FnOnce(&mut FileStore, &mut dyn PlacementPolicy) -> R,
    ) -> R {
        let mut guard = self.ctx.lock();
        f(&mut guard.fs, self.policy.as_mut())
    }

    /// Returns the opaque auxiliary blob the manifest currently carries
    /// (the value log's segment-directory checkpoint), if any.
    pub fn aux_state(&self) -> Option<Vec<u8>> {
        self.versions.aux().map(<[u8]>::to_vec)
    }

    /// Commits a new auxiliary blob through the manifest. Durable once
    /// this returns: recovery hands the latest committed blob back via
    /// [`DbCore::aux_state`].
    pub fn commit_aux_state(&mut self, blob: Vec<u8>) -> Result<()> {
        let edit = VersionEdit {
            aux: Some(blob),
            ..Default::default()
        };
        let mut guard = self.ctx.lock();
        self.versions.log_and_apply(&mut guard.fs, edit)
    }

    /// Applies a batch shipped by a replication primary, keeping the
    /// primary-assigned sequence range instead of allocating a local
    /// one — the replay-from-sequence half of WAL shipping. Idempotent:
    /// a batch whose range is already at or below the local last
    /// sequence is skipped and `Ok(false)` returned, so duplicate
    /// frames (retransmits, catch-up overlap) are harmless. A batch
    /// that would open a sequence gap or straddle the applied boundary
    /// is refused — the shipping layer must deliver frames in order.
    pub fn apply_replicated(&mut self, batch: WriteBatch) -> Result<bool> {
        if batch.is_empty() {
            return Ok(false);
        }
        let t0 = self.clock_ns();
        let first = batch.sequence();
        let last = first + u64::from(batch.count()) - 1;
        let applied = self.versions.last_sequence();
        if last <= applied {
            return Ok(false);
        }
        if first != applied + 1 {
            return Err(crate::error::Error::InvalidArgument(format!(
                "replicated batch covers sequences {first}..={last} but local state is at {applied}"
            )));
        }
        if self.opts.deferred_compaction {
            self.make_room_for_write()?;
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.add_record(batch.rep());
        }
        self.flush_wal_buffer(false)?;
        for (s, ty, key, value) in batch.iter() {
            self.mem.add(s, ty, key, value);
        }
        self.versions.set_last_sequence(last);
        self.ctx.lock().fs.disk_mut().stats_mut().user_payload += batch.payload_bytes();
        if !self.opts.deferred_compaction {
            self.maybe_flush_and_compact()?;
        }
        self.obs_latency(ObsLayer::Replication, "apply_ns", self.clock_ns() - t0);
        Ok(true)
    }

    /// Forces the memtable to flush and compactions to quiesce (used at
    /// the end of load phases).
    pub fn flush(&mut self) -> Result<()> {
        self.flush_memtable()?;
        self.compact_until_quiescent()
    }

    fn maybe_flush_and_compact(&mut self) -> Result<()> {
        if self.mem.approximate_memory_usage() >= self.opts.write_buffer_size {
            self.flush_memtable()?;
            self.compact_until_quiescent()?;
        }
        Ok(())
    }

    /// LevelDB's `MakeRoomForWrite` for deferred-compaction mode: the
    /// three backpressure mechanisms, applied in LevelDB's order, each
    /// surfaced as a first-class stall event.
    ///
    /// 1. **Slowdown** — once per write, if L0 has reached the slowdown
    ///    trigger, inject a fixed simulated delay so compaction (driven by
    ///    the front-end's idle loop) can win some ground.
    /// 2. **Stop** — with the memtable full and L0 at the stop trigger,
    ///    the write cannot proceed at all; compaction runs inline (the
    ///    writer is blocked on the background thread) until L0 drops below
    ///    the trigger, and the elapsed time is the stall.
    /// 3. **Memtable** — with the memtable full (and room in L0), the
    ///    flush itself is what the writer waits on.
    fn make_room_for_write(&mut self) -> Result<()> {
        let mut allow_delay = true;
        loop {
            let l0 = self.versions.current().level_file_count(0);
            if allow_delay && l0 >= self.opts.l0_slowdown_trigger {
                let penalty = self.opts.slowdown_penalty_ns;
                self.ctx.lock().fs.disk_mut().advance_ns(penalty);
                self.stalls.slowdown_count += 1;
                self.stalls.slowdown_ns += penalty;
                self.obs_counter(ObsLayer::Lsm, "stall.slowdown_count", 1);
                self.obs_latency(ObsLayer::Lsm, "stall_slowdown_ns", penalty);
                self.obs_event(
                    ObsLayer::Lsm,
                    ObsEventKind::WriteSlowdown,
                    l0 as u64,
                    penalty,
                );
                allow_delay = false;
                continue;
            }
            if self.mem.approximate_memory_usage() < self.opts.write_buffer_size {
                return Ok(());
            }
            if l0 >= self.opts.l0_stop_trigger {
                let t0 = self.clock_ns();
                let mut progressed = false;
                while self.versions.current().level_file_count(0) >= self.opts.l0_stop_trigger {
                    if self.compact_step()? {
                        progressed = true;
                    } else {
                        break;
                    }
                }
                let dt = self.clock_ns() - t0;
                self.stalls.stop_count += 1;
                self.stalls.stop_ns += dt;
                self.obs_counter(ObsLayer::Lsm, "stall.stop_count", 1);
                self.obs_latency(ObsLayer::Lsm, "stall_stop_ns", dt);
                self.obs_event(ObsLayer::Lsm, ObsEventKind::WriteStop, l0 as u64, dt);
                if progressed {
                    continue;
                }
                // No compaction available despite a saturated L0 (cannot
                // happen with a sane trigger order) — flush rather than
                // spin.
            }
            let t0 = self.clock_ns();
            self.flush_memtable()?;
            let dt = self.clock_ns() - t0;
            let l0_after = self.versions.current().level_file_count(0) as u64;
            self.stalls.memtable_count += 1;
            self.stalls.memtable_ns += dt;
            self.obs_counter(ObsLayer::Lsm, "stall.memtable_count", 1);
            self.obs_latency(ObsLayer::Lsm, "stall_memtable_ns", dt);
            self.obs_event(ObsLayer::Lsm, ObsEventKind::MemtableStall, l0_after, dt);
        }
    }

    /// Write-stall accounting so far (all-zero outside deferred mode).
    pub fn stall_stats(&self) -> StallStats {
        self.stalls
    }

    /// Switches between inline (quiesce-on-write) and deferred
    /// compaction at runtime — the serving front-end preloads in inline
    /// mode, then flips to deferred for the measured phase so load-time
    /// compactions never pollute the stall accounting.
    pub fn set_deferred_compaction(&mut self, on: bool) {
        self.opts.deferred_compaction = on;
    }

    /// Whether the version tree currently wants a compaction (any level's
    /// score at or above 1.0) — the front-end's cue to spend idle disk
    /// time on background work.
    pub fn needs_compaction(&self) -> bool {
        self.versions.compaction_score().1 >= 1.0
    }

    /// Runs at most one compaction picked by score and victim priority —
    /// the unit of background-thread work in deferred-compaction mode.
    /// Returns whether a compaction actually ran.
    pub fn compact_step(&mut self) -> Result<bool> {
        let compaction = {
            let policy = &self.policy;
            let prio = |overlapped: &[FileMetaHandle]| -> u64 {
                let ids: Vec<FileId> = overlapped.iter().map(|f| f.id).collect();
                policy.victim_priority(&ids)
            };
            self.versions.pick_compaction(Some(&prio))
        };
        match compaction {
            Some(c) => {
                self.do_compaction(c)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn flush_memtable(&mut self) -> Result<()> {
        if self.mem.is_empty() {
            return Ok(());
        }
        let t0 = self.clock_ns();
        let old_wal = self.wal_id;
        let file_id = self.versions.new_file_id();
        let mut builder = TableBuilder::new(self.opts.table_options());
        {
            let mut it = self.mem.iter();
            it.seek_to_first();
            while it.valid() {
                builder.add(it.key(), it.value());
                it.next();
            }
        }
        let smallest = builder.first_key().expect("non-empty memtable").to_vec();
        let largest = builder.last_key().to_vec();
        let data = builder.finish();
        let size = data.len() as u64;
        let set_id = {
            let mut guard = self.ctx.lock();
            guard.fs.disk_mut().set_trace_tag(0);
            self.policy.place_flush(&mut guard.fs, file_id, &data)?
        };
        let mut edit = VersionEdit::default();
        edit.add_file(
            0,
            FileMetaData {
                id: file_id,
                size,
                smallest,
                largest,
                set_id,
            },
        );
        // Rotate the WAL: records up to here are now durable in the table.
        let new_wal = if self.wal.is_some() {
            let id = self.versions.new_file_id();
            self.versions.set_log_number(id);
            Some(id)
        } else {
            None
        };
        {
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            if let Some(id) = new_wal {
                guard.fs.delete_log(self.wal_id)?;
                guard.fs.create_log(id)?;
                self.wal_id = id;
                self.wal = Some(LogWriter::new());
            }
            self.versions
                .maybe_compact_manifest(&mut guard.fs, self.opts.manifest_rewrite_bytes)?;
        }
        self.flush_count += 1;
        self.mem = MemTable::new(self.opts.seed.wrapping_add(self.flush_count));
        self.obs_counter(ObsLayer::Lsm, "flush_bytes", size);
        self.obs_latency(ObsLayer::Lsm, "flush_ns", self.clock_ns() - t0);
        self.obs_event(ObsLayer::Lsm, ObsEventKind::Flush, size, file_id);
        if let Some(id) = new_wal {
            self.obs_event(ObsLayer::Wal, ObsEventKind::WalRotate, id, old_wal);
        }
        Ok(())
    }

    fn compact_until_quiescent(&mut self) -> Result<()> {
        while self.compact_step()? {}
        Ok(())
    }

    /// Manually compacts every file overlapping `[begin, end]` (user
    /// keys) down the tree, level by level — LevelDB's `CompactRange`.
    /// Afterwards the range's data sits in the deepest populated level.
    pub fn compact_range(&mut self, begin: &[u8], end: &[u8]) -> Result<()> {
        self.flush_memtable()?;
        for level in 0..self.opts.num_levels - 1 {
            let version = self.versions.current();
            let inputs0 = version.overlapping_files(level, begin, end);
            if inputs0.is_empty() {
                continue;
            }
            let (lo, hi) = {
                let mut lo = user_key(&inputs0[0].smallest).to_vec();
                let mut hi = user_key(&inputs0[0].largest).to_vec();
                for f in &inputs0[1..] {
                    if user_key(&f.smallest) < lo.as_slice() {
                        lo = user_key(&f.smallest).to_vec();
                    }
                    if user_key(&f.largest) > hi.as_slice() {
                        hi = user_key(&f.largest).to_vec();
                    }
                }
                (lo, hi)
            };
            let inputs1 = if level + 1 < self.opts.num_levels {
                version.overlapping_files(level + 1, &lo, &hi)
            } else {
                Vec::new()
            };
            let grandparents = if level + 2 < self.opts.num_levels {
                version.overlapping_files(level + 2, &lo, &hi)
            } else {
                Vec::new()
            };
            let c = Compaction {
                level,
                inputs: [inputs0, inputs1],
                grandparents,
            };
            self.do_compaction(c)?;
        }
        self.compact_until_quiescent()
    }

    /// Whether a compaction can move its single input file down a level
    /// without rewriting (LevelDB's trivial move).
    fn is_trivial_move(&self, c: &Compaction) -> bool {
        c.inputs[0].len() == 1
            && c.inputs[1].is_empty()
            && c.grandparents.iter().map(|f| f.size).sum::<u64>()
                <= self.opts.max_grandparent_overlap_bytes
    }

    fn do_compaction(&mut self, c: Compaction) -> Result<()> {
        let cid = self.compactions.len() as u64 + 1;
        let start_ns = self.clock_ns();
        if self.is_trivial_move(&c) {
            let f = &c.inputs[0][0];
            let f_size = f.size;
            let mut edit = VersionEdit::default();
            edit.delete_file(c.level, f.id);
            edit.add_file(c.level + 1, (**f).clone());
            edit.compact_pointers.push((c.level, f.largest.clone()));
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            drop(guard);
            self.compactions.push(CompactionRecord {
                id: cid,
                level: c.level,
                input_files: 1,
                input_bytes: f_size,
                output_files: 1,
                output_bytes: 0,
                start_ns,
                duration_ns: 0,
                output_bands: 0,
                trivial_move: true,
            });
            self.obs_counter(ObsLayer::Lsm, "trivial_moves", 1);
            self.obs_event(
                ObsLayer::Lsm,
                ObsEventKind::TrivialMove,
                c.level as u64,
                f_size,
            );
            return Ok(());
        }

        self.ctx.lock().fs.disk_mut().set_trace_tag(cid);
        // Read inputs the way LevelDB does: a merging iterator pulling
        // blocks on demand. Level-0 victims overlap, so each is its own
        // concurrent stream; sorted-level inputs are disjoint and stream
        // file after file in key order — which for set-placed files is
        // also disk order, the paper's "large sequential read". The
        // number of concurrent streams versus the drive's read-ahead
        // segments is what separates the three systems' compaction
        // efficiency.
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        let mut input_bytes = 0u64;
        if c.level == 0 {
            for f in &c.inputs[0] {
                input_bytes += f.size;
                let table = get_table(&self.ctx, f.id, f.size)?;
                children.push(Box::new(
                    table.iter(self.ctx.clone(), IoKind::CompactionRead),
                ));
            }
        } else if !c.inputs[0].is_empty() {
            input_bytes += c.inputs[0].iter().map(|f| f.size).sum::<u64>();
            children.push(Box::new(LevelIterator::new(
                self.ctx.clone(),
                c.inputs[0].clone(),
                IoKind::CompactionRead,
            )));
        }
        if !c.inputs[1].is_empty() {
            input_bytes += c.inputs[1].iter().map(|f| f.size).sum::<u64>();
            children.push(Box::new(LevelIterator::new(
                self.ctx.clone(),
                c.inputs[1].clone(),
                IoKind::CompactionRead,
            )));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first();

        // Merge, dropping shadowed versions and obsolete tombstones while
        // preserving everything a live snapshot can still observe
        // (LevelDB's rule: only versions hidden by a *newer* entry that is
        // itself at or below the smallest snapshot may go).
        let version = self.versions.current();
        let smallest_snapshot = self.smallest_snapshot();
        let mut outputs: Vec<PendingOutput> = Vec::new();
        let mut builder: Option<TableBuilder> = None;
        let mut last_user_key: Option<Vec<u8>> = None;
        let mut last_seq_for_key = MAX_SEQUENCE;
        let mut gp_index = 0usize;
        let mut gp_overlap = 0u64;
        while merged.valid() {
            let ikey = merged.key().to_vec();
            let ukey = user_key(&ikey);
            let first_occurrence = last_user_key.as_deref() != Some(ukey);
            if first_occurrence {
                last_user_key = Some(ukey.to_vec());
                last_seq_for_key = MAX_SEQUENCE;
                // Output splitting on grandparent overlap.
                while gp_index < c.grandparents.len()
                    && user_key(&c.grandparents[gp_index].largest) < ukey
                {
                    gp_overlap += c.grandparents[gp_index].size;
                    gp_index += 1;
                }
                if gp_overlap > self.opts.max_grandparent_overlap_bytes {
                    if let Some(b) = builder.take() {
                        Self::finish_output(&mut outputs, &mut self.versions, b);
                    }
                    gp_overlap = 0;
                }
            }
            let (seq, ty) = try_parse_trailer(&ikey)?;
            let drop_entry = if last_seq_for_key <= smallest_snapshot {
                // A newer version of this key is visible at every live
                // snapshot: nothing can observe this one.
                true
            } else {
                ty == ValueType::Deletion
                    && seq <= smallest_snapshot
                    && !version.range_overlaps_deeper(c.level + 1, ukey, ukey)
            };
            last_seq_for_key = seq;
            if !drop_entry {
                let b = builder.get_or_insert_with(|| TableBuilder::new(self.opts.table_options()));
                b.add(&ikey, merged.value());
                if b.file_size_estimate() >= self.opts.sstable_size {
                    let b = builder.take().expect("builder present");
                    Self::finish_output(&mut outputs, &mut self.versions, b);
                }
            }
            merged.next();
        }
        // A child iterator that hit a read error went invalid, which the
        // merge loop above cannot tell apart from a drained input. Bail
        // out *before* installing the edit: proceeding would write
        // outputs missing the unread tail and then delete the inputs —
        // silent data loss behind a "successful" compaction. Nothing is
        // installed yet, so the failed attempt leaves no state behind
        // and the compaction is simply retried later.
        if let Some(e) = merged.take_error() {
            self.ctx.lock().fs.disk_mut().set_trace_tag(0);
            return Err(e);
        }
        if let Some(b) = builder.take() {
            if b.num_entries() > 0 {
                Self::finish_output(&mut outputs, &mut self.versions, b);
            }
        }

        // Place outputs contiguously (or per-file, policy's choice).
        let placed: Vec<(FileId, Vec<u8>)> = outputs
            .iter()
            .map(|(id, data, _, _)| (*id, data.clone()))
            .collect();
        let (set_id, output_bands) = {
            let mut guard = self.ctx.lock();
            let set_id = self.policy.place_outputs(&mut guard.fs, &placed)?;
            // Count distinct fixed bands the outputs landed in (Fig. 3a).
            let mut bands = std::collections::BTreeSet::new();
            if let Some(bs) = guard.fs.disk().band_size() {
                for (id, _) in &placed {
                    let ext = guard.fs.file_extent(*id)?;
                    let first = ext.offset / bs;
                    let last = (ext.end() - 1) / bs;
                    bands.extend(first..=last);
                }
            }
            (set_id, bands.len() as u64)
        };

        // Install the new version.
        let mut edit = VersionEdit::default();
        for (which, level) in [(0usize, c.level), (1usize, c.level + 1)] {
            for f in &c.inputs[which] {
                edit.delete_file(level, f.id);
            }
        }
        let mut output_bytes = 0u64;
        for (id, data, smallest, largest) in &outputs {
            output_bytes += data.len() as u64;
            edit.add_file(
                c.level + 1,
                FileMetaData {
                    id: *id,
                    size: data.len() as u64,
                    smallest: smallest.clone(),
                    largest: largest.clone(),
                    set_id,
                },
            );
        }
        if let Some(last) = c.inputs[0].last() {
            edit.compact_pointers.push((c.level, last.largest.clone()));
        }
        {
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            for f in c.inputs.iter().flatten() {
                self.policy.delete_file(&mut guard.fs, f.id)?;
            }
        }
        for f in c.inputs.iter().flatten() {
            evict_file(&self.ctx, f.id);
        }
        self.ctx.lock().fs.disk_mut().set_trace_tag(0);
        let end_ns = self.clock_ns();
        self.compactions.push(CompactionRecord {
            id: cid,
            level: c.level,
            input_files: c.num_input_files(),
            input_bytes,
            output_files: outputs.len(),
            output_bytes,
            start_ns,
            duration_ns: end_ns - start_ns,
            output_bands,
            trivial_move: false,
        });
        let lvl = c.level;
        self.obs_counter(
            ObsLayer::Lsm,
            &format!("compaction.l{lvl}.bytes_in"),
            input_bytes,
        );
        self.obs_counter(
            ObsLayer::Lsm,
            &format!("compaction.l{lvl}.bytes_out"),
            output_bytes,
        );
        self.obs_counter(ObsLayer::Lsm, &format!("compaction.l{lvl}.count"), 1);
        self.obs_latency(ObsLayer::Lsm, "compaction_ns", end_ns - start_ns);
        self.obs_event(
            ObsLayer::Lsm,
            ObsEventKind::Compaction,
            lvl as u64,
            output_bytes,
        );
        Ok(())
    }

    fn finish_output(
        outputs: &mut Vec<PendingOutput>,
        versions: &mut VersionSet,
        builder: TableBuilder,
    ) {
        let id = versions.new_file_id();
        let smallest = builder.first_key().expect("non-empty output").to_vec();
        let largest = builder.last_key().to_vec();
        outputs.push((id, builder.finish(), smallest, largest));
    }

    // ----- snapshots -----

    /// Pins the current state: reads through the returned handle see the
    /// database as of this moment, regardless of later writes, and
    /// compactions retain the versions the handle can observe.
    pub fn snapshot(&mut self) -> Snapshot {
        let seq = self.versions.last_sequence();
        self.snapshots.push(seq);
        Snapshot { seq }
    }

    /// Releases a snapshot, letting compactions drop its pinned versions.
    pub fn release_snapshot(&mut self, snap: Snapshot) {
        if let Some(pos) = self.snapshots.iter().position(|&s| s == snap.seq) {
            self.snapshots.swap_remove(pos);
        }
    }

    /// Number of live snapshots.
    pub fn live_snapshots(&self) -> usize {
        self.snapshots.len()
    }

    /// The oldest sequence any reader may still observe.
    fn smallest_snapshot(&self) -> SequenceNumber {
        self.snapshots
            .iter()
            .copied()
            .min()
            .unwrap_or_else(|| self.versions.last_sequence())
    }

    /// Point lookup as of a snapshot.
    pub fn get_at(&mut self, key: &[u8], snap: &Snapshot) -> Result<Option<Vec<u8>>> {
        self.get_internal(key, snap.seq)
    }

    /// Range scan as of a snapshot.
    pub fn scan_at(
        &mut self,
        start: &[u8],
        limit: usize,
        snap: &Snapshot,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_internal(start, limit, snap.seq)
    }

    // ----- read path -----

    /// Point lookup at the latest state.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let snapshot = self.versions.last_sequence();
        self.get_internal(key, snapshot)
    }

    fn get_internal(&mut self, key: &[u8], snapshot: SequenceNumber) -> Result<Option<Vec<u8>>> {
        let t0 = self.clock_ns();
        let r = self.get_inner(key, snapshot);
        self.obs_latency(ObsLayer::Store, "get_ns", self.clock_ns() - t0);
        r
    }

    fn get_inner(&mut self, key: &[u8], snapshot: SequenceNumber) -> Result<Option<Vec<u8>>> {
        if let Some(hit) = self.mem.get(key, snapshot) {
            return Ok(hit);
        }
        let lk = lookup_key(key, snapshot);
        let version = self.versions.current();
        for (_, f) in version.files_for_get(key) {
            let table = get_table(&self.ctx, f.id, f.size)?;
            if table.bloom_excludes(key) {
                continue;
            }
            let mut it = table.iter(self.ctx.clone(), IoKind::Get);
            it.seek(&lk);
            if let Some(e) = it.take_error() {
                return Err(e);
            }
            if it.valid() && user_key(it.key()) == key {
                let (_, ty) = try_parse_trailer(it.key())?;
                return Ok(match ty {
                    ValueType::Value => Some(it.value().to_vec()),
                    ValueType::Deletion => None,
                });
            }
        }
        Ok(None)
    }

    /// Range scan: up to `limit` visible entries with user key >= `start`.
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let snapshot = self.versions.last_sequence();
        self.scan_internal(start, limit, snapshot)
    }

    fn scan_internal(
        &mut self,
        start: &[u8],
        limit: usize,
        snapshot: SequenceNumber,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let t0 = self.clock_ns();
        let r = self.scan_inner(start, limit, snapshot);
        self.obs_latency(ObsLayer::Store, "scan_ns", self.clock_ns() - t0);
        r
    }

    fn scan_inner(
        &mut self,
        start: &[u8],
        limit: usize,
        snapshot: SequenceNumber,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let version = self.versions.current();
        let mut children: Vec<Box<dyn InternalIterator + '_>> = vec![Box::new(self.mem.iter())];
        for f in &version.files[0] {
            let table = get_table(&self.ctx, f.id, f.size)?;
            children.push(Box::new(table.iter(self.ctx.clone(), IoKind::Scan)));
        }
        for level in 1..version.num_levels() {
            if !version.files[level].is_empty() {
                children.push(Box::new(LevelIterator::new(
                    self.ctx.clone(),
                    version.files[level].clone(),
                    IoKind::Scan,
                )));
            }
        }
        let mut it = DbIterator::new(MergingIterator::new(children), snapshot);
        it.seek(start);
        Ok(it.collect(limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placement::Ext4Sim;
    use smr_sim::{Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn open_db(sstable: u64) -> DbCore {
        let cap = 1024 * MB;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        let mut opts = Options::scaled(sstable);
        // Tests exercise durability: sync every write.
        opts.wal_buffer_bytes = 0;
        let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 16 * MB);
        let policy = crate::policy::PerFilePolicy::new(Box::new(alloc));
        DbCore::open(disk, opts, Box::new(policy)).unwrap()
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{:012}", i).into_bytes(),
            format!("value-{i:06}-{}", "x".repeat(100)).into_bytes(),
        )
    }

    #[test]
    fn apply_replicated_preserves_sequence_and_is_idempotent() {
        let mut primary = open_db(64 << 10);
        let mut replica = open_db(64 << 10);
        // Ship three batches primary -> replica, preserving sequences.
        let mut frames = Vec::new();
        for round in 0..3u64 {
            let mut b = WriteBatch::new();
            for i in 0..4u64 {
                let (k, v) = kv(round * 4 + i);
                b.put(&k, &v);
            }
            let seq = primary.last_sequence() + 1;
            let mut shipped = WriteBatch::decode(b.rep()).unwrap();
            shipped.set_sequence(seq);
            primary.write(b).unwrap();
            frames.push(shipped);
        }
        for f in &frames {
            assert!(replica
                .apply_replicated(WriteBatch::decode(f.rep()).unwrap())
                .unwrap());
        }
        assert_eq!(replica.last_sequence(), primary.last_sequence());
        // Duplicate frames are skipped, not re-applied.
        let dup = WriteBatch::decode(frames[2].rep()).unwrap();
        assert!(!replica.apply_replicated(dup).unwrap());
        assert_eq!(replica.last_sequence(), primary.last_sequence());
        // A gap is refused.
        let mut gap = WriteBatch::new();
        gap.put(b"gap", b"gap");
        gap.set_sequence(replica.last_sequence() + 5);
        assert!(replica.apply_replicated(gap).is_err());
        // The replica serves the replicated data, including after reopen
        // (the applied frames went through its own WAL).
        for i in 0..12 {
            let (k, v) = kv(i);
            assert_eq!(replica.get(&k).unwrap(), Some(v));
        }
        let mut replica = replica.reopen().unwrap();
        for i in 0..12 {
            let (k, v) = kv(i);
            assert_eq!(replica.get(&k).unwrap(), Some(v));
        }
    }

    #[test]
    fn put_get_small() {
        let mut db = open_db(64 << 10);
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v));
        }
        assert_eq!(db.get(b"missing").unwrap(), None);
    }

    #[test]
    fn overwrite_and_delete() {
        let mut db = open_db(64 << 10);
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k").unwrap(), None);
        db.put(b"k", b"v3").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn flush_creates_l0_tables_and_reads_survive() {
        let mut db = open_db(64 << 10);
        let n = 2000u64;
        for i in 0..n {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        assert!(db.flush_count() > 0);
        assert!(db.current_version().total_files() > 0);
        for i in (0..n).step_by(97) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i}");
        }
    }

    #[test]
    fn random_load_compacts_and_stays_correct() {
        let mut db = open_db(32 << 10);
        let n = 4000u64;
        // Scrambled insertion order.
        for i in 0..n {
            let j = (i * 2654435761) % n;
            let (k, v) = kv(j);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        let real: Vec<&CompactionRecord> = db
            .compaction_log()
            .iter()
            .filter(|c| !c.trivial_move)
            .collect();
        assert!(!real.is_empty(), "expected real compactions");
        // Deeper levels populated.
        let v = db.current_version();
        assert!(v.level_file_count(1) + v.level_file_count(2) > 0);
        v.check_invariants().unwrap();
        for i in (0..n).step_by(131) {
            let (k, val) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(val), "key {i}");
        }
    }

    #[test]
    fn scan_returns_sorted_visible_entries() {
        let mut db = open_db(32 << 10);
        let n = 1500u64;
        for i in 0..n {
            let j = (i * 7919) % n;
            let (k, v) = kv(j);
            db.put(&k, &v).unwrap();
        }
        // Delete a stripe.
        for i in 100..120 {
            let (k, _) = kv(i);
            db.delete(&k).unwrap();
        }
        let got = db.scan(&kv(90).0, 40).unwrap();
        assert_eq!(got.len(), 40);
        // Sorted and skipping the deleted stripe.
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        for i in 100..120 {
            let (k, _) = kv(i);
            assert!(!keys.contains(&k.as_slice()), "deleted key {i} visible");
        }
        // Values are the right ones.
        for (k, v) in &got {
            let i: u64 = String::from_utf8_lossy(&k[3..]).parse().unwrap();
            assert_eq!(v, &kv(i).1);
        }
    }

    #[test]
    fn scan_sees_memtable_and_disk_merged() {
        let mut db = open_db(32 << 10);
        for i in 0..1000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        // Fresh writes stay in the memtable.
        db.put(&kv(2000).0, b"fresh").unwrap();
        db.put(&kv(500).0, b"updated").unwrap();
        let got = db.scan(&kv(499).0, 3).unwrap();
        assert_eq!(got[1].0, kv(500).0);
        assert_eq!(got[1].1, b"updated");
        let got = db.scan(&kv(1999).0, 2).unwrap();
        assert_eq!(got[0].1, b"fresh");
    }

    #[test]
    fn wal_recovery_replays_unflushed_writes() {
        let mut db = open_db(256 << 10); // large buffer: nothing flushes
        for i in 0..50 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let seq_before = db.last_sequence();
        // Simulate a crash: reopen without flushing.
        let mut db = db.reopen().unwrap();
        assert_eq!(db.last_sequence(), seq_before);
        for i in 0..50 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i} lost in recovery");
        }
    }

    #[test]
    fn recovery_after_flush_uses_manifest() {
        let mut db = open_db(32 << 10);
        for i in 0..2000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        for i in 2000..2050u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let mut db = db.reopen().unwrap();
        for i in (0..2050u64).step_by(41) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i}");
        }
    }

    #[test]
    fn snapshot_reads_see_frozen_state() {
        let mut db = open_db(16 << 10);
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        let snap = db.snapshot();
        // Overwrite and delete after the snapshot.
        for i in 0..500u64 {
            let (k, _) = kv(i);
            if i % 3 == 0 {
                db.delete(&k).unwrap();
            } else {
                db.put(&k, b"new-value").unwrap();
            }
        }
        db.flush().unwrap();
        for i in (0..500u64).step_by(17) {
            let (k, v) = kv(i);
            assert_eq!(db.get_at(&k, &snap).unwrap(), Some(v), "snapshot read {i}");
            let live = db.get(&k).unwrap();
            if i % 3 == 0 {
                assert_eq!(live, None);
            } else {
                assert_eq!(live, Some(b"new-value".to_vec()));
            }
        }
        // Snapshot scans see the old values too.
        let got = db.scan_at(&kv(0).0, 5, &snap).unwrap();
        assert_eq!(got[0].1, kv(0).1);
        db.release_snapshot(snap);
        assert_eq!(db.live_snapshots(), 0);
    }

    #[test]
    fn snapshot_survives_compactions() {
        let mut db = open_db(8 << 10);
        for i in 0..1000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        let snap = db.snapshot();
        // Churn hard: several full overwrites force compactions that
        // would drop the old versions were the snapshot not pinned.
        for round in 0..3u64 {
            for i in 0..1000u64 {
                let (k, _) = kv(i);
                db.put(&k, format!("round-{round}").as_bytes()).unwrap();
            }
        }
        db.flush().unwrap();
        for i in (0..1000u64).step_by(41) {
            let (k, v) = kv(i);
            assert_eq!(db.get_at(&k, &snap).unwrap(), Some(v), "pinned version {i}");
            assert_eq!(db.get(&k).unwrap(), Some(b"round-2".to_vec()));
        }
        db.release_snapshot(snap);
        // After release, further churn may reclaim the old versions; the
        // live state stays correct.
        for i in 0..1000u64 {
            let (k, _) = kv(i);
            db.put(&k, b"final").unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.get(&kv(7).0).unwrap(), Some(b"final".to_vec()));
    }

    #[test]
    fn user_payload_accounted() {
        let mut db = open_db(64 << 10);
        db.put(b"0123456789", &[7u8; 90]).unwrap();
        let payload = db.ctx().lock().fs.disk().stats().user_payload;
        assert_eq!(payload, 100);
    }

    #[test]
    fn sequential_load_uses_trivial_moves() {
        let mut db = open_db(32 << 10);
        for i in 0..4000u64 {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
        let trivial = db
            .compaction_log()
            .iter()
            .filter(|c| c.trivial_move)
            .count();
        assert!(trivial > 0, "sequential load should move files trivially");
        // Sequential load: write amplification stays near 1.
        let stats = db.ctx().lock().fs.disk().stats().clone();
        assert!(
            stats.wa() < 2.0,
            "WA {} too high for sequential load",
            stats.wa()
        );
    }

    #[test]
    fn deferred_mode_slowdown_stop_resume() {
        let cap = 1024 * MB;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        let mut opts = Options::scaled(64 << 10);
        // Flush every ~60 writes so the L0 triggers trip quickly; nothing
        // drains L0 between writes (no compact_step caller), so the write
        // path alone must enforce the backpressure ladder.
        opts.write_buffer_size = 8 << 10;
        opts.wal_buffer_bytes = 0;
        opts.deferred_compaction = true;
        opts.l0_compaction_trigger = 2;
        opts.l0_slowdown_trigger = 3;
        opts.l0_stop_trigger = 5;
        let alloc = Ext4Sim::new(cap - opts.log_zone_bytes, 16 * MB);
        let policy = crate::policy::PerFilePolicy::new(Box::new(alloc));
        let mut db = DbCore::open(disk, opts, Box::new(policy)).unwrap();

        let n = 3000u64;
        let mut prev = db.stall_stats();
        let mut resumed_after_stop = false;
        for i in 0..n {
            let l0_before = db.current_version().level_file_count(0);
            // Scrambled order: L0 files overlap, so the forced compaction
            // at the stop trigger merges them all and L0 actually drains.
            let j = (i * 2654435761) % n;
            let (k, v) = kv(j);
            db.put(&k, &v).unwrap();
            let s = db.stall_stats();

            // Slowdown: at most one penalty per write, and only when the
            // write saw L0 at/past the trigger — either on arrival, or
            // after its own flush pushed L0 over (the make-room loop
            // re-evaluates, like LevelDB's MakeRoomForWrite).
            let slowed = s.slowdown_count - prev.slowdown_count;
            let flushed = s.memtable_count > prev.memtable_count;
            let l0_after = db.current_version().level_file_count(0);
            let expect = u64::from(l0_before >= 3 || (flushed && l0_after >= 3));
            assert_eq!(
                slowed, expect,
                "write {i}: L0 {l0_before}->{l0_after} flushed={flushed}"
            );

            // Stop: fires only with L0 exactly at the stop trigger (flushes
            // add one file at a time) and always drains below it.
            if s.stop_count > prev.stop_count {
                assert_eq!(l0_before, 5, "write {i}: stop away from trigger");
                assert!(
                    db.current_version().level_file_count(0) < 5,
                    "write {i}: stop returned with L0 still saturated"
                );
            }
            if prev.stop_count > 0 && l0_before < 3 {
                resumed_after_stop = true;
            }
            prev = s;
        }

        let s = db.stall_stats();
        assert!(s.slowdown_count > 0, "slowdown trigger never tripped");
        assert!(s.stop_count > 0, "stop trigger never tripped");
        assert!(s.memtable_count > 0, "memtable stalls never recorded");
        assert_eq!(s.slowdown_ns, s.slowdown_count * 1_000_000);
        assert!(s.stop_ns > 0 && s.total_ns() == s.slowdown_ns + s.stop_ns + s.memtable_ns);
        assert!(
            resumed_after_stop,
            "writes never resumed unthrottled after a stop"
        );

        // The obs registry mirrors the engine's stall accounting.
        let ctx = db.ctx();
        let guard = ctx.lock();
        let reg = &guard.fs.disk().obs().registry;
        assert_eq!(
            reg.counter(ObsLayer::Lsm, "stall.slowdown_count"),
            s.slowdown_count
        );
        assert_eq!(reg.counter(ObsLayer::Lsm, "stall.stop_count"), s.stop_count);
        assert_eq!(
            reg.counter(ObsLayer::Lsm, "stall.memtable_count"),
            s.memtable_count
        );
        drop(guard);

        // Deferred mode still serves reads correctly.
        for i in (0..n).step_by(211) {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i}");
        }
    }
}
