//! Engine options. The paper's configuration (key 16 B, value 4 KB,
//! SSTable 4 MB, AF 10, band = 10 × SSTable) is expressed through
//! [`Options::scaled`], which preserves every ratio while letting the
//! benchmarks run at a fraction of the paper's 100 GB datasets.

/// Tunables of one database instance.
#[derive(Clone, Debug)]
pub struct Options {
    /// Memtable flush threshold (LevelDB `write_buffer_size`); kept equal
    /// to the SSTable size so each flush emits one table.
    pub write_buffer_size: usize,
    /// Target SSTable size (paper: 4 MB).
    pub sstable_size: u64,
    /// Data block size inside tables (LevelDB: 4 KiB).
    pub block_size: usize,
    /// Restart interval inside blocks (LevelDB: 16).
    pub restart_interval: usize,
    /// Bloom bits per key (0 disables filters).
    pub bloom_bits_per_key: usize,
    /// Number of levels (LevelDB: 7).
    pub num_levels: usize,
    /// L0 file-count compaction trigger (LevelDB: 4).
    pub l0_compaction_trigger: usize,
    /// L0 file count at which each write is delayed once by
    /// `slowdown_penalty_ns` (LevelDB's `kL0_SlowdownWritesTrigger`, 8).
    /// Only observed in deferred-compaction mode.
    pub l0_slowdown_trigger: usize,
    /// L0 file count at which writes stop until compaction brings the
    /// count back down (LevelDB's `kL0_StopWritesTrigger`, 12). Only
    /// observed in deferred-compaction mode.
    pub l0_stop_trigger: usize,
    /// Simulated delay applied once per write while the slowdown trigger
    /// is tripped (LevelDB sleeps 1 ms).
    pub slowdown_penalty_ns: u64,
    /// When true, writes no longer run compactions to quiescence inline.
    /// The write path applies LevelDB's backpressure (slowdown, stop,
    /// memtable-full stalls) and a caller — the serving front-end's idle
    /// loop, standing in for the background thread — drives compactions
    /// via [`crate::DbCore::compact_step`]. When false (the default) the
    /// engine keeps the original quiesce-on-write behavior the paper's
    /// db_bench-style experiments rely on.
    pub deferred_compaction: bool,
    /// L1 byte budget; level i allows `base * AF^(i-1)`.
    pub level_base_bytes: u64,
    /// The paper's amplification factor AF between adjacent levels (10).
    pub level_multiplier: u64,
    /// Output files stop growing when they overlap more than this many
    /// bytes of the grandparent level (LevelDB: 10 × max file size).
    pub max_grandparent_overlap_bytes: u64,
    /// Block cache budget in bytes.
    pub block_cache_bytes: u64,
    /// Open-table cache capacity in entries.
    pub table_cache_entries: u64,
    /// Conventional-zone bytes reserved for WAL/manifest logs.
    pub log_zone_bytes: u64,
    /// Rewrite the manifest as one snapshot record once it exceeds this
    /// many bytes (keeps the log zone bounded on long runs).
    pub manifest_rewrite_bytes: u64,
    /// Whether puts are logged to the WAL before being applied.
    pub wal_enabled: bool,
    /// WAL bytes buffered in memory before reaching the disk (models the
    /// OS page cache under a no-sync LevelDB; 0 = every write synced).
    /// Buffered bytes are lost on a crash, like `sync=false` writes.
    pub wal_buffer_bytes: usize,
    /// Seed for the engine's deterministic internal randomness.
    pub seed: u64,
}

impl Options {
    /// Options with every size ratio of the paper preserved, parameterised
    /// by the SSTable size. `Options::scaled(4 << 20)` is the paper's
    /// exact configuration.
    pub fn scaled(sstable_size: u64) -> Self {
        Options {
            write_buffer_size: sstable_size as usize,
            sstable_size,
            block_size: 4096,
            restart_interval: 16,
            // LevelDB 1.19 ships with no filter policy configured; the
            // paper evaluates defaults, so blooms are off here. The
            // engine still supports them (set > 0).
            bloom_bits_per_key: 0,
            num_levels: 7,
            l0_compaction_trigger: 4,
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 12,
            slowdown_penalty_ns: 1_000_000,
            deferred_compaction: false,
            level_base_bytes: 10 * sstable_size,
            level_multiplier: 10,
            max_grandparent_overlap_bytes: 10 * sstable_size,
            block_cache_bytes: 2 * sstable_size,
            table_cache_entries: 1000,
            log_zone_bytes: (16 * sstable_size).max(16 << 20),
            manifest_rewrite_bytes: 2 << 20,
            wal_enabled: true,
            wal_buffer_bytes: 64 << 10,
            seed: 0x5EA1DB,
        }
    }

    /// The paper's configuration at full scale (4 MB SSTables).
    pub fn paper() -> Self {
        Options::scaled(4 << 20)
    }

    /// Level parameters for the version set.
    pub fn level_params(&self) -> crate::version::LevelParams {
        crate::version::LevelParams {
            num_levels: self.num_levels,
            l0_trigger: self.l0_compaction_trigger,
            base_bytes: self.level_base_bytes,
            multiplier: self.level_multiplier,
        }
    }

    /// Sanity-checks the option combination, returning a description of
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_levels < 2 {
            return Err("num_levels must be at least 2".into());
        }
        if self.sstable_size == 0 || self.write_buffer_size == 0 {
            return Err("sstable_size and write_buffer_size must be positive".into());
        }
        if self.block_size < 64 {
            return Err("block_size must be at least 64 bytes".into());
        }
        if self.sstable_size < self.block_size as u64 {
            return Err("sstable_size must be at least one block".into());
        }
        if self.l0_compaction_trigger == 0 {
            return Err("l0_compaction_trigger must be positive".into());
        }
        if self.l0_slowdown_trigger < self.l0_compaction_trigger {
            return Err("l0_slowdown_trigger must be at least the compaction trigger".into());
        }
        if self.l0_stop_trigger <= self.l0_slowdown_trigger {
            return Err("l0_stop_trigger must exceed l0_slowdown_trigger".into());
        }
        if self.level_multiplier < 2 {
            return Err("level_multiplier (AF) must be at least 2".into());
        }
        if self.log_zone_bytes < 4 * crate::filestore::LOG_CHUNK {
            return Err("log zone too small for WAL + manifest".into());
        }
        Ok(())
    }

    /// Table-build options.
    pub fn table_options(&self) -> crate::sstable::TableOptions {
        crate::sstable::TableOptions {
            block_size: self.block_size,
            restart_interval: self.restart_interval,
            bloom_bits_per_key: self.bloom_bits_per_key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios() {
        let o = Options::paper();
        assert_eq!(o.sstable_size, 4 << 20);
        assert_eq!(o.level_base_bytes, 40 << 20);
        assert_eq!(o.level_multiplier, 10);
        assert_eq!(o.write_buffer_size as u64, o.sstable_size);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let a = Options::paper();
        let b = Options::scaled(256 << 10);
        assert_eq!(
            a.level_base_bytes / a.sstable_size,
            b.level_base_bytes / b.sstable_size
        );
        assert_eq!(
            a.max_grandparent_overlap_bytes / a.sstable_size,
            b.max_grandparent_overlap_bytes / b.sstable_size
        );
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    #[test]
    fn default_options_validate() {
        Options::paper().validate().unwrap();
        Options::scaled(64 << 10).validate().unwrap();
    }

    #[test]
    fn bad_combinations_rejected() {
        let mut o = Options::paper();
        o.num_levels = 1;
        assert!(o.validate().is_err());
        let mut o = Options::paper();
        o.sstable_size = 0;
        assert!(o.validate().is_err());
        let mut o = Options::paper();
        o.block_size = 16;
        assert!(o.validate().is_err());
        let mut o = Options::paper();
        o.level_multiplier = 1;
        assert!(o.validate().is_err());
        let mut o = Options::paper();
        o.log_zone_bytes = 1024;
        assert!(o.validate().is_err());
    }
}
