//! Level-concatenating and user-facing database iterators.

use crate::context::{get_table, SharedCtx};
use crate::error::Error;
use crate::iterator::{InternalIterator, MergingIterator};
use crate::sstable::TableIterator;
use crate::types::{
    internal_compare, lookup_key, try_parse_trailer, user_key, SequenceNumber, ValueType,
};
use crate::version::FileMetaHandle;
use smr_sim::IoKind;
use std::cmp::Ordering;

/// Iterates a sorted, disjoint level by opening one table at a time —
/// LevelDB's "concatenating" iterator. Keeps merging fan-in at one child
/// per level regardless of file counts.
#[derive(Debug)]
pub struct LevelIterator {
    ctx: SharedCtx,
    files: Vec<FileMetaHandle>,
    kind: IoKind,
    idx: usize,
    cur: Option<TableIterator>,
    error: Option<Error>,
}

impl LevelIterator {
    /// Creates an iterator over `files` (sorted by key, non-overlapping).
    pub fn new(ctx: SharedCtx, files: Vec<FileMetaHandle>, kind: IoKind) -> Self {
        LevelIterator {
            ctx,
            files,
            kind,
            idx: 0,
            cur: None,
            error: None,
        }
    }

    fn open_current(&mut self) {
        self.stash_cur_error();
        self.cur = None;
        let Some(f) = self.files.get(self.idx) else {
            return;
        };
        match get_table(&self.ctx, f.id, f.size) {
            Ok(table) => self.cur = Some(table.iter(self.ctx.clone(), self.kind)),
            Err(e) => self.error = Some(e),
        }
    }

    /// Preserves the current table iterator's deferred error before the
    /// iterator is replaced or dropped — a block-read failure turns a
    /// table iterator invalid, which `skip_exhausted` would otherwise
    /// mistake for a cleanly finished file and silently skip past.
    fn stash_cur_error(&mut self) {
        if let Some(e) = self.cur.as_mut().and_then(|c| c.take_error()) {
            self.error.get_or_insert(e);
        }
    }

    fn skip_exhausted(&mut self) {
        while self.cur.as_ref().is_some_and(|c| !c.valid()) {
            self.idx += 1;
            if self.idx >= self.files.len() {
                self.stash_cur_error();
                self.cur = None;
                return;
            }
            self.open_current();
            if let Some(c) = self.cur.as_mut() {
                c.seek_to_first();
            }
        }
    }
}

impl InternalIterator for LevelIterator {
    fn valid(&self) -> bool {
        self.cur.as_ref().is_some_and(|c| c.valid())
    }

    fn seek_to_first(&mut self) {
        self.idx = 0;
        self.open_current();
        if let Some(c) = self.cur.as_mut() {
            c.seek_to_first();
        }
        self.skip_exhausted();
    }

    fn seek(&mut self, target: &[u8]) {
        self.idx = self
            .files
            .partition_point(|f| internal_compare(&f.largest, target) == Ordering::Less);
        self.open_current();
        if let Some(c) = self.cur.as_mut() {
            c.seek(target);
        }
        self.skip_exhausted();
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        if let Some(c) = self.cur.as_mut() {
            c.next();
        }
        self.skip_exhausted();
    }

    fn key(&self) -> &[u8] {
        self.cur.as_ref().expect("valid iterator").key()
    }

    fn value(&self) -> &[u8] {
        self.cur.as_ref().expect("valid iterator").value()
    }

    fn take_error(&mut self) -> Option<Error> {
        self.error
            .take()
            .or_else(|| self.cur.as_mut().and_then(|c| c.take_error()))
    }
}

/// The user-facing iterator: merges all sources and resolves versions —
/// newest visible entry per user key, tombstones hide older values.
#[derive(Debug)]
pub struct DbIterator<'a> {
    inner: MergingIterator<'a>,
    snapshot: SequenceNumber,
}

impl<'a> DbIterator<'a> {
    /// Wraps a merging iterator at the given snapshot.
    pub fn new(inner: MergingIterator<'a>, snapshot: SequenceNumber) -> Self {
        DbIterator { inner, snapshot }
    }

    /// Positions before the first user key >= `ukey`.
    pub fn seek(&mut self, ukey: &[u8]) {
        self.inner.seek(&lookup_key(ukey, self.snapshot));
    }

    /// Positions at the start of the database.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    /// Produces the next visible (user key, value) pair, or `None` at the
    /// end.
    pub fn next_entry(&mut self) -> Option<(Vec<u8>, Vec<u8>)> {
        while self.inner.valid() {
            // A trailer that fails to parse means a corrupt entry slipped
            // past the block CRC; skip it rather than take the scan down.
            let Ok((seq, ty)) = try_parse_trailer(self.inner.key()) else {
                self.inner.next();
                continue;
            };
            if seq > self.snapshot {
                self.inner.next();
                continue;
            }
            let ukey = user_key(self.inner.key()).to_vec();
            let emit = match ty {
                ValueType::Value => Some((ukey.clone(), self.inner.value().to_vec())),
                ValueType::Deletion => None,
            };
            // Skip every older version of this user key.
            loop {
                self.inner.next();
                if !self.inner.valid() || user_key(self.inner.key()) != ukey.as_slice() {
                    break;
                }
            }
            if emit.is_some() {
                return emit;
            }
        }
        None
    }

    /// Takes the first deferred read error any underlying source hit —
    /// a scan that stopped on one looks exactly like a scan that
    /// reached the end, so callers who care check this afterwards.
    pub fn take_error(&mut self) -> Option<Error> {
        self.inner.take_error()
    }

    /// Collects up to `limit` entries from the current position.
    pub fn collect(&mut self, limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::with_capacity(limit.min(1024));
        while out.len() < limit {
            match self.next_entry() {
                Some(e) => out.push(e),
                None => break,
            }
        }
        out
    }
}
