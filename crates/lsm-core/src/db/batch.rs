//! Write batches: the unit of WAL logging and memtable application, using
//! LevelDB's wire format — `sequence(8) | count(4) | records`, where each
//! record is `type(1) | key | [value]` with length-prefixed slices.

use crate::error::{corruption, Result};
use crate::types::{SequenceNumber, ValueType};
use crate::util::coding::{
    decode_fixed32, decode_fixed64, get_length_prefixed, put_length_prefixed,
};

const HEADER: usize = 12;

/// A batch of writes applied atomically.
#[derive(Clone, Debug)]
pub struct WriteBatch {
    rep: Vec<u8>,
    payload: u64,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch {
            rep: vec![0; HEADER],
            payload: 0,
        }
    }

    /// Adds a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
        self.payload += (key.len() + value.len()) as u64;
    }

    /// Adds a deletion.
    pub fn delete(&mut self, key: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
        self.payload += key.len() as u64;
    }

    /// Number of operations in the batch.
    pub fn count(&self) -> u32 {
        decode_fixed32(&self.rep[8..12])
    }

    fn set_count(&mut self, n: u32) {
        self.rep[8..12].copy_from_slice(&n.to_le_bytes());
    }

    /// Base sequence number of the batch.
    pub fn sequence(&self) -> SequenceNumber {
        decode_fixed64(&self.rep[..8])
    }

    /// Stamps the base sequence number.
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// Appends every record of `other` to this batch, preserving record
    /// order — LevelDB's `BuildBatchGroup` merge step. The combined batch
    /// is logged as one WAL record and receives one contiguous sequence
    /// range, so group commit amortises the positional sync cost over all
    /// merged writers.
    pub fn append(&mut self, other: &WriteBatch) {
        self.set_count(self.count() + other.count());
        self.rep.extend_from_slice(&other.rep[HEADER..]);
        self.payload += other.payload;
    }

    /// Wire-format size in bytes (group-commit size cap accounting).
    pub fn byte_size(&self) -> usize {
        self.rep.len()
    }

    /// Record bytes without the 12-byte `sequence | count` header.
    /// [`WriteBatch::append`] grows the target by exactly this much —
    /// the merged batch shares the leader's header — so group-commit cap
    /// checks must charge a follow-on batch `body_bytes`, not
    /// `byte_size`, or they refuse merges that land exactly on the cap.
    pub fn body_bytes(&self) -> usize {
        self.rep.len() - HEADER
    }

    /// User payload bytes (key + value sizes) — the paper's `WA`
    /// denominator.
    pub fn payload_bytes(&self) -> u64 {
        self.payload
    }

    /// Wire representation (for the WAL).
    pub fn rep(&self) -> &[u8] {
        &self.rep
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Parses a wire representation (WAL recovery).
    pub fn decode(rep: &[u8]) -> Result<WriteBatch> {
        if rep.len() < HEADER {
            return corruption("write batch shorter than header");
        }
        let batch = WriteBatch {
            rep: rep.to_vec(),
            payload: 0,
        };
        // Validate the records and recompute the payload.
        let mut payload = 0u64;
        let mut n = 0u32;
        let mut src = &batch.rep[HEADER..];
        while !src.is_empty() {
            let ty = ValueType::from_u8(src[0])
                .ok_or_else(|| crate::error::Error::Corruption("bad batch record type".into()))?;
            src = &src[1..];
            let Some((key, used)) = get_length_prefixed(src) else {
                return corruption("truncated batch key");
            };
            payload += key.len() as u64;
            src = &src[used..];
            if ty == ValueType::Value {
                let Some((value, used)) = get_length_prefixed(src) else {
                    return corruption("truncated batch value");
                };
                payload += value.len() as u64;
                src = &src[used..];
            }
            n += 1;
        }
        if n != batch.count() {
            return corruption("batch count mismatch");
        }
        Ok(WriteBatch {
            rep: batch.rep,
            payload,
        })
    }

    /// Iterates over `(sequence, type, key, value)`; deletions carry an
    /// empty value.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            src: &self.rep[HEADER..],
            seq: self.sequence(),
        }
    }
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over batch records.
#[derive(Debug)]
pub struct BatchIter<'a> {
    src: &'a [u8],
    seq: SequenceNumber,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = (SequenceNumber, ValueType, &'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.src.is_empty() {
            return None;
        }
        let ty = ValueType::from_u8(self.src[0])?;
        self.src = &self.src[1..];
        let (key, used) = get_length_prefixed(self.src)?;
        self.src = &self.src[used..];
        let value: &[u8] = if ty == ValueType::Value {
            let (v, used) = get_length_prefixed(self.src)?;
            self.src = &self.src[used..];
            v
        } else {
            &[]
        };
        let seq = self.seq;
        self.seq += 1;
        Some((seq, ty, key, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let mut b = WriteBatch::new();
        b.put(b"k1", b"v1");
        b.delete(b"k2");
        b.put(b"k3", b"v3");
        b.set_sequence(100);
        assert_eq!(b.count(), 3);
        assert_eq!(b.payload_bytes(), 2 + 2 + 2 + 2 + 2);
        let items: Vec<_> = b.iter().collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], (100, ValueType::Value, &b"k1"[..], &b"v1"[..]));
        assert_eq!(items[1], (101, ValueType::Deletion, &b"k2"[..], &b""[..]));
        assert_eq!(items[2], (102, ValueType::Value, &b"k3"[..], &b"v3"[..]));
    }

    #[test]
    fn decode_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(b"alpha", b"1");
        b.delete(b"beta");
        b.set_sequence(7);
        let d = WriteBatch::decode(b.rep()).unwrap();
        assert_eq!(d.count(), 2);
        assert_eq!(d.sequence(), 7);
        assert_eq!(d.payload_bytes(), b.payload_bytes());
        let x: Vec<_> = b.iter().collect();
        let y: Vec<_> = d.iter().collect();
        assert_eq!(x, y);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WriteBatch::decode(&[]).is_err());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let mut rep = b.rep().to_vec();
        rep.truncate(rep.len() - 1);
        assert!(WriteBatch::decode(&rep).is_err());
        // Wrong count.
        let mut rep = b.rep().to_vec();
        rep[8] = 9;
        assert!(WriteBatch::decode(&rep).is_err());
    }

    #[test]
    fn append_merges_in_order_with_contiguous_sequences() {
        let mut leader = WriteBatch::new();
        leader.put(b"a", b"1");
        let mut w2 = WriteBatch::new();
        w2.put(b"b", b"2");
        w2.delete(b"a");
        let mut w3 = WriteBatch::new();
        w3.put(b"c", b"3");
        leader.append(&w2);
        leader.append(&w3);
        leader.set_sequence(50);
        assert_eq!(leader.count(), 4);
        assert_eq!(
            leader.payload_bytes(),
            2 + 2 + 1 + 2 // a1, b2, a, c3
        );
        // Records keep writer order and sequences are contiguous from the
        // leader's base — the group-commit invariant.
        let items: Vec<_> = leader.iter().collect();
        assert_eq!(items[0], (50, ValueType::Value, &b"a"[..], &b"1"[..]));
        assert_eq!(items[1], (51, ValueType::Value, &b"b"[..], &b"2"[..]));
        assert_eq!(items[2], (52, ValueType::Deletion, &b"a"[..], &b""[..]));
        assert_eq!(items[3], (53, ValueType::Value, &b"c"[..], &b"3"[..]));
        // The merged rep is still a valid wire batch.
        let d = WriteBatch::decode(leader.rep()).unwrap();
        assert_eq!(d.count(), 4);
        assert_eq!(d.payload_bytes(), leader.payload_bytes());
    }

    #[test]
    fn append_empty_is_noop() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let before = b.rep().to_vec();
        b.append(&WriteBatch::new());
        assert_eq!(b.rep(), &before[..]);
        assert!(b.byte_size() >= before.len());
    }

    #[test]
    fn empty_batch() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.iter().count(), 0);
        let d = WriteBatch::decode(b.rep()).unwrap();
        assert!(d.is_empty());
    }
}
