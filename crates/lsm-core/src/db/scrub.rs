//! Online scrub-and-repair: a budgeted background walk over the live
//! SSTables that verifies every block checksum, corrects single-bit
//! latent errors in place (in the read path — the platter copy is never
//! patched), re-materialises damaged tables onto healthy space through a
//! targeted single-file compaction, and quarantines files whose metadata
//! is beyond repair.
//!
//! ## Fault model
//!
//! The simulated disk injects three persistent fault classes
//! ([`smr_sim::FaultPlan`]): read-path bit corruption over a registered
//! region (every read of the region comes back flipped), unrecoverable
//! reads (latent sector errors: every overlapping read errors), and
//! whole-band failures. Scrub maps each to a verdict per file:
//!
//! * **Clean** — every block verifies.
//! * **Repairable** — some data blocks are damaged but the footer and
//!   index parse: the file is rebuilt from its surviving blocks (plus
//!   any blocks recovered by single-bit correction) as a *new* file on
//!   *newly allocated* space, swapped in through a committed
//!   `VersionEdit` — never patched in place.
//! * **Dead** — the footer or index is unreadable or uncorrectable, so
//!   the blocks cannot even be located: the file is quarantined (removed
//!   from the version; deeper levels keep serving older versions of its
//!   keys).
//!
//! Every damaged extent is *fenced* through
//! [`PlacementPolicy::quarantine_extent`](crate::policy::PlacementPolicy::quarantine_extent)
//! before the repair allocates replacement space, so the rebuilt file
//! can never land back on the bad region. Failed bands advertised by the
//! fault plan are fenced wholesale at the start of each step. Live data
//! inside a fence is not copied out by the fence itself — relocation
//! happens through this module's verify-then-rebuild path, because a raw
//! GC copy of a latent-error region would silently propagate flipped
//! bits.
//!
//! ## Single-bit correction
//!
//! Block trailers carry a masked CRC32C. The CRC is linear over GF(2):
//! for equal-length messages `crc(a) ^ crc(b) = crc0(a ^ b)` where
//! `crc0` is the raw (init 0, no xor-out) CRC of the difference. A
//! single-bit error at byte `p`, bit `b` therefore yields the unique
//! syndrome `crc0(e_{p,b})`, which is matched by streaming the eight
//! per-bit syndromes across byte positions from the tail of the block —
//! O(8·n) table steps, no per-candidate re-hash. Flips landing in the
//! stored CRC field itself do not fold into the syndrome (the mask is
//! non-linear), so those 32 candidates are tried directly.

use super::DbCore;
use crate::error::{Error, Result};
use crate::iterator::InternalIterator;
use crate::sstable::block::Block;
use crate::sstable::table::{check_block, parse_footer, BlockHandle, BLOCK_TRAILER_SIZE};
use crate::sstable::TableBuilder;
use crate::types::FileId;
use crate::util::crc32c;
use crate::version::{FileMetaData, FileMetaHandle, VersionEdit};
use smr_sim::{DiskError, Extent, IoKind, ObsEventKind, ObsLayer};
use std::sync::OnceLock;

/// Tuning for one scrub step.
#[derive(Clone, Copy, Debug)]
pub struct ScrubConfig {
    /// Bytes of table data verified per [`DbCore::scrub_step`]. A step
    /// always finishes the file it started (verdicts and repair are
    /// file-granular), so this bounds when the step *stops picking up*
    /// further files, not the final file's size.
    pub bytes_per_step: u64,
    /// Whether repair runs (fencing, rebuild, quarantine). With repair
    /// off the scrubber only detects and counts — the mode the benches
    /// use to quantify what an unscrubbed store loses.
    pub repair: bool,
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig {
            bytes_per_step: 8 << 20,
            repair: true,
        }
    }
}

/// Health verdict for one scanned file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileHealth {
    /// Every block verified.
    Clean,
    /// Damaged data/filter blocks, but the footer and index parse: the
    /// file can be rebuilt from what survives.
    Repairable,
    /// Footer or index unreadable or uncorrectable: the blocks cannot be
    /// located, the file must be quarantined.
    Dead,
}

/// Counters for one scrub step (or, summed, a whole pass).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Files whose blocks were verified.
    pub files_scanned: u64,
    /// Table bytes read and verified.
    pub bytes_verified: u64,
    /// Blocks checked (data + index + filter).
    pub blocks_verified: u64,
    /// Blocks that failed their first checksum pass.
    pub blocks_corrupt: u64,
    /// Corrupt blocks recovered by single-bit correction.
    pub blocks_corrected: u64,
    /// Blocks lost outright (unreadable, or damage beyond one bit).
    pub blocks_lost: u64,
    /// Files rebuilt onto healthy space.
    pub files_repaired: u64,
    /// Files dropped from the version as unrecoverable.
    pub files_quarantined: u64,
    /// Damaged extents newly fenced off the allocation path.
    pub extents_fenced: u64,
    /// Bytes newly fenced.
    pub bytes_fenced: u64,
    /// Completed full passes over the version (0 or 1 per step).
    pub full_passes: u64,
}

impl ScrubReport {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ScrubReport) {
        self.files_scanned += other.files_scanned;
        self.bytes_verified += other.bytes_verified;
        self.blocks_verified += other.blocks_verified;
        self.blocks_corrupt += other.blocks_corrupt;
        self.blocks_corrected += other.blocks_corrected;
        self.blocks_lost += other.blocks_lost;
        self.files_repaired += other.files_repaired;
        self.files_quarantined += other.files_quarantined;
        self.extents_fenced += other.extents_fenced;
        self.bytes_fenced += other.bytes_fenced;
        self.full_passes += other.full_passes;
    }
}

const POLY: u32 = 0x82F63B78;

/// Raw (init 0, no xor-out) CRC32C table for single-byte messages.
fn t0() -> &'static [u32; 256] {
    static T: OnceLock<[u32; 256]> = OnceLock::new();
    T.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *e = crc;
        }
        t
    })
}

/// Advances a raw CRC by one zero byte.
fn step_zero(syn: u32) -> u32 {
    (syn >> 8) ^ t0()[(syn & 0xff) as usize]
}

/// Attempts to repair a single flipped bit anywhere in a block image
/// (`contents | type byte | masked CRC32C LE`), including flips inside
/// the stored CRC field. Returns the repaired image, or `None` when the
/// damage is not a single-bit flip. The result always passes
/// [`check_block`].
pub fn correct_single_bit(image: &[u8]) -> Option<Vec<u8>> {
    if image.len() < BLOCK_TRAILER_SIZE {
        return None;
    }
    let split = image.len() - BLOCK_TRAILER_SIZE;
    // The checksum covers the contents plus the type byte.
    let msg_len = split + 1;
    let stored = u32::from_le_bytes(image[split + 1..split + 5].try_into().ok()?);
    let computed_raw = crc32c::extend(crc32c::crc32c(&image[..split]), &image[split..=split]);
    let computed = crc32c::mask(computed_raw);
    if stored == computed && image[split] == 0 {
        return Some(image.to_vec());
    }
    // Case 1: the flip landed in the stored CRC field. The mask is
    // non-linear, so these 32 candidates are tried directly.
    for bit in 0..32u32 {
        if stored ^ (1 << bit) == computed {
            let mut fixed = image.to_vec();
            fixed[split + 1..split + 5].copy_from_slice(&(stored ^ (1 << bit)).to_le_bytes());
            return verified(fixed);
        }
    }
    // Case 2: the flip landed in the message. Match the error syndrome
    // against the eight per-bit candidates, streamed from the last
    // message byte backwards (each earlier byte position adds one
    // trailing zero byte to the error vector).
    let syndrome = crc32c::unmask(stored) ^ computed_raw;
    let mut syn = [0u32; 8];
    for (b, s) in syn.iter_mut().enumerate() {
        *s = t0()[1usize << b];
    }
    for p in (0..msg_len).rev() {
        for (b, s) in syn.iter().enumerate() {
            if *s == syndrome {
                let mut fixed = image.to_vec();
                fixed[p] ^= 1 << b;
                if let Some(ok) = verified(fixed) {
                    return Some(ok);
                }
            }
        }
        if p > 0 {
            for s in syn.iter_mut() {
                *s = step_zero(*s);
            }
        }
    }
    None
}

/// Returns the candidate image iff it verifies as a well-formed block.
fn verified(image: Vec<u8>) -> Option<Vec<u8>> {
    check_block(&image).ok().map(|_| image)
}

/// The extent of an injected persistent fault, if `e` is one.
fn unrecoverable_extent(e: &Error) -> Option<Extent> {
    match e {
        Error::Disk(DiskError::UnrecoverableRead { ext }) => Some(*ext),
        _ => None,
    }
}

/// What the block walk learned about one file.
struct FileScan {
    health: FileHealth,
    /// Salvaged (internal key, value) entries, in table order; meaningful
    /// only for `Repairable` files.
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Corrupt blocks found (first-pass checksum failures).
    corrupt: u64,
    /// Blocks recovered by single-bit correction.
    corrected: u64,
    /// Blocks lost (unreadable or uncorrectable).
    lost: u64,
    /// Blocks checked.
    verified: u64,
    /// Absolute disk extents found damaged, to fence before repair.
    bad_extents: Vec<Extent>,
}

impl DbCore {
    /// Lifetime scrub totals across all steps on this handle.
    pub fn scrub_report(&self) -> &ScrubReport {
        &self.scrub_totals
    }

    /// Runs scrub steps until one full pass over the current version
    /// completes, returning the summed report.
    pub fn scrub_full(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        let mut total = ScrubReport::default();
        loop {
            let step = self.scrub_step(cfg)?;
            total.merge(&step);
            if step.full_passes > 0 {
                return Ok(total);
            }
        }
    }

    /// Runs one budgeted scrub step: fences any failed bands the fault
    /// plan advertises, then verifies files from the resume cursor until
    /// `cfg.bytes_per_step` table bytes have been checked or the pass
    /// completes. Damaged files are repaired or quarantined immediately
    /// (when `cfg.repair` is set) so a later read never trips over a
    /// fault scrub already saw.
    pub fn scrub_step(&mut self, cfg: &ScrubConfig) -> Result<ScrubReport> {
        let mut step = ScrubReport::default();
        if cfg.repair {
            self.fence_failed_bands(&mut step);
        }
        loop {
            let Some((level, file)) = self.next_scrub_target() else {
                self.scrub_cursor = None;
                step.full_passes += 1;
                break;
            };
            self.scrub_cursor = Some((level, file.id));
            let scan = self.scan_file(&file)?;
            step.files_scanned += 1;
            step.bytes_verified += file.size;
            step.blocks_verified += scan.verified;
            step.blocks_corrupt += scan.corrupt;
            step.blocks_corrected += scan.corrected;
            step.blocks_lost += scan.lost;
            if cfg.repair && scan.health != FileHealth::Clean {
                // Fence first: replacement space must never be allocated
                // over the region that just damaged this file.
                for ext in &scan.bad_extents {
                    self.fence_extent(*ext, &mut step);
                }
                match scan.health {
                    FileHealth::Repairable if !scan.entries.is_empty() => {
                        self.rebuild_file(level, &file, scan.entries)?;
                        step.files_repaired += 1;
                        self.obs_counter(ObsLayer::Lsm, "scrub.files_repaired", 1);
                        self.obs_event(
                            ObsLayer::Lsm,
                            ObsEventKind::ScrubRepair,
                            file.id,
                            scan.corrected,
                        );
                    }
                    // Nothing salvageable (or metadata gone): drop the
                    // file; deeper levels keep serving older versions.
                    _ => {
                        self.scrub_quarantine(level, file.id)?;
                        step.files_quarantined += 1;
                    }
                }
            }
            if step.bytes_verified >= cfg.bytes_per_step {
                break;
            }
        }
        self.obs_counter(ObsLayer::Lsm, "scrub.files_scanned", step.files_scanned);
        self.obs_counter(ObsLayer::Lsm, "scrub.bytes_verified", step.bytes_verified);
        self.scrub_totals.merge(&step);
        Ok(step)
    }

    /// First file after the cursor in (level, file id) order, from the
    /// *current* version — robust to repairs swapping files mid-pass
    /// (replacement ids are larger, so they are scanned the same pass).
    fn next_scrub_target(&self) -> Option<(usize, FileMetaHandle)> {
        let version = self.versions.current();
        let mut best: Option<(usize, FileMetaHandle)> = None;
        for (level, files) in version.files.iter().enumerate() {
            for f in files {
                if let Some((cl, cid)) = self.scrub_cursor {
                    if (level, f.id) <= (cl, cid) {
                        continue;
                    }
                }
                match &best {
                    Some((bl, bf)) if (*bl, bf.id) <= (level, f.id) => {}
                    _ => best = Some((level, f.clone())),
                }
            }
        }
        best
    }

    /// Fences whole bands the fault plan has marked failed. Idempotent:
    /// the allocator reports only newly fenced bytes.
    fn fence_failed_bands(&mut self, step: &mut ScrubReport) {
        let bands: Vec<Extent> = {
            let guard = self.ctx.lock();
            guard.fs.disk().faults().failed_bands().to_vec()
        };
        for band in bands {
            self.fence_extent(band, step);
        }
    }

    fn fence_extent(&mut self, ext: Extent, step: &mut ScrubReport) {
        let mut guard = self.ctx.lock();
        let fenced = self.policy.quarantine_extent(&mut guard.fs, ext);
        if fenced > 0 {
            step.extents_fenced += 1;
            step.bytes_fenced += fenced;
        }
    }

    /// Verifies every block of one file, salvaging what it can. Reads go
    /// straight to the file store (no block cache: scrub must see the
    /// platter, not a cached copy) and are charged as `Meta` I/O on the
    /// simulated clock.
    fn scan_file(&mut self, f: &FileMetaHandle) -> Result<FileScan> {
        let mut scan = FileScan {
            health: FileHealth::Clean,
            entries: Vec::new(),
            corrupt: 0,
            corrected: 0,
            lost: 0,
            verified: 0,
            bad_extents: Vec::new(),
        };
        let footer_len = crate::sstable::FOOTER_SIZE as u64;
        let file_ext = self.ctx.lock().fs.file_extent(f.id)?;
        let abs = |off: u64, len: u64| Extent::new(file_ext.offset + off, len);
        if f.size < footer_len {
            scan.health = FileHealth::Dead;
            scan.bad_extents.push(file_ext);
            return Ok(scan);
        }
        // Footer (unchecksummed): unreadable or unparsable means the
        // blocks cannot be located at all.
        let footer = match self.read_raw(f.id, f.size - footer_len, footer_len) {
            Ok(bytes) => bytes,
            Err(e) => {
                return match unrecoverable_extent(&e) {
                    Some(ext) => {
                        scan.health = FileHealth::Dead;
                        scan.bad_extents.push(ext);
                        Ok(scan)
                    }
                    None => Err(e),
                };
            }
        };
        let Ok((filter_handle, index_handle)) = parse_footer(&footer) else {
            scan.health = FileHealth::Dead;
            scan.bad_extents.push(abs(f.size - footer_len, footer_len));
            return Ok(scan);
        };
        // Index block: correctable like any other block, but if it stays
        // broken the data blocks cannot be located.
        let index_contents = match self.check_one_block(f.id, index_handle, &mut scan)? {
            Some(contents) => contents,
            None => {
                scan.health = FileHealth::Dead;
                return Ok(scan);
            }
        };
        // Filter block: redundant (rebuilt from salvaged entries), so an
        // uncorrectable filter leaves the file repairable.
        if filter_handle.size > 0
            && self
                .check_one_block(f.id, filter_handle, &mut scan)?
                .is_none()
        {
            scan.health = FileHealth::Repairable;
        }
        // Data blocks, in index order.
        let index = match Block::new(index_contents) {
            Ok(b) => std::sync::Arc::new(b),
            Err(_) => {
                scan.health = FileHealth::Dead;
                scan.bad_extents
                    .push(abs(index_handle.offset, index_handle.size));
                return Ok(scan);
            }
        };
        // Entries are only materialised once damage exists: clean files
        // cost one verification read per block and no memory. When the
        // *first* damaged block appears mid-walk, the clean prefix is
        // re-read and salvaged retroactively (deterministic simulation:
        // a block that verified moments ago verifies again).
        let mut ii = index.iter();
        ii.seek_to_first();
        while ii.valid() {
            let (handle, _) = BlockHandle::decode(ii.value())?;
            let was_clean = scan.health == FileHealth::Clean;
            match self.check_one_block(f.id, handle, &mut scan)? {
                Some(contents) => {
                    if scan.health != FileHealth::Clean {
                        if was_clean {
                            scan.entries = self.resalvage_prefix(f.id, &index, handle.offset)?;
                        }
                        Self::salvage_entries(f.id, handle, contents, &mut scan.entries)?;
                    }
                }
                None => {
                    // Lost block: its keys are gone from this file.
                    if was_clean {
                        scan.entries = self.resalvage_prefix(f.id, &index, handle.offset)?;
                    }
                }
            }
            ii.next();
        }
        Ok(scan)
    }

    /// Re-reads and salvages every data block *before* `stop_offset`
    /// (used when the first damage is discovered mid-walk and earlier
    /// clean blocks were not materialised).
    fn resalvage_prefix(
        &mut self,
        file: FileId,
        index: &std::sync::Arc<Block>,
        stop_offset: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut entries = Vec::new();
        let mut ii = index.iter();
        ii.seek_to_first();
        while ii.valid() {
            let (handle, _) = BlockHandle::decode(ii.value())?;
            if handle.offset >= stop_offset {
                break;
            }
            let raw =
                self.read_raw(file, handle.offset, handle.size + BLOCK_TRAILER_SIZE as u64)?;
            let contents = check_block(&raw).map_err(|e| match e {
                Error::Corruption(msg) => Error::Corruption(format!(
                    "file {file} block at offset {}: {msg} (re-read during salvage)",
                    handle.offset
                )),
                other => other,
            })?;
            Self::salvage_entries(file, handle, contents, &mut entries)?;
            ii.next();
        }
        Ok(entries)
    }

    fn salvage_entries(
        file: FileId,
        handle: BlockHandle,
        contents: Vec<u8>,
        out: &mut Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        let block = std::sync::Arc::new(Block::new(contents).map_err(|e| match e {
            Error::Corruption(msg) => Error::Corruption(format!(
                "file {file} block at offset {}: {msg}",
                handle.offset
            )),
            other => other,
        })?);
        let mut bi = block.iter();
        bi.seek_to_first();
        while bi.valid() {
            out.push((bi.key().to_vec(), bi.value().to_vec()));
            bi.next();
        }
        Ok(())
    }

    /// Reads, verifies and (if needed) bit-corrects one block. Returns
    /// the verified contents, or `None` when the block is lost; updates
    /// the scan's counters, health and fence list.
    fn check_one_block(
        &mut self,
        file: FileId,
        handle: BlockHandle,
        scan: &mut FileScan,
    ) -> Result<Option<Vec<u8>>> {
        let len = handle.size + BLOCK_TRAILER_SIZE as u64;
        let file_ext = self.ctx.lock().fs.file_extent(file)?;
        let block_ext = Extent::new(file_ext.offset + handle.offset, len);
        scan.verified += 1;
        let raw = match self.read_raw(file, handle.offset, len) {
            Ok(bytes) => bytes,
            Err(e) => {
                return match unrecoverable_extent(&e) {
                    Some(ext) => {
                        scan.lost += 1;
                        scan.bad_extents.push(ext);
                        if scan.health == FileHealth::Clean {
                            scan.health = FileHealth::Repairable;
                        }
                        Ok(None)
                    }
                    None => Err(e),
                };
            }
        };
        match check_block(&raw) {
            Ok(contents) => Ok(Some(contents)),
            Err(_) => {
                scan.corrupt += 1;
                self.ctx
                    .lock()
                    .fs
                    .disk_mut()
                    .stats_mut()
                    .faults
                    .checksum_failures += 1;
                scan.bad_extents.push(block_ext);
                if scan.health == FileHealth::Clean {
                    scan.health = FileHealth::Repairable;
                }
                match correct_single_bit(&raw) {
                    Some(fixed) => {
                        scan.corrected += 1;
                        // The trailer was verified by the corrector.
                        let contents = fixed[..fixed.len() - BLOCK_TRAILER_SIZE].to_vec();
                        Ok(Some(contents))
                    }
                    None => {
                        scan.lost += 1;
                        Ok(None)
                    }
                }
            }
        }
    }

    fn read_raw(&mut self, file: FileId, offset: u64, len: u64) -> Result<Vec<u8>> {
        self.ctx
            .lock()
            .fs
            .read_file(file, offset, len, IoKind::Meta)
    }

    /// Re-materialises a damaged file from its salvaged entries as a new
    /// file on newly allocated (post-fencing) space, swapped in at the
    /// *same level* through a committed `VersionEdit`. Same-level rebuild
    /// keeps the L0 newest-to-oldest invariant intact — pushing a lone L0
    /// file deeper would let an older L0 entry shadow it.
    fn rebuild_file(
        &mut self,
        level: usize,
        old: &FileMetaHandle,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<()> {
        let mut builder = TableBuilder::new(self.opts.table_options());
        for (ikey, value) in &entries {
            builder.add(ikey, value);
        }
        let Some(smallest) = builder.first_key().map(|k| k.to_vec()) else {
            return self.scrub_quarantine(level, old.id);
        };
        let largest = builder.last_key().to_vec();
        let id = self.versions.new_file_id();
        let data = builder.finish();
        let size = data.len() as u64;
        let set_id = {
            let mut guard = self.ctx.lock();
            self.policy.place_outputs(&mut guard.fs, &[(id, data)])?
        };
        let mut edit = VersionEdit::default();
        edit.delete_file(level, old.id);
        edit.add_file(
            level,
            FileMetaData {
                id,
                size,
                smallest,
                largest,
                set_id,
            },
        );
        {
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            self.policy.delete_file(&mut guard.fs, old.id)?;
        }
        crate::context::evict_file(&self.ctx, old.id);
        Ok(())
    }

    /// Drops one file from the version: committed delete-only edit,
    /// space reclaim, cache eviction, quarantine event.
    fn scrub_quarantine(&mut self, level: usize, id: FileId) -> Result<()> {
        let mut edit = VersionEdit::default();
        edit.delete_file(level, id);
        {
            let mut guard = self.ctx.lock();
            self.versions.log_and_apply(&mut guard.fs, edit)?;
            self.policy.delete_file(&mut guard.fs, id)?;
        }
        crate::context::evict_file(&self.ctx, id);
        self.obs_counter(ObsLayer::Lsm, "scrub.files_quarantined", 1);
        self.obs_event(
            ObsLayer::Lsm,
            ObsEventKind::FileQuarantined,
            id,
            level as u64,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::options::Options;
    use crate::policy::PerFilePolicy;
    use placement::DynamicBandAlloc;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn block_image(contents: &[u8]) -> Vec<u8> {
        let mut image = contents.to_vec();
        image.push(0);
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(contents), &[0]));
        image.extend_from_slice(&crc.to_le_bytes());
        image
    }

    #[test]
    fn corrector_fixes_single_flips_anywhere() {
        let contents: Vec<u8> = (0..1500u32).map(|i| (i * 7 + 3) as u8).collect();
        let image = block_image(&contents);
        // Every byte region: contents, type byte, stored-CRC field.
        for pos in [
            0,
            1,
            700,
            contents.len() - 1,
            contents.len(),
            image.len() - 4,
            image.len() - 1,
        ] {
            for bit in [0u8, 3, 7] {
                let mut damaged = image.clone();
                damaged[pos] ^= 1 << bit;
                assert!(check_block(&damaged).is_err(), "flip at {pos} undetected");
                let fixed = correct_single_bit(&damaged)
                    .unwrap_or_else(|| panic!("flip at byte {pos} bit {bit} not corrected"));
                assert_eq!(fixed, image);
            }
        }
    }

    #[test]
    fn corrector_rejects_double_flips() {
        let contents: Vec<u8> = (0..900u32).map(|i| (i * 13 + 1) as u8).collect();
        let image = block_image(&contents);
        let mut damaged = image.clone();
        damaged[10] ^= 1;
        damaged[500] ^= 1;
        assert!(correct_single_bit(&damaged).is_none());
        // An undamaged image passes through unchanged.
        assert_eq!(correct_single_bit(&image), Some(image));
    }

    fn open_db() -> DbCore {
        let cap = 1024 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr {
                guard_bytes: 64 << 10,
            },
            TimeModel::hdd_st1000dm003(cap),
        );
        let mut opts = Options::scaled(64 << 10);
        opts.wal_buffer_bytes = 0;
        let alloc = DynamicBandAlloc::new(cap - opts.log_zone_bytes, 64 << 10, 64 << 10);
        DbCore::open(disk, opts, Box::new(PerFilePolicy::new(Box::new(alloc)))).unwrap()
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i:012}").into_bytes(),
            format!("value-{i:06}-{}", "x".repeat(100)).into_bytes(),
        )
    }

    /// Loads `n` records and flushes them into L0 tables.
    fn loaded_db(n: u64) -> DbCore {
        let mut db = open_db();
        for i in 0..n {
            let (k, v) = kv(i);
            db.put(&k, &v).unwrap();
        }
        db.flush_memtable().unwrap();
        db
    }

    fn first_file(db: &DbCore) -> (usize, FileMetaHandle) {
        let v = db.current_version();
        for (level, files) in v.files.iter().enumerate() {
            if let Some(f) = files.first() {
                return (level, f.clone());
            }
        }
        panic!("no files in version");
    }

    #[test]
    fn clean_store_scrubs_to_a_clean_report() {
        let mut db = loaded_db(200);
        let report = db.scrub_full(&ScrubConfig::default()).unwrap();
        assert!(report.files_scanned >= 1);
        assert!(report.blocks_verified >= 1);
        assert_eq!(report.blocks_corrupt, 0);
        assert_eq!(report.files_repaired, 0);
        assert_eq!(report.files_quarantined, 0);
        assert_eq!(report.full_passes, 1);
    }

    #[test]
    fn scrub_repairs_single_bit_corruption_with_zero_loss() {
        let mut db = loaded_db(200);
        let (_, f) = first_file(&db);
        let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
        // A small latent-error region inside the first data block: every
        // read through it comes back with exactly one flipped bit.
        db.ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .corrupt_extent(Extent::new(ext.offset + 100, 64));
        let (k0, _) = kv(0);
        assert!(db.get(&k0).is_err(), "corruption must be detected");
        let report = db.scrub_full(&ScrubConfig::default()).unwrap();
        assert!(report.blocks_corrupt >= 1);
        assert!(report.blocks_corrected >= 1);
        assert_eq!(report.blocks_lost, 0);
        assert_eq!(report.files_repaired, 1);
        assert_eq!(report.files_quarantined, 0);
        assert!(report.bytes_fenced > 0, "damaged extent must be fenced");
        assert!(db.policy().allocator().quarantined_bytes() > 0);
        // Zero keys lost: every record reads back correct.
        for i in 0..200 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap(), Some(v), "key {i} after repair");
        }
        // The repaired file no longer overlaps the fenced region.
        let (_, nf) = first_file(&db);
        assert_ne!(nf.id, f.id, "repair swaps in a new file");
        let next = db.ctx().lock().fs.file_extent(nf.id).unwrap();
        assert!(
            next.end() <= ext.offset + 100 || next.offset >= ext.offset + 164,
            "rebuilt file must avoid the bad region"
        );
    }

    #[test]
    fn uncorrectable_block_drops_only_its_keys() {
        let mut db = loaded_db(400);
        // Corrupt the largest table so the fault region stays inside the
        // file: a region that bleeds past the file's end would only be
        // discovered (and fenced) once a later allocation lands on it.
        let f = {
            let v = db.current_version();
            v.files[0]
                .iter()
                .max_by_key(|f| f.size)
                .expect("no L0 files")
                .clone()
        };
        let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
        assert!(ext.len > 2 * 8192, "test needs a multi-block file");
        // A region wider than a block forces 2+ flips per block read —
        // beyond single-bit correction, so the block is lost.
        db.ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .corrupt_extent(Extent::new(ext.offset, 8192));
        let report = db.scrub_full(&ScrubConfig::default()).unwrap();
        assert!(report.blocks_lost >= 1);
        assert_eq!(report.files_repaired, 1);
        // Keys from lost blocks read as misses (no error); later keys
        // (deeper in the file, past the damage) survive.
        let mut lost = 0u64;
        let mut kept = 0u64;
        for i in 0..400 {
            let (k, v) = kv(i);
            match db.get(&k).unwrap() {
                Some(got) => {
                    assert_eq!(got, v);
                    kept += 1;
                }
                None => lost += 1,
            }
        }
        assert!(lost > 0, "an uncorrectable block loses its keys");
        assert!(kept > 0, "keys outside the damage survive");
    }

    #[test]
    fn unreadable_metadata_quarantines_the_file() {
        let mut db = loaded_db(200);
        let (_, f) = first_file(&db);
        let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
        // The whole file sits on a failed region: even the footer read
        // errors, so nothing can be salvaged.
        db.ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .fail_reads_permanently(ext);
        assert!(db.get(&kv(0).0).is_err());
        let report = db.scrub_full(&ScrubConfig::default()).unwrap();
        assert_eq!(report.files_quarantined, 1);
        assert_eq!(report.files_repaired, 0);
        assert!(report.bytes_fenced > 0);
        // The version no longer references the file: reads are misses,
        // not errors.
        assert_eq!(db.get(&kv(0).0).unwrap(), None);
    }

    #[test]
    fn failed_band_is_fenced_wholesale() {
        let mut db = loaded_db(200);
        let (_, f) = first_file(&db);
        let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
        let band = Extent::new(ext.offset, 4 * MB);
        db.ctx().lock().fs.disk_mut().faults_mut().fail_band(band);
        let report = db.scrub_full(&ScrubConfig::default()).unwrap();
        assert!(report.bytes_fenced >= 4 * MB);
        assert!(db.policy().allocator().quarantined_bytes() >= 4 * MB);
        assert_eq!(report.files_quarantined, 1);
    }

    #[test]
    fn scrub_budget_bounds_each_step() {
        let mut db = loaded_db(2000);
        let cfg = ScrubConfig {
            bytes_per_step: 1,
            repair: true,
        };
        // A 1-byte budget still finishes the file it started, but picks
        // up exactly one file per step.
        let step = db.scrub_step(&cfg).unwrap();
        assert_eq!(step.files_scanned, 1);
        assert_eq!(step.full_passes, 0);
        let total = db.scrub_full(&cfg).unwrap();
        assert!(total.full_passes == 1);
        let files = db
            .current_version()
            .files
            .iter()
            .map(|l| l.len() as u64)
            .sum::<u64>();
        assert_eq!(step.files_scanned + total.files_scanned, files);
    }

    #[test]
    fn detect_only_mode_repairs_nothing() {
        let mut db = loaded_db(200);
        let (_, f) = first_file(&db);
        let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
        db.ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .corrupt_extent(Extent::new(ext.offset + 100, 64));
        let cfg = ScrubConfig {
            repair: false,
            ..ScrubConfig::default()
        };
        let report = db.scrub_full(&cfg).unwrap();
        assert!(report.blocks_corrupt >= 1);
        assert_eq!(report.files_repaired, 0);
        assert_eq!(report.bytes_fenced, 0);
        // The damage is still there.
        assert!(db.get(&kv(0).0).is_err());
    }

    #[test]
    fn scrub_is_deterministic() {
        let run = || {
            let mut db = loaded_db(300);
            let (_, f) = first_file(&db);
            let ext = db.ctx().lock().fs.file_extent(f.id).unwrap();
            db.ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .corrupt_extent(Extent::new(ext.offset + 4200, 32));
            let report = db.scrub_full(&ScrubConfig::default()).unwrap();
            (report, db.clock_ns())
        };
        let (r1, c1) = run();
        let (r2, c2) = run();
        assert_eq!(r1, r2);
        assert_eq!(c1, c2);
    }
}
