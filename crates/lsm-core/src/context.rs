//! Shared store context: the file store plus the block and table caches,
//! behind one lock so table iterators (which outlive any single engine
//! call) can fetch blocks on demand while the engine keeps ownership
//! simple.
//!
//! Locking discipline: nothing holds the context guard across a call that
//! re-enters the context — every helper locks, performs one disk/cache
//! operation, and releases.

use crate::cache::LruCache;
use crate::error::Result;
use crate::filestore::FileStore;
use crate::sstable::block::Block;
use crate::sstable::table::Table;
use crate::types::FileId;
use std::sync::Arc;

/// Key of a cached block: (file id, block offset within the file).
pub type BlockCacheKey = (FileId, u64);

/// A mutex whose `lock()` never returns a poison error: a panic while
/// holding the store context must not cascade into every other path that
/// touches the disk (recovery code in particular keeps running after an
/// injected-fault panic unwinds through a worker).
#[derive(Debug)]
pub struct CtxMutex<T>(std::sync::Mutex<T>);

impl<T> CtxMutex<T> {
    /// Wraps `value` in a poison-forgiving mutex.
    pub fn new(value: T) -> Self {
        CtxMutex(std::sync::Mutex::new(value))
    }

    /// Locks, recovering the guard even if a previous holder panicked.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The mutable store state shared between the engine and its iterators.
#[derive(Debug)]
pub struct StoreCtx {
    /// File-id indirection over the simulated disk.
    pub fs: FileStore,
    /// Data-block cache (LevelDB's `block_cache`).
    pub block_cache: LruCache<BlockCacheKey, Block>,
    /// Open-table cache (LevelDB's `TableCache`), charged per entry.
    pub table_cache: LruCache<FileId, Table>,
}

/// Shared handle to the store context.
pub type SharedCtx = Arc<CtxMutex<StoreCtx>>;

/// Creates a shared context with the given cache budgets.
pub fn new_ctx(fs: FileStore, block_cache_bytes: u64, table_cache_entries: u64) -> SharedCtx {
    Arc::new(CtxMutex::new(StoreCtx {
        fs,
        block_cache: LruCache::new(block_cache_bytes),
        table_cache: LruCache::new(table_cache_entries),
    }))
}

/// Fetches an open table reader through the table cache, opening (and
/// charging `Meta` reads for footer/index/filter) on a miss.
pub fn get_table(ctx: &SharedCtx, id: FileId, size: u64) -> Result<Arc<Table>> {
    if let Some(t) = ctx.lock().table_cache.get(&id) {
        return Ok(t);
    }
    let table = Arc::new(Table::open(ctx, id, size)?);
    ctx.lock().table_cache.insert(id, Arc::clone(&table), 1);
    Ok(table)
}

/// Evicts a deleted file from the caches. Stale block-cache entries for
/// the file simply age out (file ids are never reused), but the table
/// reader is dropped eagerly.
pub fn evict_file(ctx: &SharedCtx, id: FileId) {
    ctx.lock().table_cache.remove(&id);
}
