//! SSTable builder and reader.
//!
//! File layout (no compression; CRC-checked like LevelDB):
//!
//! ```text
//! [data block 0][trailer] ... [data block N][trailer]
//! [filter block (bloom over user keys)][trailer]
//! [index block][trailer]
//! [footer: filter handle | index handle | padding | magic]  (48 bytes)
//! ```
//!
//! Each trailer is `type(1, always 0) | masked crc32c(4)` over the block
//! contents plus the type byte.

use crate::context::SharedCtx;
use crate::error::{corruption, Result};
use crate::iterator::InternalIterator;
use crate::sstable::block::{Block, BlockBuilder, BlockIter};
use crate::types::{self, make_internal_key, user_key, FileId, ValueType, MAX_SEQUENCE};
use crate::util::bloom::BloomFilter;
use crate::util::coding::{decode_fixed64, get_varint64, put_fixed64, put_varint64};
use crate::util::crc32c;
use smr_sim::IoKind;
use std::sync::Arc;

/// Footer size in bytes.
pub const FOOTER_SIZE: usize = 48;
/// Table magic number (LevelDB's).
pub const TABLE_MAGIC: u64 = 0xdb4775248b80fb57;
/// Per-block trailer: 1 type byte + 4 CRC bytes.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Position of a block within the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockHandle {
    /// Byte offset of the block contents.
    pub offset: u64,
    /// Size of the block contents (excluding the trailer).
    pub size: u64,
}

impl BlockHandle {
    fn encode(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    fn encoded(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(20);
        self.encode(&mut v);
        v
    }

    pub(crate) fn decode(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let Some((offset, n1)) = get_varint64(src) else {
            return corruption("bad block handle offset");
        };
        let Some((size, n2)) = get_varint64(&src[n1..]) else {
            return corruption("bad block handle size");
        };
        Ok((BlockHandle { offset, size }, n1 + n2))
    }
}

/// Build-time options for one table.
#[derive(Clone, Copy, Debug)]
pub struct TableOptions {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Restart interval inside blocks.
    pub restart_interval: usize,
    /// Bloom-filter budget per key (0 disables the filter).
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_size: 4096,
            restart_interval: 16,
            bloom_bits_per_key: 10,
        }
    }
}

/// Index separator between the last key of a block and the first key of
/// the next: shorten the user key if that yields a strictly greater one,
/// stamped with `MAX_SEQUENCE` so it still sorts not-before the block's
/// entries in internal order.
fn separator(last: &[u8], next: &[u8]) -> Vec<u8> {
    let ul = user_key(last);
    let un = user_key(next);
    let mut tmp = ul.to_vec();
    types::find_shortest_separator(&mut tmp, un);
    if tmp.as_slice() > ul {
        make_internal_key(&tmp, MAX_SEQUENCE, ValueType::Value)
    } else {
        last.to_vec()
    }
}

/// Index key after the final block.
fn successor(last: &[u8]) -> Vec<u8> {
    let ul = user_key(last);
    let mut tmp = ul.to_vec();
    types::find_short_successor(&mut tmp);
    if tmp.as_slice() > ul {
        make_internal_key(&tmp, MAX_SEQUENCE, ValueType::Value)
    } else {
        last.to_vec()
    }
}

/// Builds one SSTable into an in-memory byte buffer; the placement policy
/// decides where the bytes land on disk.
#[derive(Debug)]
pub struct TableBuilder {
    opts: TableOptions,
    buf: Vec<u8>,
    block: BlockBuilder,
    index_entries: Vec<(Vec<u8>, BlockHandle)>,
    pending: Option<(Vec<u8>, BlockHandle)>,
    user_keys: Vec<Vec<u8>>,
    first_key: Option<Vec<u8>>,
    last_key: Vec<u8>,
    num_entries: u64,
}

impl TableBuilder {
    /// Creates an empty builder.
    pub fn new(opts: TableOptions) -> Self {
        TableBuilder {
            opts,
            buf: Vec::new(),
            block: BlockBuilder::new(opts.restart_interval),
            index_entries: Vec::new(),
            pending: None,
            user_keys: Vec::new(),
            first_key: None,
            last_key: Vec::new(),
            num_entries: 0,
        }
    }

    /// Adds an entry; internal keys must arrive in strictly increasing
    /// order.
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) {
        if let Some((last, handle)) = self.pending.take() {
            self.index_entries.push((separator(&last, ikey), handle));
        }
        if self.first_key.is_none() {
            self.first_key = Some(ikey.to_vec());
        }
        self.user_keys.push(user_key(ikey).to_vec());
        self.block.add(ikey, value);
        self.last_key.clear();
        self.last_key.extend_from_slice(ikey);
        self.num_entries += 1;
        if self.block.current_size_estimate() >= self.opts.block_size {
            self.flush_block();
        }
    }

    fn write_raw_block(buf: &mut Vec<u8>, contents: &[u8]) -> BlockHandle {
        let handle = BlockHandle {
            offset: buf.len() as u64,
            size: contents.len() as u64,
        };
        buf.extend_from_slice(contents);
        buf.push(0); // type byte: uncompressed
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(contents), &[0]));
        buf.extend_from_slice(&crc.to_le_bytes());
        handle
    }

    fn flush_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        let last = self.block.last_key().to_vec();
        let block = std::mem::replace(
            &mut self.block,
            BlockBuilder::new(self.opts.restart_interval),
        );
        let handle = Self::write_raw_block(&mut self.buf, &block.finish());
        self.pending = Some((last, handle));
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Current file size estimate (finished blocks only).
    pub fn file_size_estimate(&self) -> u64 {
        (self.buf.len() + self.block.current_size_estimate()) as u64
    }

    /// Smallest internal key added.
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Largest internal key added.
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finishes the table and returns the file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_block();
        if let Some((last, handle)) = self.pending.take() {
            self.index_entries.push((successor(&last), handle));
        }
        // Filter block.
        let filter_handle = if self.opts.bloom_bits_per_key > 0 {
            let filter = BloomFilter::build(&self.user_keys, self.opts.bloom_bits_per_key);
            Self::write_raw_block(&mut self.buf, &filter.encode())
        } else {
            BlockHandle { offset: 0, size: 0 }
        };
        // Index block.
        let mut index = BlockBuilder::new(1);
        for (key, handle) in &self.index_entries {
            index.add(key, &handle.encoded());
        }
        let index_handle = Self::write_raw_block(&mut self.buf, &index.finish());
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_SIZE);
        filter_handle.encode(&mut footer);
        index_handle.encode(&mut footer);
        footer.resize(FOOTER_SIZE - 8, 0);
        put_fixed64(&mut footer, TABLE_MAGIC);
        self.buf.extend_from_slice(&footer);
        self.buf
    }
}

/// [`check_block`] with file/offset context in the error and the host's
/// checksum-failure counter bumped — every on-disk block read goes
/// through here so corruption reports say *which* block was bad.
fn check_block_at(
    ctx: &mut crate::context::StoreCtx,
    file: FileId,
    offset: u64,
    contents_and_trailer: &[u8],
) -> Result<Vec<u8>> {
    check_block(contents_and_trailer).map_err(|e| {
        ctx.fs.disk_mut().stats_mut().faults.checksum_failures += 1;
        match e {
            crate::error::Error::Corruption(msg) => crate::error::Error::Corruption(format!(
                "file {file} block at offset {offset}: {msg}"
            )),
            other => other,
        }
    })
}

pub(crate) fn check_block(contents_and_trailer: &[u8]) -> Result<Vec<u8>> {
    if contents_and_trailer.len() < BLOCK_TRAILER_SIZE {
        return corruption("block shorter than trailer");
    }
    let split = contents_and_trailer.len() - BLOCK_TRAILER_SIZE;
    let (contents, trailer) = contents_and_trailer.split_at(split);
    let ty = trailer[0];
    if ty != 0 {
        return corruption("unknown block type");
    }
    let stored = u32::from_le_bytes(trailer[1..5].try_into().expect("4 bytes"));
    let actual = crc32c::mask(crc32c::extend(crc32c::crc32c(contents), &[ty]));
    if stored != actual {
        return corruption("block checksum mismatch");
    }
    Ok(contents.to_vec())
}

/// Parses the footer of a table, returning (filter handle, index handle).
pub fn parse_footer(footer: &[u8]) -> Result<(BlockHandle, BlockHandle)> {
    if footer.len() != FOOTER_SIZE {
        return corruption("bad footer size");
    }
    if decode_fixed64(&footer[FOOTER_SIZE - 8..]) != TABLE_MAGIC {
        return corruption("bad table magic");
    }
    let (filter, n) = BlockHandle::decode(footer)?;
    let (index, _) = BlockHandle::decode(&footer[n..])?;
    Ok((filter, index))
}

/// An open table reader: index and bloom filter pinned in memory, data
/// blocks fetched on demand through the shared context's block cache.
#[derive(Debug)]
pub struct Table {
    file: FileId,
    file_size: u64,
    index: Arc<Block>,
    bloom: Option<BloomFilter>,
}

impl Table {
    /// Opens a table by reading its footer, index and filter (charged as
    /// `Meta` reads; amortised by the table cache).
    pub fn open(ctx: &SharedCtx, file: FileId, file_size: u64) -> Result<Table> {
        let mut guard = ctx.lock();
        let footer = guard.fs.read_file(
            file,
            file_size - FOOTER_SIZE as u64,
            FOOTER_SIZE as u64,
            IoKind::Meta,
        )?;
        let (filter_handle, index_handle) = parse_footer(&footer).map_err(|e| match e {
            crate::error::Error::Corruption(msg) => {
                crate::error::Error::Corruption(format!("file {file} footer: {msg}"))
            }
            other => other,
        })?;
        let index_raw = guard.fs.read_file(
            file,
            index_handle.offset,
            index_handle.size + BLOCK_TRAILER_SIZE as u64,
            IoKind::Meta,
        )?;
        let index = Arc::new(Block::new(check_block_at(
            &mut guard,
            file,
            index_handle.offset,
            &index_raw,
        )?)?);
        let bloom = if filter_handle.size > 0 {
            let raw = guard.fs.read_file(
                file,
                filter_handle.offset,
                filter_handle.size + BLOCK_TRAILER_SIZE as u64,
                IoKind::Meta,
            )?;
            BloomFilter::decode(&check_block_at(
                &mut guard,
                file,
                filter_handle.offset,
                &raw,
            )?)
        } else {
            None
        };
        Ok(Table {
            file,
            file_size,
            index,
            bloom,
        })
    }

    /// File id this reader serves.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// On-disk file size.
    pub fn file_size(&self) -> u64 {
        self.file_size
    }

    /// Whether the bloom filter definitively excludes `ukey`.
    pub fn bloom_excludes(&self, ukey: &[u8]) -> bool {
        self.bloom.as_ref().is_some_and(|b| !b.may_contain(ukey))
    }

    fn read_block(
        &self,
        ctx: &SharedCtx,
        handle: BlockHandle,
        kind: IoKind,
        use_cache: bool,
    ) -> Result<Arc<Block>> {
        let key = (self.file, handle.offset);
        let mut guard = ctx.lock();
        if use_cache {
            if let Some(block) = guard.block_cache.get(&key) {
                return Ok(block);
            }
        }
        let raw = guard.fs.read_file(
            self.file,
            handle.offset,
            handle.size + BLOCK_TRAILER_SIZE as u64,
            kind,
        )?;
        let block = Arc::new(Block::new(check_block_at(
            &mut guard,
            self.file,
            handle.offset,
            &raw,
        )?)?);
        if use_cache {
            let charge = block.size() as u64;
            guard.block_cache.insert(key, Arc::clone(&block), charge);
        }
        Ok(block)
    }

    /// Point lookup: returns the first entry with internal key >= `ikey`
    /// if it lives in the block the index points at. The caller checks
    /// user-key equality and sequence visibility.
    pub fn get(&self, ctx: &SharedCtx, ikey: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if self.bloom_excludes(user_key(ikey)) {
            return Ok(None);
        }
        let mut index_iter = self.index.iter();
        index_iter.seek(ikey);
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode(index_iter.value())?;
        let block = self.read_block(ctx, handle, IoKind::Get, true)?;
        let mut it = block.iter();
        it.seek(ikey);
        if it.valid() {
            Ok(Some((it.key().to_vec(), it.value().to_vec())))
        } else {
            Ok(None)
        }
    }

    /// An iterator over the whole table; blocks are fetched lazily and
    /// charged with the supplied `kind` (Scan for user scans,
    /// CompactionRead when driven by a compaction).
    pub fn iter(self: &Arc<Self>, ctx: SharedCtx, kind: IoKind) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            ctx,
            kind,
            // Compactions stream every block exactly once: bypass the
            // block cache so they neither pollute nor benefit from it
            // (LevelDB's `fill_cache=false` read option).
            use_cache: !matches!(kind, IoKind::CompactionRead),
            index_iter: self.index.iter(),
            block_iter: None,
            error: None,
        }
    }
}

/// Two-level iterator: index block -> data blocks.
#[derive(Debug)]
pub struct TableIterator {
    table: Arc<Table>,
    ctx: SharedCtx,
    kind: IoKind,
    use_cache: bool,
    index_iter: BlockIter,
    block_iter: Option<BlockIter>,
    error: Option<crate::error::Error>,
}

impl TableIterator {
    fn load_block(&mut self) {
        self.block_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        match BlockHandle::decode(self.index_iter.value()).and_then(|(h, _)| {
            self.table
                .read_block(&self.ctx, h, self.kind, self.use_cache)
        }) {
            Ok(block) => self.block_iter = Some(block.iter()),
            Err(e) => self.error = Some(e),
        }
    }

    /// Skips forward through index entries until the data iterator is
    /// valid or the index is exhausted.
    fn skip_empty_blocks(&mut self) {
        while self.block_iter.as_ref().is_some_and(|b| !b.valid()) {
            if !self.index_iter.valid() {
                self.block_iter = None;
                return;
            }
            self.index_iter.next();
            self.load_block();
            if let Some(b) = self.block_iter.as_mut() {
                b.seek_to_first();
            }
        }
    }
}

impl InternalIterator for TableIterator {
    fn valid(&self) -> bool {
        self.block_iter.as_ref().is_some_and(|b| b.valid())
    }

    fn seek_to_first(&mut self) {
        self.index_iter.seek_to_first();
        self.load_block();
        if let Some(b) = self.block_iter.as_mut() {
            b.seek_to_first();
        }
        self.skip_empty_blocks();
    }

    fn seek(&mut self, target: &[u8]) {
        self.index_iter.seek(target);
        self.load_block();
        if let Some(b) = self.block_iter.as_mut() {
            b.seek(target);
        }
        self.skip_empty_blocks();
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        if let Some(b) = self.block_iter.as_mut() {
            b.next();
        }
        self.skip_empty_blocks();
    }

    fn key(&self) -> &[u8] {
        self.block_iter.as_ref().expect("valid iterator").key()
    }

    fn value(&self) -> &[u8] {
        self.block_iter.as_ref().expect("valid iterator").value()
    }

    fn take_error(&mut self) -> Option<crate::error::Error> {
        self.error.take()
    }
}

/// Parses a fully materialised table (compaction reads files whole in one
/// sequential sweep) into its (internal key, value) entries.
pub fn scan_all(data: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    if data.len() < FOOTER_SIZE {
        return corruption("table smaller than footer");
    }
    let (_, index_handle) = parse_footer(&data[data.len() - FOOTER_SIZE..])?;
    let end = (index_handle.offset + index_handle.size) as usize + BLOCK_TRAILER_SIZE;
    if end > data.len() {
        return corruption("index handle out of range");
    }
    let index = Arc::new(Block::new(check_block(
        &data[index_handle.offset as usize..end],
    )?)?);
    let mut out = Vec::new();
    let mut ii = index.iter();
    ii.seek_to_first();
    while ii.valid() {
        let (h, _) = BlockHandle::decode(ii.value())?;
        let bend = (h.offset + h.size) as usize + BLOCK_TRAILER_SIZE;
        if bend > data.len() {
            return corruption("data block out of range");
        }
        let block = Arc::new(Block::new(check_block(&data[h.offset as usize..bend])?)?);
        let mut bi = block.iter();
        bi.seek_to_first();
        while bi.valid() {
            out.push((bi.key().to_vec(), bi.value().to_vec()));
            bi.next();
        }
        ii.next();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::new_ctx;
    use crate::filestore::FileStore;
    use smr_sim::{Disk, Extent, Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn build_table(n: usize) -> Vec<u8> {
        let mut b = TableBuilder::new(TableOptions {
            block_size: 512,
            ..Default::default()
        });
        for i in 0..n {
            b.add(
                &ik(&format!("key{i:06}"), 1),
                format!("value{i:06}").as_bytes(),
            );
        }
        b.finish()
    }

    fn ctx_with_file(data: &[u8]) -> SharedCtx {
        let cap = 64 * MB;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        let mut fs = FileStore::new(disk, 4 * MB);
        fs.write_file_at(1, Extent::new(0, data.len() as u64), data, IoKind::Flush)
            .unwrap();
        new_ctx(fs, 8 * MB, 100)
    }

    #[test]
    fn build_and_scan_all() {
        let data = build_table(500);
        let entries = scan_all(&data).unwrap();
        assert_eq!(entries.len(), 500);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(user_key(k), format!("key{i:06}").as_bytes());
            assert_eq!(v, format!("value{i:06}").as_bytes());
        }
    }

    #[test]
    fn open_and_get() {
        let data = build_table(500);
        let size = data.len() as u64;
        let ctx = ctx_with_file(&data);
        let table = Table::open(&ctx, 1, size).unwrap();
        for i in [0usize, 1, 250, 498, 499] {
            let lk = types::lookup_key(format!("key{i:06}").as_bytes(), MAX_SEQUENCE);
            let (k, v) = table.get(&ctx, &lk).unwrap().expect("found");
            assert_eq!(user_key(&k), format!("key{i:06}").as_bytes());
            assert_eq!(v, format!("value{i:06}").as_bytes());
        }
        // Bloom filter excludes absent keys without any block read.
        let before = ctx.lock().fs.disk().stats().kind(IoKind::Get).ops;
        let lk = types::lookup_key(b"zzz-absent", MAX_SEQUENCE);
        assert!(table.bloom_excludes(b"zzz-absent"));
        assert!(table.get(&ctx, &lk).unwrap().is_none());
        let after = ctx.lock().fs.disk().stats().kind(IoKind::Get).ops;
        assert_eq!(before, after, "bloom miss must avoid block reads");
    }

    #[test]
    fn iterator_full_scan_and_seek() {
        let data = build_table(300);
        let size = data.len() as u64;
        let ctx = ctx_with_file(&data);
        let table = Arc::new(Table::open(&ctx, 1, size).unwrap());
        let mut it = table.iter(Arc::clone(&ctx), IoKind::Scan);
        it.seek_to_first();
        let mut count = 0;
        while it.valid() {
            count += 1;
            it.next();
        }
        assert_eq!(count, 300);
        it.seek(&types::lookup_key(b"key000150", MAX_SEQUENCE));
        assert!(it.valid());
        assert_eq!(user_key(it.key()), b"key000150");
        assert!(it.take_error().is_none());
    }

    #[test]
    fn block_cache_serves_repeat_reads() {
        let data = build_table(500);
        let size = data.len() as u64;
        let ctx = ctx_with_file(&data);
        let table = Table::open(&ctx, 1, size).unwrap();
        let lk = types::lookup_key(b"key000250", MAX_SEQUENCE);
        table.get(&ctx, &lk).unwrap().unwrap();
        let ops_after_first = ctx.lock().fs.disk().stats().kind(IoKind::Get).ops;
        table.get(&ctx, &lk).unwrap().unwrap();
        let ops_after_second = ctx.lock().fs.disk().stats().kind(IoKind::Get).ops;
        assert_eq!(ops_after_first, ops_after_second);
    }

    #[test]
    fn corrupt_block_detected() {
        let mut data = build_table(100);
        // Flip a byte in the first data block.
        data[10] ^= 0xFF;
        assert!(scan_all(&data).is_err());
    }

    #[test]
    fn corrupt_data_block_reports_file_and_offset() {
        let mut data = build_table(100);
        // Flip a byte in the first data block: the open succeeds (index
        // and footer are intact) but reading the block must fail with
        // the file and offset named, and the failure counted.
        data[10] ^= 0xFF;
        let size = data.len() as u64;
        let ctx = ctx_with_file(&data);
        let table = Table::open(&ctx, 1, size).unwrap();
        let lk = types::lookup_key(b"key000000", MAX_SEQUENCE);
        let err = table.get(&ctx, &lk).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("file 1"), "{msg}");
        assert!(msg.contains("offset 0"), "{msg}");
        assert_eq!(ctx.lock().fs.disk().stats().faults.checksum_failures, 1);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = build_table(10);
        let n = data.len();
        data[n - 1] ^= 0xFF;
        assert!(scan_all(&data).is_err());
    }

    #[test]
    fn footer_roundtrip() {
        let f = BlockHandle {
            offset: 123,
            size: 456,
        };
        let i = BlockHandle {
            offset: 789,
            size: 1011,
        };
        let mut footer = Vec::new();
        f.encode(&mut footer);
        i.encode(&mut footer);
        footer.resize(FOOTER_SIZE - 8, 0);
        put_fixed64(&mut footer, TABLE_MAGIC);
        let (f2, i2) = parse_footer(&footer).unwrap();
        assert_eq!(f, f2);
        assert_eq!(i, i2);
    }

    #[test]
    fn separator_respects_internal_order() {
        use crate::types::internal_compare;
        use std::cmp::Ordering;
        let last = ik("foo", 7);
        let next = ik("fz", 3);
        let sep = separator(&last, &next);
        assert_ne!(internal_compare(&last, &sep), Ordering::Greater);
        assert_eq!(internal_compare(&sep, &next), Ordering::Less);
        // Equal user keys: separator stays the last key itself.
        let sep = separator(&ik("same", 9), &ik("same", 2));
        assert_eq!(sep, ik("same", 9));
    }

    #[test]
    fn empty_table() {
        let b = TableBuilder::new(TableOptions::default());
        let data = b.finish();
        // An empty table still has a valid footer and empty index.
        assert!(scan_all(&data).unwrap().is_empty());
    }
}
