//! SSTable machinery: blocks, filters, builder and reader.

pub mod block;
pub mod table;

pub use block::{Block, BlockBuilder, BlockIter};
pub use table::{
    scan_all, BlockHandle, Table, TableBuilder, TableIterator, TableOptions, FOOTER_SIZE,
};
