//! SSTable machinery: blocks, filters, builder and reader.

/// Restart-point key-prefix-compressed blocks.
pub mod block;
/// SSTable builder, footer, index and reader.
pub mod table;

pub use block::{Block, BlockBuilder, BlockIter};
pub use table::{
    scan_all, BlockHandle, Table, TableBuilder, TableIterator, TableOptions, FOOTER_SIZE,
};
