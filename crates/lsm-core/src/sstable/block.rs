//! SSTable data/index blocks with LevelDB's prefix-compressed entry
//! format and restart points:
//!
//! ```text
//! entry*   : varint(shared) varint(non_shared) varint(value_len)
//!            key_delta[non_shared] value[value_len]
//! restarts : fixed32 * num_restarts
//! trailer  : fixed32 num_restarts
//! ```

use crate::error::{corruption, Result};
use crate::iterator::InternalIterator;
use crate::types::internal_compare;
use crate::util::coding::{decode_fixed32, get_varint32, put_fixed32, put_varint32};
use std::cmp::Ordering;
use std::sync::Arc;

/// Builds one block.
#[derive(Debug)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    counter: usize,
    restart_interval: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl BlockBuilder {
    /// Creates a builder with a restart point every `restart_interval`
    /// entries (LevelDB default: 16).
    pub fn new(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            counter: 0,
            restart_interval: restart_interval.max(1),
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Adds an entry; keys must arrive in strictly increasing order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(
            self.entries == 0 || internal_compare(&self.last_key, key) == Ordering::Less,
            "keys must be added in order"
        );
        let shared = if self.counter < self.restart_interval {
            self.last_key
                .iter()
                .zip(key.iter())
                .take_while(|(a, b)| a == b)
                .count()
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.counter = 0;
            0
        };
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, (key.len() - shared) as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
        self.entries += 1;
    }

    /// Serialises the block (entries + restart array + count).
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed32(&mut self.buf, r);
        }
        put_fixed32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }

    /// Bytes the finished block would occupy.
    pub fn current_size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Entries added so far.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The last key added (empty before the first add).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }
}

/// An immutable, parsed block.
#[derive(Debug)]
pub struct Block {
    data: Arc<Vec<u8>>,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parses block contents (without the table-level CRC trailer).
    pub fn new(data: Vec<u8>) -> Result<Self> {
        if data.len() < 4 {
            return corruption("block too small");
        }
        let num_restarts = decode_fixed32(&data[data.len() - 4..]) as usize;
        let max_restarts = (data.len().saturating_sub(4)) / 4;
        if num_restarts == 0 || num_restarts > max_restarts {
            return corruption("bad restart count");
        }
        let restarts_offset = data.len() - 4 - num_restarts * 4;
        Ok(Block {
            data: Arc::new(data),
            restarts_offset,
            num_restarts,
        })
    }

    /// Size of the underlying buffer.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_point(&self, i: usize) -> usize {
        decode_fixed32(&self.data[self.restarts_offset + i * 4..]) as usize
    }

    /// An iterator over the block.
    pub fn iter(self: &Arc<Self>) -> BlockIter {
        BlockIter {
            block: Arc::clone(self),
            offset: usize::MAX,
            key: Vec::new(),
            value_range: (0, 0),
            next_offset: 0,
        }
    }
}

/// Iterator over one block.
#[derive(Debug)]
pub struct BlockIter {
    block: Arc<Block>,
    /// Offset of the current entry; `usize::MAX` = invalid.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    next_offset: usize,
}

impl BlockIter {
    fn data(&self) -> &[u8] {
        &self.block.data
    }

    /// Parses the entry at `self.next_offset`; the current `self.key` must
    /// be the previous entry's key (or the restart base). Returns false at
    /// the end of entries or on corruption.
    fn parse_next(&mut self) -> bool {
        let off = self.next_offset;
        if off >= self.block.restarts_offset {
            self.offset = usize::MAX;
            return false;
        }
        let data = &self.block.data[off..self.block.restarts_offset];
        let Some((shared, n1)) = get_varint32(data) else {
            self.offset = usize::MAX;
            return false;
        };
        let Some((non_shared, n2)) = get_varint32(&data[n1..]) else {
            self.offset = usize::MAX;
            return false;
        };
        let Some((vlen, n3)) = get_varint32(&data[n1 + n2..]) else {
            self.offset = usize::MAX;
            return false;
        };
        let hdr = n1 + n2 + n3;
        let (shared, non_shared, vlen) = (shared as usize, non_shared as usize, vlen as usize);
        if shared > self.key.len() || hdr + non_shared + vlen > data.len() {
            self.offset = usize::MAX;
            return false;
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[hdr..hdr + non_shared]);
        let vstart = off + hdr + non_shared;
        self.value_range = (vstart, vstart + vlen);
        self.offset = off;
        self.next_offset = vstart + vlen;
        true
    }

    fn seek_to_restart(&mut self, i: usize) {
        self.key.clear();
        self.next_offset = self.block.restart_point(i);
        self.offset = usize::MAX;
    }
}

impl InternalIterator for BlockIter {
    fn valid(&self) -> bool {
        self.offset != usize::MAX
    }

    fn seek_to_first(&mut self) {
        self.seek_to_restart(0);
        self.parse_next();
    }

    fn seek(&mut self, target: &[u8]) {
        // Binary search over restart points: find the last restart whose
        // first key is < target.
        let mut left = 0usize;
        let mut right = self.block.num_restarts - 1;
        while left < right {
            let mid = (left + right).div_ceil(2);
            self.seek_to_restart(mid);
            if !self.parse_next() {
                // Corrupt entry: fall back to a full scan from the start.
                left = 0;
                break;
            }
            if internal_compare(&self.key, target) == Ordering::Less {
                left = mid;
            } else {
                right = mid - 1;
            }
        }
        self.seek_to_restart(left);
        while self.parse_next() {
            if internal_compare(&self.key, target) != Ordering::Less {
                return;
            }
        }
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.parse_next();
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.key
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.data()[self.value_range.0..self.value_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, user_key, ValueType};

    fn ik(k: &str) -> Vec<u8> {
        make_internal_key(k.as_bytes(), 1, ValueType::Value)
    }

    fn build(keys: &[&str]) -> Arc<Block> {
        let mut b = BlockBuilder::new(3);
        for k in keys {
            b.add(&ik(k), format!("val-{k}").as_bytes());
        }
        Arc::new(Block::new(b.finish()).unwrap())
    }

    #[test]
    fn empty_block_rejected() {
        assert!(Block::new(vec![]).is_err());
        assert!(Block::new(vec![0, 0, 0, 0]).is_err()); // zero restarts
    }

    #[test]
    fn iterate_all() {
        let keys = ["apple", "banana", "cherry", "date", "elderberry", "fig"];
        let block = build(&keys);
        let mut it = block.iter();
        it.seek_to_first();
        for k in keys {
            assert!(it.valid());
            assert_eq!(user_key(it.key()), k.as_bytes());
            assert_eq!(it.value(), format!("val-{k}").as_bytes());
            it.next();
        }
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_shrinks() {
        let mut with_prefix = BlockBuilder::new(16);
        let mut unrelated = BlockBuilder::new(16);
        for i in 0..100 {
            with_prefix.add(&ik(&format!("commonprefix{i:03}")), b"v");
            unrelated.add(&ik(&format!("{i:03}zzzzzzzzzzzz")), b"v");
        }
        assert!(with_prefix.finish().len() < unrelated.finish().len());
    }

    #[test]
    fn seek_hits_and_between() {
        let keys = ["b", "d", "f", "h", "j", "l", "n", "p"];
        let block = build(&keys);
        let mut it = block.iter();
        // Exact hit.
        it.seek(&ik("f"));
        assert_eq!(user_key(it.key()), b"f");
        // Between keys: lands on the next.
        it.seek(&ik("g"));
        assert_eq!(user_key(it.key()), b"h");
        // Before the first.
        it.seek(&ik("a"));
        assert_eq!(user_key(it.key()), b"b");
        // Past the last.
        it.seek(&ik("z"));
        assert!(!it.valid());
    }

    #[test]
    fn seek_across_restart_boundaries() {
        let keys: Vec<String> = (0..50).map(|i| format!("key{i:04}")).collect();
        let mut b = BlockBuilder::new(4);
        for k in &keys {
            b.add(&ik(k), k.as_bytes());
        }
        let block = Arc::new(Block::new(b.finish()).unwrap());
        for k in &keys {
            let mut it = block.iter();
            it.seek(&make_internal_key(
                k.as_bytes(),
                u64::MAX >> 8,
                ValueType::Value,
            ));
            assert!(it.valid(), "seek {k}");
            assert_eq!(user_key(it.key()), k.as_bytes());
        }
    }

    #[test]
    fn single_entry_block() {
        let block = build(&["only"]);
        let mut it = block.iter();
        it.seek_to_first();
        assert_eq!(user_key(it.key()), b"only");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn size_estimate_matches() {
        let mut b = BlockBuilder::new(16);
        for i in 0..20 {
            b.add(&ik(&format!("k{i:02}")), b"value");
        }
        let est = b.current_size_estimate();
        let actual = b.finish().len();
        assert_eq!(est, actual);
    }
}
