//! Placement policies: the seam between the LSM engine and the disk-space
//! allocators, and the hook points the SEALDB crate uses to implement
//! *sets* (contiguous placement of each compaction's outputs) and
//! set-priority victim picking.
//!
//! [`PerFilePolicy`] is the baseline: every SSTable is allocated and freed
//! individually (LevelDB-on-a-filesystem behaviour). With the Ext4-like
//! allocator it reproduces the scattered layout of the paper's Fig. 2;
//! with the fixed-band allocator it gives SMRDB's one-table-per-band
//! placement.

use crate::error::Result;
use crate::filestore::FileStore;
use crate::types::FileId;
use crate::version::FSMETA_LOG_ID;
use placement::Allocator;
use smr_sim::{Extent, IoKind, ObsLayer};

/// Trailing dead space a value-log segment's allocation must own so
/// *in-place appends* never shingle-damage the next allocation. Normal
/// table extents are written whole, in frontier order, so forward
/// damage always lands on not-yet-allocated space; a vlog segment is
/// appended to long after the frontier has moved past it, so on raw
/// HM-SMR its extent must absorb the guard window of its own tail
/// write. Band-granular layouts confine write damage to the band itself
/// and need no slack.
pub fn vlog_append_slack(fs: &FileStore) -> u64 {
    match fs.disk().layout() {
        smr_sim::Layout::RawHmSmr { guard_bytes } => guard_bytes,
        _ => 0,
    }
}

/// Drains an allocator's queued band-lifecycle events into the disk's
/// observability sink, stamping each with the current simulated time and
/// bumping the matching placement counter. Policies call this after any
/// operation that can allocate or free extents.
pub fn drain_alloc_events(alloc: &mut dyn Allocator, fs: &mut FileStore) {
    let events = alloc.take_events();
    if events.is_empty() {
        return;
    }
    let disk = fs.disk_mut();
    for ev in events {
        disk.obs_mut()
            .counter_add(ObsLayer::Placement, ev.kind.name(), 1);
        disk.obs_event(ObsLayer::Placement, ev.kind, ev.offset, ev.len);
    }
}

/// Decides where flush and compaction outputs land on disk.
pub trait PlacementPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Places one memtable-flush output. Returns the set id the file
    /// belongs to (0 = no set).
    fn place_flush(&mut self, fs: &mut FileStore, file: FileId, data: &[u8]) -> Result<u64>;

    /// Places all outputs of one compaction. Returns the set id shared by
    /// the files (0 = no set).
    fn place_outputs(&mut self, fs: &mut FileStore, outputs: &[(FileId, Vec<u8>)]) -> Result<u64>;

    /// Deletes an obsolete file: the file's bytes are invalidated and its
    /// space is recycled when the policy allows (immediately for per-file
    /// policies; when the whole set fades for the set policy).
    fn delete_file(&mut self, fs: &mut FileStore, file: FileId) -> Result<()>;

    /// Allocates and registers an extent for a `size`-byte value-log
    /// segment *without writing it*: the value log appends into the
    /// registered extent incrementally via
    /// [`FileStore::write_file_range`]. On raw HM-SMR the returned
    /// extent is over-allocated by [`vlog_append_slack`] so in-place
    /// appends never shingle-damage the next allocation; the caller must
    /// cap its writes at `size`. The segment is recycled through
    /// [`PlacementPolicy::delete_file`] like any table.
    fn place_vlog_segment(&mut self, fs: &mut FileStore, file: FileId, size: u64)
        -> Result<Extent>;

    /// SEALDB's victim-priority hook (§III-C *Delete*): score a compaction
    /// victim by the files its compaction would consume in the next level.
    /// Higher wins; 0 everywhere falls back to round-robin picking.
    fn victim_priority(&self, _overlapped: &[FileId]) -> u64 {
        0
    }

    /// Fences `ext` off the allocator's future-allocation path: a latent
    /// sector error or failed band the scrubber discovered. Live data
    /// inside the fence is *not* copied out here — relocation happens
    /// through scrub repair, which verifies checksums block by block; a
    /// raw GC copy of a latent-error region would either fail outright or
    /// silently propagate flipped bits. Returns the bytes newly fenced
    /// (0 for policies whose allocator does not support fencing).
    fn quarantine_extent(&mut self, fs: &mut FileStore, ext: Extent) -> u64 {
        let _ = (fs, ext);
        0
    }

    /// Introspection over the underlying allocator (layout figures).
    fn allocator(&self) -> &dyn Allocator;

    /// Resets the policy's space bookkeeping to match a file store
    /// restored from a crash image: exactly the `live` (file, extent)
    /// pairs exist on disk. The allocator relearns those extents; any
    /// set/region bookkeeping restarts from per-file granularity (set
    /// grouping is an optimisation, not a correctness input).
    fn rebuild(&mut self, live: &[(FileId, Extent)]);

    /// Set bookkeeping statistics, for policies that group files into
    /// sets. Default: none.
    fn set_stats(&self) -> Option<SetStats> {
        None
    }

    /// Fragment garbage collection (the SEALDB paper's stated future
    /// work, SIV-C): relocate nearly-faded sets adjacent to fragments so
    /// the free space coalesces into reusable regions. Policies without
    /// set/fragment bookkeeping return an empty report.
    fn collect_garbage(&mut self, _fs: &mut FileStore, _cfg: &GcConfig) -> Result<GcReport> {
        Ok(GcReport::default())
    }
}

/// Tuning for [`PlacementPolicy::collect_garbage`].
#[derive(Clone, Copy, Debug)]
pub struct GcConfig {
    /// Free regions smaller than this are fragments (the paper uses the
    /// average set size).
    pub fragment_threshold: u64,
    /// Stop once fragments occupy at most this fraction of the used span.
    pub target_fragment_ratio: f64,
    /// Hard cap on relocated sets per invocation.
    pub max_moves: usize,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            fragment_threshold: 0, // 0 = use the policy's average set size
            target_fragment_ratio: 0.02,
            max_moves: 64,
        }
    }
}

/// Outcome of one garbage-collection invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GcReport {
    /// Sets relocated.
    pub relocated_sets: u64,
    /// Live bytes rewritten during relocation.
    pub moved_bytes: u64,
    /// Fragment bytes before the pass.
    pub fragments_before: u64,
    /// Fragment bytes after the pass.
    pub fragments_after: u64,
}

/// Aggregate statistics over the sets a policy has created.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SetStats {
    /// Sets created so far (flush regions count as 1-member sets).
    pub sets_created: u64,
    /// Sets whose space has been recycled.
    pub sets_faded: u64,
    /// Sets currently live on disk.
    pub sets_live: u64,
    /// Total bytes across all created *compaction* sets.
    pub compaction_set_bytes: u64,
    /// Total member files across all created compaction sets.
    pub compaction_set_files: u64,
    /// Number of compaction sets (>= 1 member, excludes flush regions).
    pub compaction_sets: u64,
}

impl SetStats {
    /// Average compaction-set size in bytes (the paper reports 27.48 MB).
    pub fn avg_set_bytes(&self) -> f64 {
        if self.compaction_sets == 0 {
            0.0
        } else {
            self.compaction_set_bytes as f64 / self.compaction_sets as f64
        }
    }

    /// Average SSTables per compaction set (the paper reports 6.87).
    pub fn avg_set_files(&self) -> f64 {
        if self.compaction_sets == 0 {
            0.0
        } else {
            self.compaction_set_files as f64 / self.compaction_sets as f64
        }
    }
}

/// Per-file placement: each SSTable is its own allocation.
pub struct PerFilePolicy {
    alloc: Box<dyn Allocator>,
    /// When set, each file create/delete writes a 4 KiB metadata record
    /// to the filesystem-journal log, modelling the "redundant software
    /// overhead" of running LevelDB above Ext4 (§IV-A2).
    fs_journal: bool,
}

impl std::fmt::Debug for PerFilePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerFilePolicy")
            .field("alloc", &self.alloc.name())
            .field("fs_journal", &self.fs_journal)
            .finish()
    }
}

impl PerFilePolicy {
    /// Creates a policy over the given allocator, without filesystem
    /// journal overhead (direct-on-disk stores).
    pub fn new(alloc: Box<dyn Allocator>) -> Self {
        PerFilePolicy {
            alloc,
            fs_journal: false,
        }
    }

    /// Creates a policy that also pays per-file filesystem metadata writes
    /// (the LevelDB-on-Ext4 baseline).
    pub fn with_fs_journal(alloc: Box<dyn Allocator>) -> Self {
        PerFilePolicy {
            alloc,
            fs_journal: true,
        }
    }

    fn journal(&self, fs: &mut FileStore) -> Result<()> {
        if self.fs_journal {
            if !fs.has_log(FSMETA_LOG_ID) {
                fs.create_log(FSMETA_LOG_ID)?;
            }
            // The filesystem journal is circular: wrap it before it can
            // crowd out the WAL/manifest (accounting keeps every write).
            if fs.log_len(FSMETA_LOG_ID)? > 4 << 20 {
                fs.delete_log(FSMETA_LOG_ID)?;
                fs.create_log(FSMETA_LOG_ID)?;
            }
            // Inode + bitmap + journal commit, amortised to one 4 KiB write.
            fs.log_append(FSMETA_LOG_ID, &[0u8; 4096], IoKind::Meta)?;
        }
        Ok(())
    }

    fn place_one(&mut self, fs: &mut FileStore, file: FileId, data: &[u8]) -> Result<()> {
        let ext = self.alloc.allocate(data.len() as u64)?;
        drain_alloc_events(self.alloc.as_mut(), fs);
        fs.write_file_at(file, ext, data, IoKind::Flush)?;
        self.journal(fs)
    }
}

impl PlacementPolicy for PerFilePolicy {
    fn name(&self) -> &'static str {
        "per-file"
    }

    fn place_flush(&mut self, fs: &mut FileStore, file: FileId, data: &[u8]) -> Result<u64> {
        self.place_one(fs, file, data)?;
        Ok(0)
    }

    fn place_outputs(&mut self, fs: &mut FileStore, outputs: &[(FileId, Vec<u8>)]) -> Result<u64> {
        for (file, data) in outputs {
            let ext = self.alloc.allocate(data.len() as u64)?;
            drain_alloc_events(self.alloc.as_mut(), fs);
            fs.write_file_at(*file, ext, data, IoKind::CompactionWrite)?;
            self.journal(fs)?;
        }
        Ok(0)
    }

    fn delete_file(&mut self, fs: &mut FileStore, file: FileId) -> Result<()> {
        let ext = fs.drop_file(file)?;
        self.alloc.free(ext);
        drain_alloc_events(self.alloc.as_mut(), fs);
        self.journal(fs)
    }

    fn place_vlog_segment(
        &mut self,
        fs: &mut FileStore,
        file: FileId,
        size: u64,
    ) -> Result<Extent> {
        let ext = self.alloc.allocate(size + vlog_append_slack(fs))?;
        drain_alloc_events(self.alloc.as_mut(), fs);
        fs.register_file(file, ext);
        self.journal(fs)?;
        Ok(ext)
    }

    fn quarantine_extent(&mut self, fs: &mut FileStore, ext: Extent) -> u64 {
        let fenced = self.alloc.quarantine(ext);
        drain_alloc_events(self.alloc.as_mut(), fs);
        fenced
    }

    fn allocator(&self) -> &dyn Allocator {
        self.alloc.as_ref()
    }

    fn rebuild(&mut self, live: &[(FileId, Extent)]) {
        let exts: Vec<Extent> = live.iter().map(|&(_, e)| e).collect();
        self.alloc.rebuild(&exts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use placement::Ext4Sim;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn fs() -> FileStore {
        let cap = 512 * MB;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        FileStore::new(disk, 16 * MB)
    }

    #[test]
    fn per_file_place_and_delete() {
        let mut store = fs();
        let alloc = Ext4Sim::new(store.data_capacity(), 64 * MB);
        let mut p = PerFilePolicy::new(Box::new(alloc));
        let set = p.place_flush(&mut store, 10, &vec![1u8; 1 << 20]).unwrap();
        assert_eq!(set, 0);
        assert!(store.has_file(10));
        assert_eq!(p.allocator().allocated_bytes(), 1 << 20);
        p.delete_file(&mut store, 10).unwrap();
        assert!(!store.has_file(10));
        assert_eq!(p.allocator().allocated_bytes(), 0);
    }

    #[test]
    fn per_file_outputs_are_scattered_by_ext4() {
        let mut store = fs();
        let alloc = Ext4Sim::new(store.data_capacity(), 64 * MB);
        let mut p = PerFilePolicy::new(Box::new(alloc));
        let outputs: Vec<(u64, Vec<u8>)> =
            (0..3).map(|i| (20 + i, vec![i as u8; 1 << 20])).collect();
        p.place_outputs(&mut store, &outputs).unwrap();
        let e0 = store.file_extent(20).unwrap();
        let e1 = store.file_extent(21).unwrap();
        let e2 = store.file_extent(22).unwrap();
        // Different block groups: gaps far larger than the files.
        assert!(e0.offset.abs_diff(e1.offset) >= 32 * MB);
        assert!(e1.offset.abs_diff(e2.offset) >= 32 * MB);
    }

    #[test]
    fn fs_journal_writes_metadata() {
        let mut store = fs();
        let alloc = Ext4Sim::new(store.data_capacity(), 64 * MB);
        let mut p = PerFilePolicy::with_fs_journal(Box::new(alloc));
        p.place_flush(&mut store, 10, &vec![1u8; 4096]).unwrap();
        p.delete_file(&mut store, 10).unwrap();
        assert_eq!(store.log_len(FSMETA_LOG_ID).unwrap(), 2 * 4096);
    }
}
