//! The file store: the paper's §III-D "indirection from file name to disk
//! location". The engines here never sit on a filesystem — every SSTable
//! is a (file id → physical extent) mapping onto the simulated disk, and
//! WAL/manifest logs live in a small conventional zone at the top of the
//! address space (real HM-SMR drives expose such a zone for metadata).

use crate::error::{Error, Result};
use crate::types::FileId;
use smr_sim::{Disk, DiskSnapshot, Extent, IoKind};
use std::collections::{BTreeMap, BTreeSet};

/// Chunk granularity of the conventional log zone.
pub const LOG_CHUNK: u64 = 256 * 1024;

/// Transient-read retries attempted before surfacing the error.
pub const READ_RETRY_BUDGET: u32 = 3;

/// Simulated backoff charged before the first retry; doubles per retry.
pub const READ_RETRY_BACKOFF_NS: u64 = 500_000;

#[derive(Debug, Clone)]
struct LogFile {
    chunks: Vec<u64>,
    len: u64,
}

#[derive(Debug)]
struct LogZone {
    base: u64,
    chunk_count: u64,
    free: BTreeSet<u64>,
}

impl LogZone {
    fn chunk_addr(&self, idx: u64) -> u64 {
        self.base + idx * LOG_CHUNK
    }
}

/// A consistent power-cut image of the whole file store: a copy-on-write
/// [`DiskSnapshot`] paired with the file/log metadata as of the same
/// operation boundary. Captured automatically at the first file-store
/// operation boundary after each Kth disk write once
/// [`smr_sim::FaultPlan::snapshot_every`] is armed (sub-operation crash
/// points are covered by torn-write injection, which needs no image), and
/// restored with [`FileStore::restore_crash_image`].
#[derive(Debug, Clone)]
pub struct CrashImage {
    disk: DiskSnapshot,
    files: BTreeMap<FileId, Extent>,
    logs: BTreeMap<FileId, LogFile>,
    zone_free: BTreeSet<u64>,
}

impl CrashImage {
    /// Number of disk writes completed when this image was captured.
    pub fn write_index(&self) -> u64 {
        self.disk.write_index()
    }
}

/// File-id → extent indirection over one simulated disk.
#[derive(Debug)]
pub struct FileStore {
    disk: Disk,
    files: BTreeMap<FileId, Extent>,
    logs: BTreeMap<FileId, LogFile>,
    zone: LogZone,
    /// Crash images pending collection by the fault harness.
    crash_images: Vec<CrashImage>,
}

impl FileStore {
    /// Wraps a disk, reserving `log_zone_bytes` at the top of the address
    /// space for WAL/manifest logs. Allocators for table data must be
    /// sized to `disk.capacity() - log_zone_bytes` so they never collide
    /// with the zone.
    pub fn new(disk: Disk, log_zone_bytes: u64) -> Self {
        let capacity = disk.capacity();
        assert!(log_zone_bytes <= capacity, "log zone exceeds capacity");
        let chunk_count = log_zone_bytes / LOG_CHUNK;
        let base = capacity - chunk_count * LOG_CHUNK;
        FileStore {
            disk,
            files: BTreeMap::new(),
            logs: BTreeMap::new(),
            zone: LogZone {
                base,
                chunk_count,
                free: (0..chunk_count).collect(),
            },
            crash_images: Vec::new(),
        }
    }

    /// Reads from the disk with a bounded retry budget on injected
    /// transient read errors — the host-side handling real drivers apply
    /// to recoverable latent sector errors. Each retry charges an
    /// exponentially growing backoff to the *simulated* clock
    /// ([`READ_RETRY_BACKOFF_NS`] doubling per attempt), so retry storms
    /// show up in latency histograms deterministically. Permanent faults
    /// (`DiskError::UnrecoverableRead` among them) pass through
    /// unchanged on the first attempt.
    fn read_disk_retrying(&mut self, ext: Extent, kind: IoKind) -> Result<Vec<u8>> {
        let mut backoff = READ_RETRY_BACKOFF_NS;
        for _ in 0..READ_RETRY_BUDGET {
            match self.disk.read(ext, kind) {
                Err(e) if e.is_transient() => {
                    self.disk.stats_mut().faults.read_retries += 1;
                    self.disk.advance_ns(backoff);
                    backoff *= 2;
                }
                other => return Ok(other?),
            }
        }
        Ok(self.disk.read(ext, kind)?)
    }

    /// Captures a power-cut image at an operation boundary when the
    /// disk's snapshot cadence fired during the last operation. Mid-
    /// operation disk snapshots are discarded in favour of one consistent
    /// boundary image (torn-write injection covers intra-operation crash
    /// points, where no paired metadata can exist).
    fn maybe_capture_crash_image(&mut self) {
        if self.disk.take_crash_snapshots().is_empty() {
            return;
        }
        self.crash_images.push(CrashImage {
            disk: self.disk.snapshot(),
            files: self.files.clone(),
            logs: self.logs.clone(),
            zone_free: self.zone.free.clone(),
        });
    }

    /// Takes a power-cut image of the store's current state on demand.
    pub fn crash_image(&self) -> CrashImage {
        CrashImage {
            disk: self.disk.snapshot(),
            files: self.files.clone(),
            logs: self.logs.clone(),
            zone_free: self.zone.free.clone(),
        }
    }

    /// Drains the automatically captured crash images.
    pub fn take_crash_images(&mut self) -> Vec<CrashImage> {
        std::mem::take(&mut self.crash_images)
    }

    /// Rolls the store back to `img`, as if power was cut at that
    /// boundary and the machine rebooted. Callers must rebuild any state
    /// layered above (version set, placement allocator) afterwards — see
    /// `sealdb::Store`'s crash-recovery constructor.
    pub fn restore_crash_image(&mut self, img: &CrashImage) {
        self.disk.restore(&img.disk);
        self.files = img.files.clone();
        self.logs = img.logs.clone();
        self.zone.free = img.zone_free.clone();
        self.crash_images.clear();
    }

    /// All registered table files and their extents (recovery/rebuild).
    pub fn file_extents(&self) -> Vec<(FileId, Extent)> {
        let mut v: Vec<(FileId, Extent)> = self.files.iter().map(|(&id, &e)| (id, e)).collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }

    /// First byte of the log zone (data allocators must stay below this).
    pub fn data_capacity(&self) -> u64 {
        self.zone.base
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the underlying disk (stats, traces, clock).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    // ----- table files -----

    /// Writes `data` at `ext` and registers it as file `id`. The extent
    /// comes from a placement policy's allocator.
    pub fn write_file_at(
        &mut self,
        id: FileId,
        ext: Extent,
        data: &[u8],
        kind: IoKind,
    ) -> Result<()> {
        debug_assert_eq!(ext.len as usize, data.len());
        self.disk.set_trace_file(id);
        self.disk.write(ext, data, kind)?;
        self.files.insert(id, ext);
        self.maybe_capture_crash_image();
        Ok(())
    }

    /// Registers a file without writing (recovery path).
    pub fn register_file(&mut self, id: FileId, ext: Extent) {
        self.files.insert(id, ext);
    }

    /// Writes `data` at `offset` within an already-registered file.
    /// Incremental-append path for log-structured files (the value log):
    /// each write lands at a fresh offset inside the file's extent, so on
    /// a host-managed SMR layout it is a legal sequential append as long
    /// as callers never rewrite a covered range.
    pub fn write_file_range(
        &mut self,
        id: FileId,
        offset: u64,
        data: &[u8],
        kind: IoKind,
    ) -> Result<()> {
        let ext = self.file_extent(id)?;
        if offset + data.len() as u64 > ext.len {
            return Err(Error::InvalidArgument(format!(
                "write past end of file {id}: {offset}+{} > {}",
                data.len(),
                ext.len
            )));
        }
        self.disk.set_trace_file(id);
        self.disk.write(
            Extent::new(ext.offset + offset, data.len() as u64),
            data,
            kind,
        )?;
        self.maybe_capture_crash_image();
        Ok(())
    }

    /// The extent a file occupies.
    pub fn file_extent(&self, id: FileId) -> Result<Extent> {
        self.files
            .get(&id)
            .copied()
            .ok_or_else(|| Error::InvalidArgument(format!("unknown file {id}")))
    }

    /// Whether a file id is registered.
    pub fn has_file(&self, id: FileId) -> bool {
        self.files.contains_key(&id)
    }

    /// Number of registered table files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Reads `len` bytes at `offset` within file `id`.
    pub fn read_file(
        &mut self,
        id: FileId,
        offset: u64,
        len: u64,
        kind: IoKind,
    ) -> Result<Vec<u8>> {
        let ext = self.file_extent(id)?;
        if offset + len > ext.len {
            return Err(Error::InvalidArgument(format!(
                "read past end of file {id}: {offset}+{len} > {}",
                ext.len
            )));
        }
        self.disk.set_trace_file(id);
        self.read_disk_retrying(Extent::new(ext.offset + offset, len), kind)
    }

    /// Reads a whole file in one sequential access.
    pub fn read_full(&mut self, id: FileId, kind: IoKind) -> Result<Vec<u8>> {
        let ext = self.file_extent(id)?;
        self.disk.set_trace_file(id);
        self.read_disk_retrying(ext, kind)
    }

    /// Unregisters a file and invalidates its bytes on disk, returning the
    /// extent so the placement policy can recycle it when appropriate.
    pub fn drop_file(&mut self, id: FileId) -> Result<Extent> {
        let ext = self
            .files
            .remove(&id)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown file {id}")))?;
        self.disk.set_trace_file(id);
        self.disk.invalidate(ext);
        Ok(ext)
    }

    // ----- conventional-zone logs -----

    /// Creates an empty log file.
    pub fn create_log(&mut self, id: FileId) -> Result<()> {
        if self.logs.contains_key(&id) {
            return Err(Error::InvalidArgument(format!("log {id} already exists")));
        }
        self.logs.insert(
            id,
            LogFile {
                chunks: Vec::new(),
                len: 0,
            },
        );
        Ok(())
    }

    /// Whether a log id exists.
    pub fn has_log(&self, id: FileId) -> bool {
        self.logs.contains_key(&id)
    }

    /// Appends bytes to a log file.
    pub fn log_append(&mut self, id: FileId, data: &[u8], kind: IoKind) -> Result<()> {
        // Gather the chunk-spanning pieces first so `self` isn't borrowed
        // across the disk writes.
        let (mut len, mut chunks_needed) = {
            let log = self
                .logs
                .get(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            (log.len, Vec::new())
        };
        let mut pos = 0usize;
        let mut pieces: Vec<(u64, usize, usize)> = Vec::new(); // (disk offset, start, end)
        {
            let log = self
                .logs
                .get(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            let mut chunk_list = log.chunks.clone();
            while pos < data.len() {
                let within = len % LOG_CHUNK;
                let chunk_idx_in_file = (len / LOG_CHUNK) as usize;
                if chunk_idx_in_file == chunk_list.len() {
                    let chunk = self
                        .zone
                        .free
                        .iter()
                        .next()
                        .copied()
                        .ok_or_else(|| Error::InvalidArgument("log zone full".into()))?;
                    self.zone.free.remove(&chunk);
                    chunks_needed.push(chunk);
                    chunk_list.push(chunk);
                }
                let chunk = chunk_list[chunk_idx_in_file];
                let n = ((LOG_CHUNK - within) as usize).min(data.len() - pos);
                pieces.push((self.zone.chunk_addr(chunk) + within, pos, pos + n));
                pos += n;
                len += n as u64;
            }
        }
        let mut torn: Option<(usize, Error)> = None;
        for (off, s, e) in pieces {
            self.disk.set_trace_file(id);
            match self
                .disk
                .write_conventional(Extent::new(off, (e - s) as u64), &data[s..e], kind)
            {
                Ok(()) => {}
                Err(err @ smr_sim::DiskError::TornWrite { .. }) => {
                    // The drive acknowledged this piece before dying: the
                    // log's metadata (journalled ahead of the data, like a
                    // filesystem extending the file) covers it, so reopen
                    // sees a torn tail the record CRCs must catch.
                    torn = Some((e, err.into()));
                    break;
                }
                Err(err) => return Err(err.into()),
            }
        }
        if let Some((acked, err)) = torn {
            let log = self
                .logs
                .get_mut(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            let new_len = log.len + acked as u64;
            let covering = new_len.div_ceil(LOG_CHUNK) as usize;
            for chunk in chunks_needed {
                if log.chunks.len() < covering {
                    log.chunks.push(chunk);
                } else {
                    // Allocated for pieces past the torn one; never
                    // acknowledged, so the metadata never learned of them.
                    self.zone.free.insert(chunk);
                }
            }
            log.len = new_len;
            return Err(err);
        }
        let log = self
            .logs
            .get_mut(&id)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
        log.chunks.extend(chunks_needed);
        log.len = len;
        self.maybe_capture_crash_image();
        Ok(())
    }

    /// Reads a log file's full contents.
    pub fn log_read_all(&mut self, id: FileId, kind: IoKind) -> Result<Vec<u8>> {
        let (chunks, len) = {
            let log = self
                .logs
                .get(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            (log.chunks.clone(), log.len)
        };
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        for chunk in chunks {
            let n = remaining.min(LOG_CHUNK);
            self.disk.set_trace_file(id);
            let addr = self.zone.chunk_addr(chunk);
            let piece = self.read_disk_retrying(Extent::new(addr, n), kind)?;
            out.extend_from_slice(&piece);
            remaining -= n;
        }
        Ok(out)
    }

    /// Length of a log file in bytes.
    pub fn log_len(&self, id: FileId) -> Result<u64> {
        self.logs
            .get(&id)
            .map(|l| l.len)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))
    }

    /// Deletes a log file and recycles its chunks.
    pub fn delete_log(&mut self, id: FileId) -> Result<()> {
        let log = self
            .logs
            .remove(&id)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
        for chunk in log.chunks {
            self.disk
                .invalidate(Extent::new(self.zone.chunk_addr(chunk), LOG_CHUNK));
            self.zone.free.insert(chunk);
        }
        Ok(())
    }

    /// Ids of all logs currently present.
    pub fn log_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self.logs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Free chunks remaining in the log zone.
    pub fn log_zone_free_chunks(&self) -> u64 {
        self.zone.free.len() as u64
    }

    /// Total chunks in the log zone.
    pub fn log_zone_chunks(&self) -> u64 {
        self.zone.chunk_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_sim::{Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn fs() -> FileStore {
        let cap = 256 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: MB },
            TimeModel::smr_st5000as0011(cap),
        );
        FileStore::new(disk, 16 * MB)
    }

    #[test]
    fn file_roundtrip() {
        let mut s = fs();
        let data = vec![0x5A; 1 << 16];
        s.write_file_at(7, Extent::new(0, data.len() as u64), &data, IoKind::Flush)
            .unwrap();
        assert!(s.has_file(7));
        assert_eq!(s.read_full(7, IoKind::Get).unwrap(), data);
        assert_eq!(
            s.read_file(7, 100, 16, IoKind::Get).unwrap(),
            vec![0x5A; 16]
        );
        let ext = s.drop_file(7).unwrap();
        assert_eq!(ext, Extent::new(0, 1 << 16));
        assert!(!s.has_file(7));
        assert!(s.read_full(7, IoKind::Get).is_err());
    }

    #[test]
    fn file_range_appends_incrementally() {
        let mut s = fs();
        // Register a band-sized extent up front, then append into it in
        // pieces — the value-log write pattern.
        s.register_file(9, Extent::new(0, 1 << 16));
        s.write_file_range(9, 0, &[1u8; 100], IoKind::VlogAppend)
            .unwrap();
        s.write_file_range(9, 100, &[2u8; 200], IoKind::VlogAppend)
            .unwrap();
        assert_eq!(s.read_file(9, 0, 100, IoKind::Get).unwrap(), vec![1u8; 100]);
        assert_eq!(
            s.read_file(9, 100, 200, IoKind::Get).unwrap(),
            vec![2u8; 200]
        );
        // The unwritten tail reads as an error, not garbage — the torn-
        // tail scan depends on this terminating deterministically.
        assert!(s.read_file(9, 300, 64, IoKind::Get).is_err());
        // Writes past the registered extent are rejected.
        assert!(s
            .write_file_range(9, (1 << 16) - 10, &[0u8; 20], IoKind::VlogAppend)
            .is_err());
    }

    #[test]
    fn read_past_end_rejected() {
        let mut s = fs();
        s.write_file_at(1, Extent::new(0, 8), &[1; 8], IoKind::Flush)
            .unwrap();
        assert!(s.read_file(1, 4, 8, IoKind::Get).is_err());
    }

    #[test]
    fn log_append_read_roundtrip() {
        let mut s = fs();
        s.create_log(100).unwrap();
        let a: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        s.log_append(100, &a, IoKind::Wal).unwrap();
        let b = vec![9u8; 600 * 1024]; // spans multiple chunks
        s.log_append(100, &b, IoKind::Wal).unwrap();
        let all = s.log_read_all(100, IoKind::Meta).unwrap();
        assert_eq!(all.len(), a.len() + b.len());
        assert_eq!(&all[..a.len()], &a[..]);
        assert_eq!(&all[a.len()..], &b[..]);
        assert_eq!(s.log_len(100).unwrap(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn log_delete_recycles_chunks() {
        let mut s = fs();
        let before = s.log_zone_free_chunks();
        s.create_log(5).unwrap();
        s.log_append(5, &vec![1u8; 1 << 20], IoKind::Wal).unwrap();
        assert!(s.log_zone_free_chunks() < before);
        s.delete_log(5).unwrap();
        assert_eq!(s.log_zone_free_chunks(), before);
        assert!(!s.has_log(5));
    }

    #[test]
    fn log_zone_is_isolated_from_data() {
        let s = fs();
        assert_eq!(s.data_capacity(), 240 * MB);
        assert_eq!(s.log_zone_chunks(), 64);
    }

    #[test]
    fn duplicate_log_rejected() {
        let mut s = fs();
        s.create_log(1).unwrap();
        assert!(s.create_log(1).is_err());
    }

    #[test]
    fn transient_read_is_retried_once() {
        let mut s = fs();
        let data = vec![0x5A; 4096];
        s.write_file_at(7, Extent::new(0, 4096), &data, IoKind::Flush)
            .unwrap();
        s.disk_mut().faults_mut().fail_reads_transiently(2);
        // The retry is internal: the caller just sees a successful read.
        assert_eq!(s.read_full(7, IoKind::Get).unwrap(), data);
        assert_eq!(s.disk().stats().faults.transient_read_errors, 1);
        assert_eq!(s.disk().stats().faults.read_retries, 1);
    }

    #[test]
    fn log_read_retries_transient_errors() {
        let mut s = fs();
        s.create_log(100).unwrap();
        let payload = vec![3u8; 300 * 1024]; // spans two chunks
        s.log_append(100, &payload, IoKind::Wal).unwrap();
        s.disk_mut().faults_mut().fail_reads_transiently(4);
        assert_eq!(s.log_read_all(100, IoKind::Meta).unwrap(), payload);
        assert_eq!(s.disk().stats().faults.read_retries, 2);
    }

    #[test]
    fn retry_backoff_is_charged_to_the_simulated_clock() {
        let mut s = fs();
        let data = vec![0x5A; 4096];
        s.write_file_at(7, Extent::new(0, 4096), &data, IoKind::Flush)
            .unwrap();
        let quiet = {
            let t0 = s.disk().clock_ns();
            s.read_full(7, IoKind::Get).unwrap();
            s.disk().clock_ns() - t0
        };
        s.disk_mut().faults_mut().fail_reads_transiently(1);
        let t0 = s.disk().clock_ns();
        assert_eq!(s.read_full(7, IoKind::Get).unwrap(), data);
        let retried = s.disk().clock_ns() - t0;
        assert!(
            retried >= quiet + super::READ_RETRY_BACKOFF_NS,
            "retry must cost at least one backoff: {retried} vs {quiet}"
        );
    }

    #[test]
    fn unrecoverable_read_is_not_retried() {
        let mut s = fs();
        let data = vec![0x5A; 4096];
        s.write_file_at(7, Extent::new(0, 4096), &data, IoKind::Flush)
            .unwrap();
        s.disk_mut()
            .faults_mut()
            .fail_reads_permanently(Extent::new(0, 4096));
        let err = s.read_full(7, IoKind::Get).unwrap_err();
        assert!(err.to_string().contains("unrecoverable"), "got {err}");
        // The retry budget stays unconsumed: retries cannot help.
        assert_eq!(s.disk().stats().faults.read_retries, 0);
        assert_eq!(s.disk().stats().faults.unrecoverable_reads, 1);
    }

    #[test]
    fn crash_image_restores_files_and_logs() {
        let mut s = fs();
        s.write_file_at(7, Extent::new(0, 64), &[1u8; 64], IoKind::Flush)
            .unwrap();
        s.create_log(100).unwrap();
        s.log_append(100, &[2u8; 100], IoKind::Wal).unwrap();
        let img = s.crash_image();
        // Diverge: new file, more log data, drop the original file.
        s.write_file_at(8, Extent::new(4096, 64), &[3u8; 64], IoKind::Flush)
            .unwrap();
        s.log_append(100, &[4u8; 100], IoKind::Wal).unwrap();
        s.drop_file(7).unwrap();
        s.restore_crash_image(&img);
        assert!(s.has_file(7));
        assert!(!s.has_file(8));
        assert_eq!(s.read_full(7, IoKind::Get).unwrap(), vec![1u8; 64]);
        assert_eq!(s.log_len(100).unwrap(), 100);
        assert_eq!(s.log_read_all(100, IoKind::Meta).unwrap(), vec![2u8; 100]);
    }

    #[test]
    fn auto_crash_images_fire_at_op_boundaries() {
        let mut s = fs();
        s.disk_mut().faults_mut().snapshot_every(2);
        for i in 0..5u64 {
            s.write_file_at(i, Extent::new(i * 4096, 64), &[i as u8; 64], IoKind::Flush)
                .unwrap();
        }
        let images = s.take_crash_images();
        assert_eq!(images.len(), 2, "cadence 2 over 5 writes");
        assert!(s.take_crash_images().is_empty());
        // Restoring the first image rolls back to exactly two files.
        s.restore_crash_image(&images[0]);
        assert_eq!(s.file_count(), 2);
        assert!(s.has_file(0) && s.has_file(1) && !s.has_file(2));
    }

    #[test]
    fn wal_bytes_are_accounted() {
        let mut s = fs();
        s.create_log(1).unwrap();
        s.log_append(1, &[7u8; 4096], IoKind::Wal).unwrap();
        assert_eq!(s.disk().stats().kind(IoKind::Wal).logical_written, 4096);
    }
}
