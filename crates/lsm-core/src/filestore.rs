//! The file store: the paper's §III-D "indirection from file name to disk
//! location". The engines here never sit on a filesystem — every SSTable
//! is a (file id → physical extent) mapping onto the simulated disk, and
//! WAL/manifest logs live in a small conventional zone at the top of the
//! address space (real HM-SMR drives expose such a zone for metadata).

use crate::error::{Error, Result};
use crate::types::FileId;
use smr_sim::{Disk, Extent, IoKind};
use std::collections::{BTreeSet, HashMap};

/// Chunk granularity of the conventional log zone.
pub const LOG_CHUNK: u64 = 256 * 1024;

struct LogFile {
    chunks: Vec<u64>,
    len: u64,
}

struct LogZone {
    base: u64,
    chunk_count: u64,
    free: BTreeSet<u64>,
}

impl LogZone {
    fn chunk_addr(&self, idx: u64) -> u64 {
        self.base + idx * LOG_CHUNK
    }
}

/// File-id → extent indirection over one simulated disk.
pub struct FileStore {
    disk: Disk,
    files: HashMap<FileId, Extent>,
    logs: HashMap<FileId, LogFile>,
    zone: LogZone,
}

impl FileStore {
    /// Wraps a disk, reserving `log_zone_bytes` at the top of the address
    /// space for WAL/manifest logs. Allocators for table data must be
    /// sized to `disk.capacity() - log_zone_bytes` so they never collide
    /// with the zone.
    pub fn new(disk: Disk, log_zone_bytes: u64) -> Self {
        let capacity = disk.capacity();
        assert!(log_zone_bytes <= capacity, "log zone exceeds capacity");
        let chunk_count = log_zone_bytes / LOG_CHUNK;
        let base = capacity - chunk_count * LOG_CHUNK;
        FileStore {
            disk,
            files: HashMap::new(),
            logs: HashMap::new(),
            zone: LogZone {
                base,
                chunk_count,
                free: (0..chunk_count).collect(),
            },
        }
    }

    /// First byte of the log zone (data allocators must stay below this).
    pub fn data_capacity(&self) -> u64 {
        self.zone.base
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable access to the underlying disk (stats, traces, clock).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    // ----- table files -----

    /// Writes `data` at `ext` and registers it as file `id`. The extent
    /// comes from a placement policy's allocator.
    pub fn write_file_at(&mut self, id: FileId, ext: Extent, data: &[u8], kind: IoKind) -> Result<()> {
        debug_assert_eq!(ext.len as usize, data.len());
        self.disk.set_trace_file(id);
        self.disk.write(ext, data, kind)?;
        self.files.insert(id, ext);
        Ok(())
    }

    /// Registers a file without writing (recovery path).
    pub fn register_file(&mut self, id: FileId, ext: Extent) {
        self.files.insert(id, ext);
    }

    /// The extent a file occupies.
    pub fn file_extent(&self, id: FileId) -> Result<Extent> {
        self.files
            .get(&id)
            .copied()
            .ok_or_else(|| Error::InvalidArgument(format!("unknown file {id}")))
    }

    /// Whether a file id is registered.
    pub fn has_file(&self, id: FileId) -> bool {
        self.files.contains_key(&id)
    }

    /// Number of registered table files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Reads `len` bytes at `offset` within file `id`.
    pub fn read_file(&mut self, id: FileId, offset: u64, len: u64, kind: IoKind) -> Result<Vec<u8>> {
        let ext = self.file_extent(id)?;
        if offset + len > ext.len {
            return Err(Error::InvalidArgument(format!(
                "read past end of file {id}: {offset}+{len} > {}",
                ext.len
            )));
        }
        self.disk.set_trace_file(id);
        Ok(self.disk.read(Extent::new(ext.offset + offset, len), kind)?)
    }

    /// Reads a whole file in one sequential access.
    pub fn read_full(&mut self, id: FileId, kind: IoKind) -> Result<Vec<u8>> {
        let ext = self.file_extent(id)?;
        self.disk.set_trace_file(id);
        Ok(self.disk.read(ext, kind)?)
    }

    /// Unregisters a file and invalidates its bytes on disk, returning the
    /// extent so the placement policy can recycle it when appropriate.
    pub fn drop_file(&mut self, id: FileId) -> Result<Extent> {
        let ext = self
            .files
            .remove(&id)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown file {id}")))?;
        self.disk.set_trace_file(id);
        self.disk.invalidate(ext);
        Ok(ext)
    }

    // ----- conventional-zone logs -----

    /// Creates an empty log file.
    pub fn create_log(&mut self, id: FileId) -> Result<()> {
        if self.logs.contains_key(&id) {
            return Err(Error::InvalidArgument(format!("log {id} already exists")));
        }
        self.logs.insert(
            id,
            LogFile {
                chunks: Vec::new(),
                len: 0,
            },
        );
        Ok(())
    }

    /// Whether a log id exists.
    pub fn has_log(&self, id: FileId) -> bool {
        self.logs.contains_key(&id)
    }

    /// Appends bytes to a log file.
    pub fn log_append(&mut self, id: FileId, data: &[u8], kind: IoKind) -> Result<()> {
        // Gather the chunk-spanning pieces first so `self` isn't borrowed
        // across the disk writes.
        let (mut len, mut chunks_needed) = {
            let log = self
                .logs
                .get(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            (log.len, Vec::new())
        };
        let mut pos = 0usize;
        let mut pieces: Vec<(u64, usize, usize)> = Vec::new(); // (disk offset, start, end)
        {
            let log = self.logs.get(&id).expect("checked above");
            let mut chunk_list = log.chunks.clone();
            while pos < data.len() {
                let within = len % LOG_CHUNK;
                let chunk_idx_in_file = (len / LOG_CHUNK) as usize;
                if chunk_idx_in_file == chunk_list.len() {
                    let chunk = self
                        .zone
                        .free
                        .iter()
                        .next()
                        .copied()
                        .ok_or_else(|| Error::InvalidArgument("log zone full".into()))?;
                    self.zone.free.remove(&chunk);
                    chunks_needed.push(chunk);
                    chunk_list.push(chunk);
                }
                let chunk = chunk_list[chunk_idx_in_file];
                let n = ((LOG_CHUNK - within) as usize).min(data.len() - pos);
                pieces.push((self.zone.chunk_addr(chunk) + within, pos, pos + n));
                pos += n;
                len += n as u64;
            }
        }
        for (off, s, e) in pieces {
            self.disk.set_trace_file(id);
            self.disk
                .write_conventional(Extent::new(off, (e - s) as u64), &data[s..e], kind)?;
        }
        let log = self.logs.get_mut(&id).expect("checked above");
        log.chunks.extend(chunks_needed);
        log.len = len;
        Ok(())
    }

    /// Reads a log file's full contents.
    pub fn log_read_all(&mut self, id: FileId, kind: IoKind) -> Result<Vec<u8>> {
        let (chunks, len) = {
            let log = self
                .logs
                .get(&id)
                .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
            (log.chunks.clone(), log.len)
        };
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        for chunk in chunks {
            let n = remaining.min(LOG_CHUNK);
            self.disk.set_trace_file(id);
            let piece = self
                .disk
                .read(Extent::new(self.zone.chunk_addr(chunk), n), kind)?;
            out.extend_from_slice(&piece);
            remaining -= n;
        }
        Ok(out)
    }

    /// Length of a log file in bytes.
    pub fn log_len(&self, id: FileId) -> Result<u64> {
        self.logs
            .get(&id)
            .map(|l| l.len)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))
    }

    /// Deletes a log file and recycles its chunks.
    pub fn delete_log(&mut self, id: FileId) -> Result<()> {
        let log = self
            .logs
            .remove(&id)
            .ok_or_else(|| Error::InvalidArgument(format!("unknown log {id}")))?;
        for chunk in log.chunks {
            self.disk
                .invalidate(Extent::new(self.zone.chunk_addr(chunk), LOG_CHUNK));
            self.zone.free.insert(chunk);
        }
        Ok(())
    }

    /// Ids of all logs currently present.
    pub fn log_ids(&self) -> Vec<FileId> {
        let mut ids: Vec<FileId> = self.logs.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Free chunks remaining in the log zone.
    pub fn log_zone_free_chunks(&self) -> u64 {
        self.zone.free.len() as u64
    }

    /// Total chunks in the log zone.
    pub fn log_zone_chunks(&self) -> u64 {
        self.zone.chunk_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smr_sim::{Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn fs() -> FileStore {
        let cap = 256 * MB;
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: MB },
            TimeModel::smr_st5000as0011(cap),
        );
        FileStore::new(disk, 16 * MB)
    }

    #[test]
    fn file_roundtrip() {
        let mut s = fs();
        let data = vec![0x5A; 1 << 16];
        s.write_file_at(7, Extent::new(0, data.len() as u64), &data, IoKind::Flush)
            .unwrap();
        assert!(s.has_file(7));
        assert_eq!(s.read_full(7, IoKind::Get).unwrap(), data);
        assert_eq!(
            s.read_file(7, 100, 16, IoKind::Get).unwrap(),
            vec![0x5A; 16]
        );
        let ext = s.drop_file(7).unwrap();
        assert_eq!(ext, Extent::new(0, 1 << 16));
        assert!(!s.has_file(7));
        assert!(s.read_full(7, IoKind::Get).is_err());
    }

    #[test]
    fn read_past_end_rejected() {
        let mut s = fs();
        s.write_file_at(1, Extent::new(0, 8), &[1; 8], IoKind::Flush)
            .unwrap();
        assert!(s.read_file(1, 4, 8, IoKind::Get).is_err());
    }

    #[test]
    fn log_append_read_roundtrip() {
        let mut s = fs();
        s.create_log(100).unwrap();
        let a: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        s.log_append(100, &a, IoKind::Wal).unwrap();
        let b = vec![9u8; 600 * 1024]; // spans multiple chunks
        s.log_append(100, &b, IoKind::Wal).unwrap();
        let all = s.log_read_all(100, IoKind::Meta).unwrap();
        assert_eq!(all.len(), a.len() + b.len());
        assert_eq!(&all[..a.len()], &a[..]);
        assert_eq!(&all[a.len()..], &b[..]);
        assert_eq!(s.log_len(100).unwrap(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn log_delete_recycles_chunks() {
        let mut s = fs();
        let before = s.log_zone_free_chunks();
        s.create_log(5).unwrap();
        s.log_append(5, &vec![1u8; 1 << 20], IoKind::Wal).unwrap();
        assert!(s.log_zone_free_chunks() < before);
        s.delete_log(5).unwrap();
        assert_eq!(s.log_zone_free_chunks(), before);
        assert!(!s.has_log(5));
    }

    #[test]
    fn log_zone_is_isolated_from_data() {
        let s = fs();
        assert_eq!(s.data_capacity(), 240 * MB);
        assert_eq!(s.log_zone_chunks(), 64);
    }

    #[test]
    fn duplicate_log_rejected() {
        let mut s = fs();
        s.create_log(1).unwrap();
        assert!(s.create_log(1).is_err());
    }

    #[test]
    fn wal_bytes_are_accounted() {
        let mut s = fs();
        s.create_log(1).unwrap();
        s.log_append(1, &[7u8; 4096], IoKind::Wal).unwrap();
        assert_eq!(s.disk().stats().kind(IoKind::Wal).logical_written, 4096);
    }
}
