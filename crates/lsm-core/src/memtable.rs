//! The memtable: an arena-backed skiplist keyed by internal key, exactly
//! LevelDB's write-buffer design. Writes are batched here and flushed to
//! an L0 SSTable when the buffer exceeds `write_buffer_size` (step (2) and
//! (3) of the paper's Fig. 1).
//!
//! Entries are stored once in a bump arena as
//! `varint(ikey_len) | internal_key | varint(value_len) | value`;
//! skiplist nodes only carry arena offsets, so memory accounting is exact
//! and inserts never move data.

use crate::iterator::InternalIterator;
use crate::types::{self, internal_compare, SequenceNumber, ValueType};
use crate::util::coding::{get_varint64, put_varint64};
use crate::util::rng::XorShift64;
use std::cmp::Ordering;

const MAX_HEIGHT: usize = 12;
const BRANCHING: u64 = 4;
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Node {
    /// Arena offset of the encoded entry.
    entry: u32,
    /// Forward links, one per level up to the node's height; levels above
    /// the node's height stay `NIL` and are never linked.
    next: [u32; MAX_HEIGHT],
}

/// The memtable.
#[derive(Debug)]
pub struct MemTable {
    arena: Vec<u8>,
    nodes: Vec<Node>,
    max_height: usize,
    rng: XorShift64,
    entries: usize,
}

/// Parsed view of one arena entry.
struct Entry<'a> {
    ikey: &'a [u8],
    value: &'a [u8],
}

fn parse_entry(arena: &[u8], off: u32) -> Entry<'_> {
    let s = &arena[off as usize..];
    let (klen, n1) = get_varint64(s).expect("arena entry klen");
    let ikey = &s[n1..n1 + klen as usize];
    let rest = &s[n1 + klen as usize..];
    let (vlen, n2) = get_varint64(rest).expect("arena entry vlen");
    let value = &rest[n2..n2 + vlen as usize];
    Entry { ikey, value }
}

impl MemTable {
    /// Creates an empty memtable; `seed` drives skiplist height choices
    /// (kept deterministic for reproducible figure regeneration).
    pub fn new(seed: u64) -> Self {
        let head = Node {
            entry: 0,
            next: [NIL; MAX_HEIGHT],
        };
        MemTable {
            arena: Vec::with_capacity(1 << 16),
            nodes: vec![head],
            max_height: 1,
            rng: XorShift64::new(seed),
            entries: 0,
        }
    }

    /// Number of entries added.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate memory used by entries (the flush trigger input).
    pub fn approximate_memory_usage(&self) -> usize {
        self.arena.len() + self.nodes.len() * std::mem::size_of::<Node>()
    }

    fn random_height(&mut self) -> usize {
        let mut h = 1;
        while h < MAX_HEIGHT && self.rng.one_in(BRANCHING) {
            h += 1;
        }
        h
    }

    fn node_key(&self, idx: u32) -> &[u8] {
        parse_entry(&self.arena, self.nodes[idx as usize].entry).ikey
    }

    /// Index of the first node with key >= `ikey`, filling `prev` with the
    /// rightmost node before it at each level.
    fn find_greater_or_equal(&self, ikey: &[u8], mut prev: Option<&mut [u32; MAX_HEIGHT]>) -> u32 {
        let mut x: u32 = 0; // head
        let mut level = self.max_height - 1;
        loop {
            let nxt = self.nodes[x as usize].next[level];
            let advance =
                nxt != NIL && internal_compare(self.node_key(nxt), ikey) == Ordering::Less;
            if advance {
                x = nxt;
            } else {
                if let Some(prev) = prev.as_deref_mut() {
                    prev[level] = x;
                }
                if level == 0 {
                    return nxt;
                }
                level -= 1;
            }
        }
    }

    /// Inserts an entry. Keys are (user_key, seq) pairs, which the caller
    /// guarantees unique (sequence numbers never repeat).
    pub fn add(&mut self, seq: SequenceNumber, ty: ValueType, user_key: &[u8], value: &[u8]) {
        let mut ikey = Vec::with_capacity(user_key.len() + 8);
        types::append_internal_key(&mut ikey, user_key, seq, ty);

        let entry_off = self.arena.len() as u32;
        put_varint64(&mut self.arena, ikey.len() as u64);
        self.arena.extend_from_slice(&ikey);
        put_varint64(&mut self.arena, value.len() as u64);
        self.arena.extend_from_slice(value);

        let mut prev = [0u32; MAX_HEIGHT];
        let _ = self.find_greater_or_equal(&ikey, Some(&mut prev));
        let height = self.random_height();
        if height > self.max_height {
            for p in prev.iter_mut().take(height).skip(self.max_height) {
                *p = 0;
            }
            self.max_height = height;
        }
        let new_idx = self.nodes.len() as u32;
        let mut node = Node {
            entry: entry_off,
            next: [NIL; MAX_HEIGHT],
        };
        for (level, &p) in prev.iter().enumerate().take(height) {
            node.next[level] = self.nodes[p as usize].next[level];
        }
        self.nodes.push(node);
        for (level, &p) in prev.iter().enumerate().take(height) {
            self.nodes[p as usize].next[level] = new_idx;
        }
        self.entries += 1;
    }

    /// Point lookup at `snapshot`:
    /// * `None` — the key is not in this memtable,
    /// * `Some(None)` — a tombstone shadows it,
    /// * `Some(Some(v))` — the newest visible value.
    pub fn get(&self, user_key: &[u8], snapshot: SequenceNumber) -> Option<Option<Vec<u8>>> {
        let lk = types::lookup_key(user_key, snapshot);
        let idx = self.find_greater_or_equal(&lk, None);
        if idx == NIL {
            return None;
        }
        let entry = parse_entry(&self.arena, self.nodes[idx as usize].entry);
        if types::user_key(entry.ikey) != user_key {
            return None;
        }
        match types::parse_trailer(entry.ikey).1 {
            ValueType::Value => Some(Some(entry.value.to_vec())),
            ValueType::Deletion => Some(None),
        }
    }

    /// Iterator over the memtable in internal-key order.
    pub fn iter(&self) -> MemTableIterator<'_> {
        MemTableIterator {
            mem: self,
            node: NIL,
        }
    }
}

/// Iterator over a memtable.
#[derive(Debug)]
pub struct MemTableIterator<'a> {
    mem: &'a MemTable,
    node: u32,
}

impl<'a> InternalIterator for MemTableIterator<'a> {
    fn valid(&self) -> bool {
        self.node != NIL
    }

    fn seek_to_first(&mut self) {
        self.node = self.mem.nodes[0].next[0];
    }

    fn seek(&mut self, target: &[u8]) {
        self.node = self.mem.find_greater_or_equal(target, None);
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.node = self.mem.nodes[self.node as usize].next[0];
    }

    fn key(&self) -> &[u8] {
        parse_entry(&self.mem.arena, self.mem.nodes[self.node as usize].entry).ikey
    }

    fn value(&self) -> &[u8] {
        parse_entry(&self.mem.arena, self.mem.nodes[self.node as usize].entry).value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mt() -> MemTable {
        MemTable::new(42)
    }

    #[test]
    fn empty_lookup() {
        let m = mt();
        assert!(m.is_empty());
        assert_eq!(m.get(b"missing", u64::MAX >> 8), None);
    }

    #[test]
    fn add_get() {
        let mut m = mt();
        m.add(1, ValueType::Value, b"alpha", b"one");
        m.add(2, ValueType::Value, b"beta", b"two");
        assert_eq!(m.get(b"alpha", 100), Some(Some(b"one".to_vec())));
        assert_eq!(m.get(b"beta", 100), Some(Some(b"two".to_vec())));
        assert_eq!(m.get(b"gamma", 100), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn newer_version_shadows() {
        let mut m = mt();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(5, ValueType::Value, b"k", b"v5");
        assert_eq!(m.get(b"k", 100), Some(Some(b"v5".to_vec())));
        // Snapshot reads see the old version.
        assert_eq!(m.get(b"k", 1), Some(Some(b"v1".to_vec())));
        // A snapshot before any write sees nothing.
        assert_eq!(m.get(b"k", 0), None);
    }

    #[test]
    fn tombstone_shadows() {
        let mut m = mt();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(b"k", 100), Some(None));
        assert_eq!(m.get(b"k", 1), Some(Some(b"v".to_vec())));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = mt();
        let keys = [b"delta" as &[u8], b"alpha", b"echo", b"bravo", b"charlie"];
        for (i, k) in keys.iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, k, b"v");
        }
        let mut it = m.iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push(types::user_key(it.key()).to_vec());
            it.next();
        }
        let mut expected: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn iterator_seek() {
        let mut m = mt();
        for i in 0..100u64 {
            m.add(
                i + 1,
                ValueType::Value,
                format!("key{i:03}").as_bytes(),
                b"v",
            );
        }
        let mut it = m.iter();
        it.seek(&types::lookup_key(b"key050", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(types::user_key(it.key()), b"key050");
        it.seek(&types::lookup_key(b"zzz", u64::MAX >> 8));
        assert!(!it.valid());
    }

    #[test]
    fn large_insert_sorted_and_complete() {
        let mut m = mt();
        let n = 10_000u64;
        // Insert in a scrambled order.
        for i in 0..n {
            let k = (i * 2654435761) % n;
            m.add(
                i + 1,
                ValueType::Value,
                format!("{k:08}").as_bytes(),
                &k.to_le_bytes(),
            );
        }
        let mut it = m.iter();
        it.seek_to_first();
        let mut count = 0;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let k = it.key().to_vec();
            if let Some(l) = &last {
                assert_eq!(internal_compare(l, &k), Ordering::Less);
            }
            last = Some(k);
            count += 1;
            it.next();
        }
        assert_eq!(count, n as usize);
        assert!(m.approximate_memory_usage() > 0);
    }

    #[test]
    fn memory_usage_grows() {
        let mut m = mt();
        let before = m.approximate_memory_usage();
        m.add(1, ValueType::Value, b"key", &vec![0u8; 1000]);
        assert!(m.approximate_memory_usage() >= before + 1000);
    }
}
