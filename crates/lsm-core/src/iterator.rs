//! The internal iterator abstraction shared by memtables, blocks, tables
//! and the merging machinery. Keys are *internal keys*; iteration is
//! forward-only (all the paper's workloads — compactions, point gets and
//! YCSB range scans — only need forward iteration).

use crate::types::internal_compare;
use std::cmp::Ordering;

/// A forward iterator over (internal key, value) pairs in internal-key
/// order.
pub trait InternalIterator {
    /// Whether the iterator is positioned at an entry.
    fn valid(&self) -> bool;
    /// Positions at the first entry.
    fn seek_to_first(&mut self);
    /// Positions at the first entry with key >= `target` (internal key).
    fn seek(&mut self, target: &[u8]);
    /// Advances to the next entry. Requires `valid()`.
    fn next(&mut self);
    /// Current internal key. Requires `valid()`.
    fn key(&self) -> &[u8];
    /// Current value. Requires `valid()`.
    fn value(&self) -> &[u8];
    /// Takes the first deferred I/O or corruption error this iterator
    /// (or any of its children) hit while loading data. An iterator
    /// that hits an error simply turns invalid, which is
    /// indistinguishable from a clean end-of-stream — so any caller
    /// for whom a silently lost tail matters (compaction above all:
    /// it *deletes its inputs* afterwards) must check this once
    /// iteration stops. Defaults to `None` for purely in-memory
    /// sources that cannot fail.
    fn take_error(&mut self) -> Option<crate::error::Error> {
        None
    }
}

/// Merges N child iterators into one sorted stream (smallest internal key
/// first; ties broken by child index, so earlier children shadow later
/// ones — callers order children newest-first).
pub struct MergingIterator<'a> {
    children: Vec<Box<dyn InternalIterator + 'a>>,
    current: Option<usize>,
}

impl std::fmt::Debug for MergingIterator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergingIterator")
            .field("children", &self.children.len())
            .field("current", &self.current)
            .finish()
    }
}

impl<'a> MergingIterator<'a> {
    /// Creates a merging iterator; children need not be positioned.
    pub fn new(children: Vec<Box<dyn InternalIterator + 'a>>) -> Self {
        MergingIterator {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    if internal_compare(child.key(), self.children[b].key()) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        self.current = best;
    }
}

impl<'a> InternalIterator for MergingIterator<'a> {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for c in &mut self.children {
            c.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, target: &[u8]) {
        for c in &mut self.children {
            c.seek(target);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        let cur = self.current.expect("next() on invalid iterator");
        self.children[cur].next();
        self.find_smallest();
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("key() on invalid iterator")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("value() on invalid iterator")].value()
    }

    fn take_error(&mut self) -> Option<crate::error::Error> {
        self.children.iter_mut().find_map(|c| c.take_error())
    }
}

/// An iterator over an in-memory sorted list of (internal key, value)
/// pairs; used in tests and as a building block.
#[derive(Debug)]
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
}

impl VecIterator {
    /// Creates from entries already sorted by internal key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| internal_compare(&w[0].0, &w[1].0) != Ordering::Greater));
        let pos = entries.len();
        VecIterator { entries, pos }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.pos = 0;
    }

    fn seek(&mut self, target: &[u8]) {
        self.pos = self
            .entries
            .partition_point(|(k, _)| internal_compare(k, target) == Ordering::Less);
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.pos += 1;
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn collect(it: &mut dyn InternalIterator) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        it.seek_to_first();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        out
    }

    #[test]
    fn vec_iterator_seek() {
        let mut it = VecIterator::new(vec![
            (ik("a", 1), b"1".to_vec()),
            (ik("c", 1), b"2".to_vec()),
            (ik("e", 1), b"3".to_vec()),
        ]);
        it.seek(&ik("b", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(it.value(), b"2");
        it.seek(&ik("f", 0));
        assert!(!it.valid());
    }

    #[test]
    fn merging_interleaves_sorted() {
        let a = VecIterator::new(vec![(ik("a", 1), vec![]), (ik("d", 1), vec![])]);
        let b = VecIterator::new(vec![(ik("b", 1), vec![]), (ik("c", 1), vec![])]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        let keys: Vec<Vec<u8>> = collect(&mut m).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![ik("a", 1), ik("b", 1), ik("c", 1), ik("d", 1)]);
    }

    #[test]
    fn merging_newer_sequence_comes_first() {
        let newer = VecIterator::new(vec![(ik("k", 9), b"new".to_vec())]);
        let older = VecIterator::new(vec![(ik("k", 3), b"old".to_vec())]);
        let mut m = MergingIterator::new(vec![Box::new(newer), Box::new(older)]);
        m.seek_to_first();
        assert_eq!(m.value(), b"new");
        m.next();
        assert_eq!(m.value(), b"old");
        m.next();
        assert!(!m.valid());
    }

    #[test]
    fn merging_empty_children() {
        let a = VecIterator::new(vec![]);
        let b = VecIterator::new(vec![(ik("x", 1), vec![])]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek_to_first();
        assert!(m.valid());
        m.next();
        assert!(!m.valid());
        let mut empty = MergingIterator::new(vec![]);
        empty.seek_to_first();
        assert!(!empty.valid());
    }

    #[test]
    fn merging_seek() {
        let a = VecIterator::new(vec![(ik("a", 1), vec![]), (ik("m", 1), vec![])]);
        let b = VecIterator::new(vec![(ik("f", 1), vec![]), (ik("z", 1), vec![])]);
        let mut m = MergingIterator::new(vec![Box::new(a), Box::new(b)]);
        m.seek(&ik("g", u64::MAX >> 8));
        assert!(m.valid());
        assert_eq!(crate::types::user_key(m.key()), b"m");
    }
}
