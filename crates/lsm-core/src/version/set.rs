//! The version set: owns the current [`Version`], the manifest log, the
//! file-id / sequence counters and compaction picking (size-triggered,
//! round-robin victims via compaction pointers — LevelDB's policy — with
//! an optional victim-priority hook that SEALDB uses to prefer victims
//! whose sets contain the most invalidated SSTables, §III-C *Delete*).

use crate::error::{corruption, Result};
use crate::filestore::FileStore;
use crate::types::{user_key, FileId, SequenceNumber};
use crate::version::edit::{FileMetaHandle, VersionEdit};
use crate::version::version::Version;
use crate::wal::{LogReader, LogWriter};
use smr_sim::IoKind;
use std::sync::Arc;

/// Reserved log id for the manifest.
pub const MANIFEST_LOG_ID: FileId = 1;

/// Victim-priority hook: scores a compaction candidate given the
/// next-level files its compaction would consume (SEALDB's set hook).
pub type VictimPriority<'a> = &'a dyn Fn(&[FileMetaHandle]) -> u64;

/// Outcome of a manifest recovery: how much of the log was intact and
/// how many trailing records were abandoned as corrupt or half-written.
#[derive(Clone, Copy, Debug, Default)]
pub struct ManifestRecovery {
    /// Version edits decoded and applied.
    pub edits_applied: u64,
    /// Records dropped after the first corrupt one (the recovery falls
    /// back to the last consistent version).
    pub records_dropped: u64,
}
/// Reserved log id for the (optional) filesystem-metadata journal.
pub const FSMETA_LOG_ID: FileId = 0;
/// First id handed out for WALs and tables.
const FIRST_FILE_ID: FileId = 10;

/// Level sizing/trigger parameters (a subset of the DB options).
#[derive(Clone, Copy, Debug)]
pub struct LevelParams {
    /// Number of levels (LevelDB: 7).
    pub num_levels: usize,
    /// L0 file-count compaction trigger (LevelDB: 4).
    pub l0_trigger: usize,
    /// Byte limit of L1; level `i` allows `base * multiplier^(i-1)`.
    pub base_bytes: u64,
    /// The paper's amplification factor AF (10).
    pub multiplier: u64,
}

impl LevelParams {
    /// Byte limit for a level (level >= 1).
    pub fn max_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut b = self.base_bytes;
        for _ in 1..level {
            b = b.saturating_mul(self.multiplier);
        }
        b
    }
}

/// A picked compaction: the victim file(s) in `level` plus the overlapped
/// files in `level + 1` — the paper's *compaction unit* (victim + set).
#[derive(Clone, Debug)]
pub struct Compaction {
    /// Input level.
    pub level: usize,
    /// `inputs[0]` = victims in `level`, `inputs[1]` = overlapped set in
    /// `level + 1`.
    pub inputs: [Vec<FileMetaHandle>; 2],
    /// Files in `level + 2` overlapping the output range, used to bound
    /// output file key ranges.
    pub grandparents: Vec<FileMetaHandle>,
}

impl Compaction {
    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().flatten().map(|f| f.size).sum()
    }

    /// Total number of input files.
    pub fn num_input_files(&self) -> usize {
        self.inputs[0].len() + self.inputs[1].len()
    }

    /// User-key range spanned by all inputs: (smallest, largest).
    pub fn user_range(&self) -> (Vec<u8>, Vec<u8>) {
        let mut it = self.inputs.iter().flatten();
        // Compactions are only constructed with at least one input file
        // (`pick_compaction` returns `None` otherwise), and this runs at
        // compaction time, not during crash recovery.
        // seal-lint: allow(no-unwrap-in-recovery)
        let first = it.next().expect("compaction has inputs");
        let mut lo = user_key(&first.smallest).to_vec();
        let mut hi = user_key(&first.largest).to_vec();
        for f in it {
            if user_key(&f.smallest) < lo.as_slice() {
                lo = user_key(&f.smallest).to_vec();
            }
            if user_key(&f.largest) > hi.as_slice() {
                hi = user_key(&f.largest).to_vec();
            }
        }
        (lo, hi)
    }
}

/// Owns versions, counters and the manifest.
#[derive(Debug)]
pub struct VersionSet {
    params: LevelParams,
    current: Arc<Version>,
    next_file: FileId,
    last_sequence: SequenceNumber,
    log_number: FileId,
    compact_pointer: Vec<Vec<u8>>,
    manifest: LogWriter,
    /// Latest auxiliary subsystem blob seen in an edit (see
    /// [`VersionEdit::aux`]); re-emitted on manifest compaction so the
    /// rewrite never loses checkpointed subsystem state.
    aux: Option<Vec<u8>>,
}

impl VersionSet {
    /// Creates a fresh, empty version set (no manifest I/O yet; call
    /// [`VersionSet::create`] or [`VersionSet::recover`]).
    pub fn new(params: LevelParams) -> Self {
        VersionSet {
            current: Arc::new(Version::empty(params.num_levels)),
            compact_pointer: vec![Vec::new(); params.num_levels],
            params,
            next_file: FIRST_FILE_ID,
            last_sequence: 0,
            log_number: 0,
            manifest: LogWriter::new(),
            aux: None,
        }
    }

    /// Initialises the manifest log for a brand-new database.
    pub fn create(&mut self, fs: &mut FileStore) -> Result<()> {
        fs.create_log(MANIFEST_LOG_ID)?;
        let edit = VersionEdit {
            next_file: Some(self.next_file),
            last_sequence: Some(self.last_sequence),
            log_number: Some(self.log_number),
            ..Default::default()
        };
        self.manifest.add_record(&edit.encode());
        let bytes = self.manifest.take();
        fs.log_append(MANIFEST_LOG_ID, &bytes, IoKind::Meta)?;
        Ok(())
    }

    /// Rebuilds state from an existing manifest log.
    ///
    /// A corrupt or half-written record aborts the scan: the edits after
    /// it may depend on it, so recovery falls back to the last consistent
    /// version (safe because [`VersionSet::log_and_apply`] stamps the
    /// counters into every record — any intact prefix carries a complete
    /// `next_file` / `last_sequence` / `log_number`). Only a manifest
    /// with no intact edit at all is an error.
    pub fn recover(&mut self, fs: &mut FileStore) -> Result<ManifestRecovery> {
        if !fs.has_log(MANIFEST_LOG_ID) {
            return corruption(format!(
                "missing manifest log (expected log id {MANIFEST_LOG_ID})"
            ));
        }
        let data = fs.log_read_all(MANIFEST_LOG_ID, IoKind::Meta)?;
        let mut reader = LogReader::new(&data);
        let mut version = Version::empty(self.params.num_levels);
        let mut report = ManifestRecovery::default();
        while let Some(rec) = reader.next_record() {
            let decoded = match rec {
                Ok(bytes) => VersionEdit::decode(&bytes),
                Err(e) => {
                    fs.disk_mut().stats_mut().faults.checksum_failures += 1;
                    Err(e)
                }
            };
            let Ok(edit) = decoded else {
                report.records_dropped += 1;
                while reader.next_record().is_some() {
                    report.records_dropped += 1;
                }
                break;
            };
            Self::apply_edit(&mut version, &edit);
            if let Some(v) = edit.next_file {
                self.next_file = v;
            }
            if let Some(v) = edit.last_sequence {
                self.last_sequence = v;
            }
            if let Some(v) = edit.log_number {
                self.log_number = v;
            }
            for (level, key) in edit.compact_pointers {
                self.compact_pointer[level] = key;
            }
            if let Some(blob) = edit.aux {
                self.aux = Some(blob);
            }
            report.edits_applied += 1;
        }
        if report.edits_applied == 0 && !data.is_empty() {
            return corruption(format!(
                "manifest log {MANIFEST_LOG_ID} contains no intact edits ({} bytes, {} record(s) dropped)",
                data.len(),
                report.records_dropped
            ));
        }
        version
            .check_invariants()
            .map_err(crate::error::Error::Corruption)?;
        self.current = Arc::new(version);
        Ok(report)
    }

    fn apply_edit(version: &mut Version, edit: &VersionEdit) {
        for (level, id) in &edit.deleted {
            version.files[*level].retain(|f| f.id != *id);
        }
        for (level, meta) in &edit.added {
            version.files[*level].push(Arc::new(meta.clone()));
        }
        // Restore ordering invariants.
        version.files[0].sort_by_key(|f| std::cmp::Reverse(f.id));
        for level in 1..version.files.len() {
            version.files[level].sort_by(|a, b| a.smallest.cmp(&b.smallest).then(a.id.cmp(&b.id)));
        }
    }

    /// Applies an edit to produce the next version and logs it to the
    /// manifest. Counter fields are stamped automatically.
    pub fn log_and_apply(&mut self, fs: &mut FileStore, mut edit: VersionEdit) -> Result<()> {
        edit.next_file = Some(self.next_file);
        edit.last_sequence = Some(self.last_sequence);
        edit.log_number = Some(self.log_number);
        let mut version = (*self.current).clone();
        Self::apply_edit(&mut version, &edit);
        for (level, key) in &edit.compact_pointers {
            self.compact_pointer[*level] = key.clone();
        }
        if let Some(blob) = &edit.aux {
            self.aux = Some(blob.clone());
        }
        debug_assert_eq!(version.check_invariants(), Ok(()));
        self.manifest.add_record(&edit.encode());
        let bytes = self.manifest.take();
        fs.log_append(MANIFEST_LOG_ID, &bytes, IoKind::Meta)?;
        self.current = Arc::new(version);
        Ok(())
    }

    /// Rewrites the manifest as a single snapshot record when it has
    /// grown past `limit` bytes (LevelDB rewrites its MANIFEST on reopen;
    /// this engine does it online since instances are long-lived).
    /// Returns whether a rewrite happened.
    pub fn maybe_compact_manifest(&mut self, fs: &mut FileStore, limit: u64) -> Result<bool> {
        if fs.log_len(MANIFEST_LOG_ID)? <= limit {
            return Ok(false);
        }
        fs.delete_log(MANIFEST_LOG_ID)?;
        fs.create_log(MANIFEST_LOG_ID)?;
        let mut edit = VersionEdit {
            log_number: Some(self.log_number),
            next_file: Some(self.next_file),
            last_sequence: Some(self.last_sequence),
            ..Default::default()
        };
        for (level, key) in self.compact_pointer.iter().enumerate() {
            if !key.is_empty() {
                edit.compact_pointers.push((level, key.clone()));
            }
        }
        for (level, files) in self.current.files.iter().enumerate() {
            for f in files {
                edit.add_file(level, (**f).clone());
            }
        }
        edit.aux = self.aux.clone();
        self.manifest = LogWriter::new();
        self.manifest.add_record(&edit.encode());
        let bytes = self.manifest.take();
        fs.log_append(MANIFEST_LOG_ID, &bytes, IoKind::Meta)?;
        Ok(true)
    }

    /// The current version.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current)
    }

    /// Level parameters.
    pub fn params(&self) -> LevelParams {
        self.params
    }

    /// Allocates a fresh file id.
    pub fn new_file_id(&mut self) -> FileId {
        let id = self.next_file;
        self.next_file += 1;
        id
    }

    /// Last sequence number issued.
    pub fn last_sequence(&self) -> SequenceNumber {
        self.last_sequence
    }

    /// Advances the last sequence number.
    pub fn set_last_sequence(&mut self, seq: SequenceNumber) {
        debug_assert!(seq >= self.last_sequence);
        self.last_sequence = seq;
    }

    /// The WAL id whose writes are reflected in the current version.
    pub fn log_number(&self) -> FileId {
        self.log_number
    }

    /// Records the active WAL id.
    pub fn set_log_number(&mut self, id: FileId) {
        self.log_number = id;
    }

    /// Latest auxiliary subsystem blob recovered from or logged to the
    /// manifest (see [`VersionEdit::aux`]). `None` when no subsystem has
    /// ever checkpointed.
    pub fn aux(&self) -> Option<&[u8]> {
        self.aux.as_deref()
    }

    /// The level most in need of compaction and its score (>= 1.0 means
    /// a compaction is due).
    pub fn compaction_score(&self) -> (usize, f64) {
        let v = &self.current;
        let mut best = (
            0usize,
            v.level_file_count(0) as f64 / self.params.l0_trigger as f64,
        );
        for level in 1..self.params.num_levels - 1 {
            let score = v.level_bytes(level) as f64 / self.params.max_bytes(level) as f64;
            if score > best.1 {
                best = (level, score);
            }
        }
        best
    }

    /// Picks the next compaction, or `None` when nothing is due.
    ///
    /// `priority` (the SEALDB hook) scores a victim candidate given the
    /// next-level files its compaction would consume; the candidate with
    /// the highest non-zero score wins, otherwise the round-robin
    /// compaction pointer decides (LevelDB's policy).
    pub fn pick_compaction(&self, priority: Option<VictimPriority<'_>>) -> Option<Compaction> {
        let (level, score) = self.compaction_score();
        if score < 1.0 {
            return None;
        }
        let v = &self.current;
        let inputs0: Vec<FileMetaHandle> = if level == 0 {
            // Seed with the oldest flush and pull in transitive overlaps.
            let seed = v.files[0].iter().min_by_key(|f| f.id)?.clone();
            v.overlapping_files(0, user_key(&seed.smallest), user_key(&seed.largest))
        } else {
            let files = &v.files[level];
            debug_assert!(!files.is_empty());
            let chosen = self
                .pick_victim_by_priority(level, files, priority)
                .unwrap_or_else(|| self.pick_victim_round_robin(level, files));
            vec![files[chosen].clone()]
        };
        if inputs0.is_empty() {
            return None;
        }
        let (lo, hi) = range_of(&inputs0);
        let inputs1 = if level + 1 < self.params.num_levels {
            v.overlapping_files(level + 1, &lo, &hi)
        } else {
            Vec::new()
        };
        let grandparents = if level + 2 < self.params.num_levels {
            let mut all = inputs0.clone();
            all.extend(inputs1.iter().cloned());
            let (glo, ghi) = range_of(&all);
            v.overlapping_files(level + 2, &glo, &ghi)
        } else {
            Vec::new()
        };
        Some(Compaction {
            level,
            inputs: [inputs0, inputs1],
            grandparents,
        })
    }

    fn pick_victim_by_priority(
        &self,
        level: usize,
        files: &[FileMetaHandle],
        priority: Option<VictimPriority<'_>>,
    ) -> Option<usize> {
        let priority = priority?;
        if level + 1 >= self.params.num_levels {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (i, f) in files.iter().enumerate() {
            let overlapped = self.current.overlapping_files(
                level + 1,
                user_key(&f.smallest),
                user_key(&f.largest),
            );
            let score = priority(&overlapped);
            if score > 0 && best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i)
    }

    fn pick_victim_round_robin(&self, level: usize, files: &[FileMetaHandle]) -> usize {
        let ptr = &self.compact_pointer[level];
        if ptr.is_empty() {
            return 0;
        }
        files
            .iter()
            .position(|f| {
                crate::types::internal_compare(&f.largest, ptr) == std::cmp::Ordering::Greater
            })
            .unwrap_or(0)
    }
}

fn range_of(files: &[FileMetaHandle]) -> (Vec<u8>, Vec<u8>) {
    let mut lo = user_key(&files[0].smallest).to_vec();
    let mut hi = user_key(&files[0].largest).to_vec();
    for f in &files[1..] {
        if user_key(&f.smallest) < lo.as_slice() {
            lo = user_key(&f.smallest).to_vec();
        }
        if user_key(&f.largest) > hi.as_slice() {
            hi = user_key(&f.largest).to_vec();
        }
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use crate::version::edit::FileMetaData;
    use smr_sim::{Disk, Layout, TimeModel};

    const MB: u64 = 1 << 20;

    fn params() -> LevelParams {
        LevelParams {
            num_levels: 7,
            l0_trigger: 4,
            base_bytes: 10 * MB,
            multiplier: 10,
        }
    }

    fn fs() -> FileStore {
        let cap = 256 * MB;
        let disk = Disk::new(cap, Layout::Hdd, TimeModel::hdd_st1000dm003(cap));
        FileStore::new(disk, 16 * MB)
    }

    fn meta(id: u64, lo: &str, hi: &str, size: u64) -> FileMetaData {
        FileMetaData {
            id,
            size,
            smallest: make_internal_key(lo.as_bytes(), 100, ValueType::Value),
            largest: make_internal_key(hi.as_bytes(), 1, ValueType::Value),
            set_id: 0,
        }
    }

    #[test]
    fn max_bytes_grows_by_multiplier() {
        let p = params();
        assert_eq!(p.max_bytes(1), 10 * MB);
        assert_eq!(p.max_bytes(2), 100 * MB);
        assert_eq!(p.max_bytes(3), 1000 * MB);
    }

    #[test]
    fn create_apply_recover_roundtrip() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let id = vs.new_file_id();
        vs.set_last_sequence(999);
        let mut edit = VersionEdit::default();
        edit.add_file(1, meta(id, "a", "m", 5 * MB));
        vs.log_and_apply(&mut store, edit).unwrap();

        let mut edit2 = VersionEdit::default();
        let id2 = vs.new_file_id();
        edit2.add_file(1, meta(id2, "n", "z", 6 * MB));
        edit2
            .compact_pointers
            .push((1, make_internal_key(b"m", 1, ValueType::Value)));
        vs.log_and_apply(&mut store, edit2).unwrap();

        // Recover into a fresh set.
        let mut vs2 = VersionSet::new(params());
        vs2.recover(&mut store).unwrap();
        assert_eq!(vs2.last_sequence(), 999);
        assert_eq!(vs2.current().level_file_count(1), 2);
        assert_eq!(vs2.current().level_bytes(1), 11 * MB);
        let next = vs2.new_file_id();
        assert!(next > id2);
    }

    #[test]
    fn manifest_compaction_preserves_recovery() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        // Many edits: add then delete files so the log grows but the
        // live state stays small.
        for _i in 0..200u64 {
            let id = vs.new_file_id();
            let mut e = VersionEdit::default();
            e.add_file(1, meta(id, "a", "m", MB));
            vs.log_and_apply(&mut store, e).unwrap();
            let mut e = VersionEdit::default();
            e.delete_file(1, id);
            vs.log_and_apply(&mut store, e).unwrap();
        }
        let id_keep = vs.new_file_id();
        let mut e = VersionEdit::default();
        e.add_file(2, meta(id_keep, "a", "z", 3 * MB));
        e.compact_pointers
            .push((1, make_internal_key(b"m", 1, ValueType::Value)));
        vs.log_and_apply(&mut store, e).unwrap();
        vs.set_last_sequence(777);

        let before = store.log_len(MANIFEST_LOG_ID).unwrap();
        assert!(vs.maybe_compact_manifest(&mut store, 1024).unwrap());
        let after = store.log_len(MANIFEST_LOG_ID).unwrap();
        assert!(after < before / 4, "manifest shrank: {before} -> {after}");
        // Below the limit: no further rewrite.
        assert!(!vs.maybe_compact_manifest(&mut store, 1 << 20).unwrap());

        let mut vs2 = VersionSet::new(params());
        vs2.recover(&mut store).unwrap();
        assert_eq!(vs2.current().level_file_count(1), 0);
        assert_eq!(vs2.current().level_file_count(2), 1);
        assert_eq!(vs2.current().files[2][0].id, id_keep);
        assert!(vs2.new_file_id() > id_keep);
        // Compact pointer survives the rewrite.
        let mut e = VersionEdit::default();
        e.add_file(1, meta(900, "a", "f", 11 * MB));
        e.add_file(1, meta(901, "g", "p", 11 * MB));
        vs2.log_and_apply(&mut store, e).unwrap();
        let c = vs2.pick_compaction(None).unwrap();
        assert_eq!(c.inputs[0][0].id, 901, "pointer past 'm' picks file 901");
    }

    #[test]
    fn aux_blob_survives_recovery_and_manifest_compaction() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        assert!(vs.aux().is_none());
        // Two checkpoints: the latest blob wins.
        let e = VersionEdit {
            aux: Some(vec![1, 1, 1]),
            ..VersionEdit::default()
        };
        vs.log_and_apply(&mut store, e).unwrap();
        let e = VersionEdit {
            aux: Some(vec![9, 9]),
            ..VersionEdit::default()
        };
        vs.log_and_apply(&mut store, e).unwrap();
        assert_eq!(vs.aux(), Some(&[9u8, 9][..]));

        let mut vs2 = VersionSet::new(params());
        vs2.recover(&mut store).unwrap();
        assert_eq!(vs2.aux(), Some(&[9u8, 9][..]));

        // A manifest rewrite re-emits the blob in its snapshot record.
        for _ in 0..200u64 {
            let id = vs2.new_file_id();
            let mut e = VersionEdit::default();
            e.add_file(1, meta(id, "a", "m", MB));
            vs2.log_and_apply(&mut store, e).unwrap();
            let mut e = VersionEdit::default();
            e.delete_file(1, id);
            vs2.log_and_apply(&mut store, e).unwrap();
        }
        assert!(vs2.maybe_compact_manifest(&mut store, 1024).unwrap());
        let mut vs3 = VersionSet::new(params());
        vs3.recover(&mut store).unwrap();
        assert_eq!(vs3.aux(), Some(&[9u8, 9][..]));
    }

    #[test]
    fn recover_falls_back_on_corrupt_manifest_tail() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let id = vs.new_file_id();
        let mut edit = VersionEdit::default();
        edit.add_file(1, meta(id, "a", "m", MB));
        vs.log_and_apply(&mut store, edit).unwrap();
        // Append a record whose payload was mangled in flight: the CRC
        // check must reject it and recovery must stop there.
        let mut w = LogWriter::new();
        w.add_record(b"half-written version edit");
        let mut bytes = w.take();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        store
            .log_append(MANIFEST_LOG_ID, &bytes, IoKind::Meta)
            .unwrap();

        let mut vs2 = VersionSet::new(params());
        let rep = vs2.recover(&mut store).unwrap();
        assert_eq!(rep.edits_applied, 2, "create + one applied edit");
        assert_eq!(rep.records_dropped, 1);
        // The surviving prefix is the last consistent version.
        assert_eq!(vs2.current().level_file_count(1), 1);
        assert_eq!(vs2.last_sequence(), vs.last_sequence());
        assert!(vs2.new_file_id() > id);
        assert_eq!(store.disk().stats().faults.checksum_failures, 1);
    }

    #[test]
    fn recover_rejects_manifest_with_no_intact_edit() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        // Corrupt the very first record in place: zero intact edits.
        let data = store.log_read_all(MANIFEST_LOG_ID, IoKind::Meta).unwrap();
        let mut mangled = data.clone();
        let n = mangled.len();
        mangled[n - 1] ^= 0xFF;
        store.delete_log(MANIFEST_LOG_ID).unwrap();
        store.create_log(MANIFEST_LOG_ID).unwrap();
        store
            .log_append(MANIFEST_LOG_ID, &mangled, IoKind::Meta)
            .unwrap();

        let mut vs2 = VersionSet::new(params());
        let err = vs2.recover(&mut store).unwrap_err();
        assert!(matches!(err, crate::error::Error::Corruption(_)), "{err:?}");
    }

    #[test]
    fn deletion_applies() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let mut edit = VersionEdit::default();
        edit.add_file(1, meta(20, "a", "m", MB));
        edit.add_file(1, meta(21, "n", "z", MB));
        vs.log_and_apply(&mut store, edit).unwrap();
        let mut edit = VersionEdit::default();
        edit.delete_file(1, 20);
        vs.log_and_apply(&mut store, edit).unwrap();
        assert_eq!(vs.current().level_file_count(1), 1);
        assert_eq!(vs.current().files[1][0].id, 21);
    }

    #[test]
    fn no_compaction_when_small() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        assert!(vs.pick_compaction(None).is_none());
        let (_, score) = vs.compaction_score();
        assert!(score < 1.0);
    }

    #[test]
    fn l0_trigger_fires_and_gathers_overlaps() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let mut edit = VersionEdit::default();
        for i in 0..4 {
            edit.add_file(0, meta(20 + i, "a", "m", MB));
        }
        edit.add_file(1, meta(30, "c", "f", MB));
        edit.add_file(1, meta(31, "x", "z", MB));
        vs.log_and_apply(&mut store, edit).unwrap();
        let c = vs.pick_compaction(None).expect("L0 compaction due");
        assert_eq!(c.level, 0);
        assert_eq!(c.inputs[0].len(), 4);
        // Only the overlapping L1 file joins.
        assert_eq!(c.inputs[1].len(), 1);
        assert_eq!(c.inputs[1][0].id, 30);
        assert_eq!(c.num_input_files(), 5);
        assert_eq!(c.input_bytes(), 5 * MB);
    }

    #[test]
    fn size_trigger_with_round_robin_pointer() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let mut edit = VersionEdit::default();
        // L1 over its 10 MB budget.
        edit.add_file(1, meta(20, "a", "f", 6 * MB));
        edit.add_file(1, meta(21, "g", "p", 6 * MB));
        edit.add_file(2, meta(30, "a", "e", MB));
        edit.add_file(2, meta(31, "h", "k", MB));
        // Pointer past file 20's largest: the picker must take file 21.
        edit.compact_pointers
            .push((1, make_internal_key(b"f", 0, ValueType::Deletion)));
        vs.log_and_apply(&mut store, edit).unwrap();
        let c = vs.pick_compaction(None).expect("size compaction due");
        assert_eq!(c.level, 1);
        assert_eq!(c.inputs[0].len(), 1);
        assert_eq!(c.inputs[0][0].id, 21);
        assert_eq!(c.inputs[1].len(), 1);
        assert_eq!(c.inputs[1][0].id, 31);
    }

    #[test]
    fn priority_hook_overrides_round_robin() {
        let mut store = fs();
        let mut vs = VersionSet::new(params());
        vs.create(&mut store).unwrap();
        let mut edit = VersionEdit::default();
        edit.add_file(1, meta(20, "a", "f", 6 * MB));
        edit.add_file(1, meta(21, "g", "p", 6 * MB));
        edit.add_file(2, meta(30, "a", "e", MB));
        edit.add_file(2, meta(31, "h", "k", MB));
        vs.log_and_apply(&mut store, edit).unwrap();
        // Score victims by whether their overlapped set contains file 31.
        let prio = |overlapped: &[FileMetaHandle]| -> u64 {
            overlapped.iter().filter(|f| f.id == 31).count() as u64
        };
        let c = vs.pick_compaction(Some(&prio)).unwrap();
        assert_eq!(
            c.inputs[0][0].id, 21,
            "priority picked the set with file 31"
        );
    }

    #[test]
    fn user_range_spans_all_inputs() {
        let c = Compaction {
            level: 1,
            inputs: [
                vec![Arc::new(meta(1, "d", "k", 1))],
                vec![
                    Arc::new(meta(2, "a", "e", 1)),
                    Arc::new(meta(3, "j", "q", 1)),
                ],
            ],
            grandparents: Vec::new(),
        };
        let (lo, hi) = c.user_range();
        assert_eq!(lo, b"a");
        assert_eq!(hi, b"q");
    }
}
