//! An immutable snapshot of the LSM-tree's file layout: which SSTables
//! live in which level. Level 0 files may overlap each other (they are
//! raw memtable flushes); deeper levels are sorted and disjoint.

use crate::types::{internal_compare, user_key};
use crate::version::edit::FileMetaHandle;
use std::cmp::Ordering;

/// One immutable layout snapshot.
#[derive(Clone, Debug)]
pub struct Version {
    /// Files per level; level 0 ordered newest-first (descending id),
    /// deeper levels ordered by smallest key.
    pub files: Vec<Vec<FileMetaHandle>>,
}

impl Version {
    /// Creates an empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Self {
        Version {
            files: vec![Vec::new(); num_levels],
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.files.len()
    }

    /// Total bytes in a level.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.files[level].iter().map(|f| f.size).sum()
    }

    /// Number of files in a level.
    pub fn level_file_count(&self, level: usize) -> usize {
        self.files[level].len()
    }

    /// Total files across all levels.
    pub fn total_files(&self) -> usize {
        self.files.iter().map(|l| l.len()).sum()
    }

    /// Total bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        (0..self.files.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// Whether a file's user-key range intersects `[begin, end]`.
    fn file_overlaps_range(f: &FileMetaHandle, begin: &[u8], end: &[u8]) -> bool {
        user_key(&f.largest) >= begin && user_key(&f.smallest) <= end
    }

    /// Files in `level` whose user-key ranges intersect `[begin, end]`.
    /// For level 0 the range is expanded transitively (overlapping L0
    /// files must compact together, like LevelDB's `GetOverlappingInputs`).
    pub fn overlapping_files(&self, level: usize, begin: &[u8], end: &[u8]) -> Vec<FileMetaHandle> {
        let mut begin = begin.to_vec();
        let mut end = end.to_vec();
        loop {
            let hits: Vec<FileMetaHandle> = self.files[level]
                .iter()
                .filter(|f| Self::file_overlaps_range(f, &begin, &end))
                .cloned()
                .collect();
            if level > 0 {
                return hits;
            }
            // L0: if a hit extends the range, restart with the wider one.
            let mut grew = false;
            for f in &hits {
                if user_key(&f.smallest) < begin.as_slice() {
                    begin = user_key(&f.smallest).to_vec();
                    grew = true;
                }
                if user_key(&f.largest) > end.as_slice() {
                    end = user_key(&f.largest).to_vec();
                    grew = true;
                }
            }
            if !grew {
                return hits;
            }
        }
    }

    /// Candidate files for a point lookup, in the order they must be
    /// consulted (L0 newest-first, then one file per deeper level).
    pub fn files_for_get(&self, ukey: &[u8]) -> Vec<(usize, FileMetaHandle)> {
        let mut out = Vec::new();
        // L0: every file whose range covers the key, newest first.
        let mut l0: Vec<FileMetaHandle> = self.files[0]
            .iter()
            .filter(|f| user_key(&f.smallest) <= ukey && ukey <= user_key(&f.largest))
            .cloned()
            .collect();
        l0.sort_by_key(|f| std::cmp::Reverse(f.id));
        out.extend(l0.into_iter().map(|f| (0, f)));
        // Deeper levels: binary search the single candidate.
        for level in 1..self.files.len() {
            if let Some(f) = self.find_file(level, ukey) {
                if user_key(&f.smallest) <= ukey {
                    out.push((level, f));
                }
            }
        }
        out
    }

    /// Binary search for the first file in a sorted level whose largest
    /// user key is >= `ukey`.
    pub fn find_file(&self, level: usize, ukey: &[u8]) -> Option<FileMetaHandle> {
        let files = &self.files[level];
        let idx = files.partition_point(|f| user_key(&f.largest) < ukey);
        files.get(idx).cloned()
    }

    /// Whether any file in levels strictly deeper than `level` overlaps
    /// the user-key range (used to decide tombstone dropping).
    pub fn range_overlaps_deeper(&self, level: usize, begin: &[u8], end: &[u8]) -> bool {
        (level + 1..self.files.len()).any(|l| !self.overlapping_files(l, begin, end).is_empty())
    }

    /// Sanity check: deeper levels sorted by smallest key and disjoint.
    pub fn check_invariants(&self) -> Result<(), String> {
        for level in 1..self.files.len() {
            let files = &self.files[level];
            for w in files.windows(2) {
                if internal_compare(&w[0].largest, &w[1].smallest) != Ordering::Less {
                    return Err(format!(
                        "level {level}: files {} and {} overlap or are unsorted",
                        w[0].id, w[1].id
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use crate::version::edit::FileMetaData;
    use std::sync::Arc;

    fn meta(id: u64, lo: &str, hi: &str) -> FileMetaHandle {
        Arc::new(FileMetaData {
            id,
            size: 100,
            smallest: make_internal_key(lo.as_bytes(), 100, ValueType::Value),
            largest: make_internal_key(hi.as_bytes(), 1, ValueType::Value),
            set_id: 0,
        })
    }

    fn version() -> Version {
        let mut v = Version::empty(7);
        // L0: overlapping flushes.
        v.files[0] = vec![meta(10, "c", "m"), meta(11, "a", "f")];
        // L1: sorted, disjoint.
        v.files[1] = vec![meta(5, "a", "c"), meta(6, "e", "k"), meta(7, "p", "z")];
        v
    }

    #[test]
    fn level_accounting() {
        let v = version();
        assert_eq!(v.level_file_count(0), 2);
        assert_eq!(v.level_bytes(1), 300);
        assert_eq!(v.total_files(), 5);
        assert_eq!(v.total_bytes(), 500);
        v.check_invariants().unwrap();
    }

    #[test]
    fn overlapping_in_sorted_level() {
        let v = version();
        let hits = v.overlapping_files(1, b"f", b"q");
        let ids: Vec<u64> = hits.iter().map(|f| f.id).collect();
        assert_eq!(ids, vec![6, 7]);
        assert!(v.overlapping_files(1, b"l", b"o").is_empty());
    }

    #[test]
    fn l0_overlap_expands_transitively() {
        let v = version();
        // "b" hits file 11 (a-f), which overlaps file 10 (c-m): both join.
        let hits = v.overlapping_files(0, b"b", b"b");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn files_for_get_order() {
        let v = version();
        let cands = v.files_for_get(b"e");
        // L0 newest (id 11) first, then id 10, then L1 file 6.
        let ids: Vec<u64> = cands.iter().map(|(_, f)| f.id).collect();
        assert_eq!(ids, vec![11, 10, 6]);
        // Key outside every range: no candidates.
        let cands = v.files_for_get(b"n");
        assert!(cands.is_empty());
    }

    #[test]
    fn deeper_overlap_check() {
        let v = version();
        assert!(v.range_overlaps_deeper(0, b"a", b"b"));
        assert!(!v.range_overlaps_deeper(1, b"a", b"z"));
        assert!(!v.range_overlaps_deeper(0, b"l", b"o"));
    }

    #[test]
    fn invariant_violation_detected() {
        let mut v = Version::empty(3);
        v.files[1] = vec![meta(1, "a", "m"), meta(2, "k", "z")];
        assert!(v.check_invariants().is_err());
    }
}
