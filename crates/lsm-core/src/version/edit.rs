//! Version edits: the deltas recorded in the manifest log. A version edit
//! describes file additions/deletions per level plus bookkeeping counters,
//! exactly LevelDB's `VersionEdit` with an extra `set_id` per file for the
//! SEALDB set bookkeeping.

use crate::error::{corruption, Result};
use crate::types::FileId;
use crate::util::coding::{get_length_prefixed, get_varint64, put_length_prefixed, put_varint64};
use std::sync::Arc;

/// Metadata of one SSTable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMetaData {
    /// File id.
    pub id: FileId,
    /// File size in bytes.
    pub size: u64,
    /// Smallest internal key in the table.
    pub smallest: Vec<u8>,
    /// Largest internal key in the table.
    pub largest: Vec<u8>,
    /// Set (on-disk region) this file belongs to; 0 = no set.
    pub set_id: u64,
}

/// A delta against the current version.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VersionEdit {
    /// New WAL id; logs older than this are obsolete after recovery.
    pub log_number: Option<u64>,
    /// Next file id counter.
    pub next_file: Option<u64>,
    /// Last sequence number.
    pub last_sequence: Option<u64>,
    /// Compaction pointers (level, internal key).
    pub compact_pointers: Vec<(usize, Vec<u8>)>,
    /// Files removed (level, file id).
    pub deleted: Vec<(usize, FileId)>,
    /// Files added (level, metadata).
    pub added: Vec<(usize, FileMetaData)>,
    /// Opaque auxiliary subsystem state carried alongside the file
    /// layout (the value log checkpoints its segment directory here).
    /// The latest blob wins; recovery hands it back verbatim.
    pub aux: Option<Vec<u8>>,
}

const TAG_LOG_NUMBER: u64 = 1;
const TAG_NEXT_FILE: u64 = 2;
const TAG_LAST_SEQUENCE: u64 = 3;
const TAG_COMPACT_POINTER: u64 = 4;
const TAG_DELETED_FILE: u64 = 5;
const TAG_NEW_FILE: u64 = 6;
const TAG_AUX: u64 = 7;

impl VersionEdit {
    /// Serialises the edit for the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut dst = Vec::new();
        if let Some(v) = self.log_number {
            put_varint64(&mut dst, TAG_LOG_NUMBER);
            put_varint64(&mut dst, v);
        }
        if let Some(v) = self.next_file {
            put_varint64(&mut dst, TAG_NEXT_FILE);
            put_varint64(&mut dst, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint64(&mut dst, TAG_LAST_SEQUENCE);
            put_varint64(&mut dst, v);
        }
        for (level, key) in &self.compact_pointers {
            put_varint64(&mut dst, TAG_COMPACT_POINTER);
            put_varint64(&mut dst, *level as u64);
            put_length_prefixed(&mut dst, key);
        }
        for (level, id) in &self.deleted {
            put_varint64(&mut dst, TAG_DELETED_FILE);
            put_varint64(&mut dst, *level as u64);
            put_varint64(&mut dst, *id);
        }
        for (level, f) in &self.added {
            put_varint64(&mut dst, TAG_NEW_FILE);
            put_varint64(&mut dst, *level as u64);
            put_varint64(&mut dst, f.id);
            put_varint64(&mut dst, f.size);
            put_varint64(&mut dst, f.set_id);
            put_length_prefixed(&mut dst, &f.smallest);
            put_length_prefixed(&mut dst, &f.largest);
        }
        if let Some(blob) = &self.aux {
            put_varint64(&mut dst, TAG_AUX);
            put_length_prefixed(&mut dst, blob);
        }
        dst
    }

    /// Parses a manifest record.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        fn take_u64(src: &mut &[u8]) -> Result<u64> {
            match get_varint64(src) {
                Some((v, n)) => {
                    *src = &src[n..];
                    Ok(v)
                }
                None => corruption(format!(
                    "truncated varint in version edit ({} byte(s) left in record)",
                    src.len()
                )),
            }
        }
        fn take_bytes(src: &mut &[u8]) -> Result<Vec<u8>> {
            match get_length_prefixed(src) {
                Some((s, n)) => {
                    let v = s.to_vec();
                    *src = &src[n..];
                    Ok(v)
                }
                None => corruption(format!(
                    "truncated length-prefixed slice in version edit ({} byte(s) left in record)",
                    src.len()
                )),
            }
        }
        while !src.is_empty() {
            let tag = take_u64(&mut src)?;
            match tag {
                TAG_LOG_NUMBER => edit.log_number = Some(take_u64(&mut src)?),
                TAG_NEXT_FILE => edit.next_file = Some(take_u64(&mut src)?),
                TAG_LAST_SEQUENCE => edit.last_sequence = Some(take_u64(&mut src)?),
                TAG_COMPACT_POINTER => {
                    let level = take_u64(&mut src)? as usize;
                    let key = take_bytes(&mut src)?;
                    edit.compact_pointers.push((level, key));
                }
                TAG_DELETED_FILE => {
                    let level = take_u64(&mut src)? as usize;
                    let id = take_u64(&mut src)?;
                    edit.deleted.push((level, id));
                }
                TAG_NEW_FILE => {
                    let level = take_u64(&mut src)? as usize;
                    let id = take_u64(&mut src)?;
                    let size = take_u64(&mut src)?;
                    let set_id = take_u64(&mut src)?;
                    let smallest = take_bytes(&mut src)?;
                    let largest = take_bytes(&mut src)?;
                    edit.added.push((
                        level,
                        FileMetaData {
                            id,
                            size,
                            smallest,
                            largest,
                            set_id,
                        },
                    ));
                }
                TAG_AUX => edit.aux = Some(take_bytes(&mut src)?),
                _ => return corruption(format!("unknown version edit tag {tag}")),
            }
        }
        Ok(edit)
    }

    /// Convenience: records a file addition.
    pub fn add_file(&mut self, level: usize, meta: FileMetaData) {
        self.added.push((level, meta));
    }

    /// Convenience: records a file deletion.
    pub fn delete_file(&mut self, level: usize, id: FileId) {
        self.deleted.push((level, id));
    }
}

/// Shared pointer to immutable file metadata.
pub type FileMetaHandle = Arc<FileMetaData>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn meta(id: u64) -> FileMetaData {
        FileMetaData {
            id,
            size: id * 1000,
            smallest: make_internal_key(format!("a{id}").as_bytes(), 1, ValueType::Value),
            largest: make_internal_key(format!("z{id}").as_bytes(), 9, ValueType::Value),
            set_id: id / 2,
        }
    }

    #[test]
    fn empty_edit_roundtrip() {
        let e = VersionEdit::default();
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn full_edit_roundtrip() {
        let mut e = VersionEdit {
            log_number: Some(7),
            next_file: Some(42),
            last_sequence: Some(123456789),
            ..Default::default()
        };
        e.compact_pointers
            .push((2, make_internal_key(b"ptr", 5, ValueType::Value)));
        e.delete_file(1, 10);
        e.delete_file(2, 11);
        e.add_file(1, meta(20));
        e.add_file(3, meta(21));
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn aux_blob_roundtrip() {
        let mut e = VersionEdit {
            aux: Some(vec![1, 2, 3, 0xFF, 0]),
            ..Default::default()
        };
        e.add_file(1, meta(20));
        assert_eq!(VersionEdit::decode(&e.encode()).unwrap(), e);
        // Empty blob is distinguishable from no blob.
        let empty = VersionEdit {
            aux: Some(Vec::new()),
            ..Default::default()
        };
        assert_eq!(VersionEdit::decode(&empty.encode()).unwrap(), empty);
        assert_ne!(empty, VersionEdit::default());
    }

    #[test]
    fn truncated_rejected() {
        let mut e = VersionEdit::default();
        e.add_file(1, meta(20));
        let enc = e.encode();
        assert!(VersionEdit::decode(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bad = Vec::new();
        put_varint64(&mut bad, 99);
        assert!(VersionEdit::decode(&bad).is_err());
    }
}
