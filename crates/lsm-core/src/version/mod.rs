//! Versioned file-layout metadata: edits, versions, and the version set
//! with manifest logging and compaction picking.

/// Manifest edit records (file adds/deletes, counters).
pub mod edit;
/// The version set: manifest log, recovery, compaction picking.
pub mod set;
#[allow(clippy::module_inception)]
/// One immutable snapshot of the file layout per level.
pub mod version;

pub use edit::{FileMetaData, FileMetaHandle, VersionEdit};
pub use set::{
    Compaction, LevelParams, ManifestRecovery, VersionSet, FSMETA_LOG_ID, MANIFEST_LOG_ID,
};
pub use version::Version;
