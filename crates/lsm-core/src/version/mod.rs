//! Versioned file-layout metadata: edits, versions, and the version set
//! with manifest logging and compaction picking.

pub mod edit;
pub mod set;
#[allow(clippy::module_inception)]
pub mod version;

pub use edit::{FileMetaData, FileMetaHandle, VersionEdit};
pub use set::{Compaction, LevelParams, ManifestRecovery, VersionSet, FSMETA_LOG_ID, MANIFEST_LOG_ID};
pub use version::Version;
