//! Integer coding primitives: fixed-width little-endian and LEB128-style
//! varints, the same wire formats LevelDB uses throughout its files.

/// Appends a little-endian u32.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decodes a little-endian u32 from the first 4 bytes of `src`.
pub fn decode_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("4 bytes"))
}

/// Decodes a little-endian u64 from the first 8 bytes of `src`.
pub fn decode_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("8 bytes"))
}

/// Appends a varint-encoded u32 (1-5 bytes).
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Appends a varint-encoded u64 (1-10 bytes).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a varint u64 from the front of `src`, returning the value and
/// the number of bytes consumed, or `None` on truncation/overflow.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(10) {
        result |= u64::from(byte & 0x7f) << (7 * i);
        if byte < 0x80 {
            // Reject non-canonical 10th bytes that would overflow.
            if i == 9 && byte > 1 {
                return None;
            }
            return Some((result, i + 1));
        }
    }
    None
}

/// Decodes a varint u32 from the front of `src`.
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    u32::try_from(v).ok().map(|v| (v, n))
}

/// Appends a length-prefixed byte slice (varint length + bytes).
pub fn put_length_prefixed(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint64(dst, slice.len() as u64);
    dst.extend_from_slice(slice);
}

/// Reads a length-prefixed slice from the front of `src`, returning the
/// slice and total bytes consumed.
pub fn get_length_prefixed(src: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint64(src)?;
    let len = usize::try_from(len).ok()?;
    let end = n.checked_add(len)?;
    if end > src.len() {
        return None;
    }
    Some((&src[n..end], end))
}

/// Number of bytes `put_varint64` would emit for `v`.
pub fn varint_length(v: u64) -> usize {
    let bits = 64 - v.max(1).leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xDEADBEEF);
        put_fixed64(&mut buf, 0x0123456789ABCDEF);
        assert_eq!(decode_fixed32(&buf), 0xDEADBEEF);
        assert_eq!(decode_fixed64(&buf[4..]), 0x0123456789ABCDEF);
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            (1 << 32) - 1,
            1 << 32,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (back, n) = get_varint64(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, varint_length(v));
        }
    }

    #[test]
    fn varint_truncated() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        assert!(get_varint64(&buf[..buf.len() - 1]).is_none());
        assert!(get_varint64(&[]).is_none());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 continuation bytes with a large final byte overflow u64.
        let bad = [0xFFu8; 10];
        assert!(get_varint64(&bad).is_none());
    }

    #[test]
    fn varint32_rejects_too_large() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let (s1, n1) = get_length_prefixed(&buf).unwrap();
        assert_eq!(s1, b"hello");
        let (s2, n2) = get_length_prefixed(&buf[n1..]).unwrap();
        assert_eq!(s2, b"");
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn length_prefixed_truncated() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        assert!(get_length_prefixed(&buf[..3]).is_none());
    }
}
