//! Bloom filter over user keys, one full filter per SSTable (RocksDB-style
//! full filters rather than LevelDB's per-2KB filters; the lookup
//! behaviour the paper's experiments depend on is the same: point reads
//! skip tables that cannot contain the key).
//!
//! Uses double hashing (Kirsch–Mitzenmacher) over a 64-bit FNV-1a base
//! hash, `k` probes derived from the configured bits per key.

/// Builds and queries a bloom filter.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn probes(bits_per_key: usize) -> u32 {
    // k = bits_per_key * ln(2), clamped like LevelDB.
    ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30)
}

impl BloomFilter {
    /// Builds a filter for `keys` with `bits_per_key` bits of budget each.
    pub fn build<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        let n_bits = (keys.len() * bits_per_key).max(64);
        let n_bytes = n_bits.div_ceil(8);
        let n_bits = (n_bytes * 8) as u64;
        let mut bits = vec![0u8; n_bytes];
        let k = probes(bits_per_key);
        for key in keys {
            let mut h = fnv1a64(key.as_ref());
            let delta = h.rotate_right(17) | 1;
            for _ in 0..k {
                let pos = (h % n_bits) as usize;
                bits[pos / 8] |= 1 << (pos % 8);
                h = h.wrapping_add(delta);
            }
        }
        BloomFilter { bits, k }
    }

    /// Reconstructs a filter from its serialised form.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let (&k, bits) = data.split_last()?;
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: bits.to_vec(),
            k: u32::from(k),
        })
    }

    /// Serialises the filter (bit array + probe count byte).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.bits.clone();
        out.push(self.k as u8);
        out
    }

    /// Whether the key *may* be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let n_bits = (self.bits.len() * 8) as u64;
        if n_bits == 0 {
            return true;
        }
        let mut h = fnv1a64(key);
        let delta = h.rotate_right(17) | 1;
        for _ in 0..self.k {
            let pos = (h % n_bits) as usize;
            if self.bits[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }

    /// Size of the encoded filter in bytes.
    pub fn encoded_len(&self) -> usize {
        self.bits.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:08}").into_bytes()
    }

    #[test]
    fn empty_filter() {
        let f = BloomFilter::build::<&[u8]>(&[], 10);
        // An empty filter simply never matches... but must not panic.
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn no_false_negatives() {
        let keys: Vec<Vec<u8>> = (0..2000).map(key).collect();
        let f = BloomFilter::build(&keys, 10);
        for k in &keys {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let keys: Vec<Vec<u8>> = (0..10_000).map(key).collect();
        let f = BloomFilter::build(&keys, 10);
        let mut fp = 0;
        let trials = 10_000;
        for i in 0..trials {
            if f.may_contain(&key(1_000_000 + i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / trials as f64;
        // 10 bits/key gives ~1% theoretically; allow generous slack.
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn encode_decode_roundtrip() {
        let keys: Vec<Vec<u8>> = (0..100).map(key).collect();
        let f = BloomFilter::build(&keys, 10);
        let enc = f.encode();
        assert_eq!(enc.len(), f.encoded_len());
        let g = BloomFilter::decode(&enc).unwrap();
        for k in &keys {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0]).is_none()); // k = 0
        assert!(BloomFilter::decode(&[1, 2, 3, 200]).is_none()); // k = 200
    }
}
