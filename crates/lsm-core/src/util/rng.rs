//! A tiny deterministic xorshift64* RNG for internal randomness (skiplist
//! heights). Keeping this in-crate (instead of `rand`) makes the engine's
//! behaviour bit-reproducible across dependency upgrades — important for
//! the paper's deterministic figure regeneration.

/// xorshift64* generator.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a non-zero seed (zero is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift reduction; bias is negligible for our uses.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// True with probability `1/n`.
    pub fn one_in(&mut self, n: u64) -> bool {
        self.next_below(n) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = XorShift64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn one_in_roughly_calibrated() {
        let mut r = XorShift64::new(99);
        let hits = (0..40_000).filter(|_| r.one_in(4)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((0.22..0.28).contains(&rate), "rate {rate}");
    }
}
