//! CRC-32C (Castagnoli) with LevelDB's masking, used by the WAL and the
//! SSTable block trailers. Software implementation with a 4-bit-sliced
//! lookup table built at first use.

/// Castagnoli polynomial, reflected.
const POLY: u32 = 0x82F63B78;

fn table() -> &'static [[u32; 256]; 4] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Box<[[u32; 256]; 4]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u32; 256]; 4]);
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            t[0][i as usize] = crc;
        }
        for i in 0..256usize {
            for s in 1..4usize {
                t[s][i] = (t[s - 1][i] >> 8) ^ t[0][(t[s - 1][i] & 0xFF) as usize];
            }
        }
        t
    })
}

/// CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a running CRC-32C with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let v = crc ^ u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        crc = t[3][(v & 0xFF) as usize]
            ^ t[2][((v >> 8) & 0xFF) as usize]
            ^ t[1][((v >> 16) & 0xFF) as usize]
            ^ t[0][(v >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const MASK_DELTA: u32 = 0xa282ead8;

/// LevelDB's CRC masking: stored CRCs are masked so that computing the
/// CRC of a string containing embedded CRCs stays well-behaved.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vectors() {
        // From RFC 3720 (iSCSI) test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A9136AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD794E);
        assert_eq!(crc32c(b"123456789"), 0xE3069283);
    }

    #[test]
    fn extend_equals_whole() {
        let data = b"hello world, this is a crc test vector";
        let whole = crc32c(data);
        let split = extend(crc32c(&data[..10]), &data[10..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn mask_roundtrip() {
        for crc in [0u32, 1, 0xDEADBEEF, u32::MAX] {
            assert_eq!(unmask(mask(crc)), crc);
            assert_ne!(mask(crc), crc, "mask must change the value");
        }
    }

    #[test]
    fn different_data_different_crc() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(b"ab"), crc32c(b"ba"));
    }
}
