//! Internal utilities: wire coding, checksums, bloom filters, RNG.

pub mod bloom;
pub mod coding;
pub mod crc32c;
pub mod rng;
