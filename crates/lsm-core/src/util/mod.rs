//! Internal utilities: wire coding, checksums, bloom filters, RNG.

/// LevelDB-compatible bloom filter.
pub mod bloom;
/// Varint and fixed-width little-endian wire coding.
pub mod coding;
/// CRC32C (Castagnoli) with LevelDB's mask/unmask.
pub mod crc32c;
/// Seeded xorshift64* RNG for deterministic height draws.
pub mod rng;
