//! Capacity-bounded LRU caches: a generic byte-charged LRU used for both
//! the block cache (data blocks by (file, offset)) and the table cache
//! (open table readers by file id). Mirrors LevelDB's two caches.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

#[derive(Debug)]
struct EntryMeta<V> {
    value: Arc<V>,
    charge: u64,
    generation: u64,
}

/// A least-recently-used cache with a byte budget. Recency is tracked with
/// a generation queue and lazy deletion, so hits are O(log n) amortised.
/// Keyed by `Ord` rather than `Hash` so iteration (and therefore any
/// exported state derived from it) has a defined order.
#[derive(Debug)]
pub struct LruCache<K: Ord + Clone, V> {
    map: BTreeMap<K, EntryMeta<V>>,
    order: VecDeque<(K, u64)>,
    capacity: u64,
    used: u64,
    next_gen: u64,
    hits: u64,
    misses: u64,
}

impl<K: Ord + Clone, V> LruCache<K, V> {
    /// Creates a cache holding up to `capacity` charged bytes.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            used: 0,
            next_gen: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &K) {
        let generation = self.next_gen;
        self.next_gen += 1;
        if let Some(meta) = self.map.get_mut(key) {
            meta.generation = generation;
        }
        self.order.push_back((key.clone(), generation));
        self.maybe_compact_order();
    }

    /// Bounds the lazy-deletion queue to O(map.len()): every mutation that
    /// can leave a stale queue entry behind (touch, insert, remove) must
    /// call this, or churn below the byte budget grows `order` without
    /// bound.
    fn maybe_compact_order(&mut self) {
        if self.order.len() > 4 * (self.map.len() + 1) {
            self.compact_order();
        }
    }

    fn compact_order(&mut self) {
        let map = &self.map;
        self.order
            .retain(|(k, generation)| map.get(k).is_some_and(|m| m.generation == *generation));
    }

    /// Looks up a key, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<Arc<V>> {
        if let Some(meta) = self.map.get(key) {
            let v = Arc::clone(&meta.value);
            self.touch(key);
            self.hits += 1;
            Some(v)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a value with an explicit byte charge, evicting LRU entries
    /// to respect the budget.
    pub fn insert(&mut self, key: K, value: Arc<V>, charge: u64) {
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.charge;
        }
        let generation = self.next_gen;
        self.next_gen += 1;
        self.order.push_back((key.clone(), generation));
        self.map.insert(
            key,
            EntryMeta {
                value,
                charge,
                generation,
            },
        );
        self.used += charge;
        self.evict();
        self.maybe_compact_order();
    }

    fn evict(&mut self) {
        while self.used > self.capacity && self.map.len() > 1 {
            match self.order.pop_front() {
                Some((k, generation)) => {
                    // A queue entry is authoritative only if its generation
                    // still matches the map's: that means the entry is live
                    // and this is its most recent recency record.
                    let live = self.map.get(&k).is_some_and(|m| m.generation == generation);
                    if live {
                        let meta = self.map.remove(&k).expect("entry just observed");
                        self.used -= meta.charge;
                    }
                }
                None => break,
            }
        }
    }

    /// Removes a key (e.g. when the file is deleted). The stale queue
    /// entry is reclaimed by the bounded compaction.
    pub fn remove(&mut self, key: &K) {
        if let Some(meta) = self.map.remove(key) {
            self.used -= meta.charge;
        }
        self.maybe_compact_order();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Charged bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// (hits, misses) counters.
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drops everything, including the hit/miss counters: a cleared cache
    /// (reopen, crash restore) starts a fresh hit-ratio window, so stale
    /// counts cannot skew ratios reported after the clear.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_miss_then_hit() {
        let mut c: LruCache<u32, String> = LruCache::new(100);
        assert!(c.get(&1).is_none());
        c.insert(1, Arc::new("one".into()), 10);
        assert_eq!(*c.get(&1).unwrap(), "one");
        assert_eq!(c.hit_stats(), (1, 1));
    }

    #[test]
    fn eviction_respects_budget() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        for i in 0..10 {
            c.insert(i, Arc::new(i), 10);
        }
        assert!(c.used_bytes() <= 30);
        assert!(c.len() <= 3);
        // Newest entries survive.
        assert!(c.get(&9).is_some());
        assert!(c.get(&0).is_none());
    }

    #[test]
    fn recency_protects_hot_entries() {
        let mut c: LruCache<u32, u32> = LruCache::new(30);
        c.insert(1, Arc::new(1), 10);
        c.insert(2, Arc::new(2), 10);
        c.insert(3, Arc::new(3), 10);
        // Touch 1 so it becomes most recent.
        assert!(c.get(&1).is_some());
        c.insert(4, Arc::new(4), 10); // evicts 2, the LRU
        assert!(c.get(&1).is_some());
        assert!(c.get(&2).is_none());
        assert!(c.get(&3).is_some());
    }

    #[test]
    fn reinsert_updates_charge() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, Arc::new(1), 10);
        c.insert(1, Arc::new(2), 50);
        assert_eq!(c.used_bytes(), 50);
        assert_eq!(*c.get(&1).unwrap(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, Arc::new(1), 10);
        c.insert(2, Arc::new(2), 10);
        c.remove(&1);
        assert_eq!(c.used_bytes(), 10);
        assert!(c.get(&1).is_none());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn oversized_entry_keeps_at_least_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(5);
        c.insert(1, Arc::new(1), 100);
        // Budget exceeded but the single entry stays usable.
        assert!(c.get(&1).is_some());
        c.insert(2, Arc::new(2), 100);
        assert!(c.get(&2).is_some());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn hit_storm_does_not_leak_order_queue() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, Arc::new(1), 10);
        for _ in 0..10_000 {
            c.get(&1);
        }
        assert!(c.order.len() < 100);
    }

    #[test]
    fn insert_remove_churn_does_not_leak_order_queue() {
        // The table-cache pattern: compactions open (insert) and delete
        // (remove) files while staying below the byte budget, so eviction
        // never runs. Pre-fix, only `touch` compacted the queue, and this
        // loop grew `order` to 20_000 entries.
        let mut c: LruCache<u32, u32> = LruCache::new(u64::MAX);
        for i in 0..10_000u32 {
            c.insert(i, Arc::new(i), 1);
            c.remove(&i);
        }
        assert!(c.is_empty());
        assert!(
            c.order.len() <= 4 * (c.map.len() + 1),
            "order queue leaked: {} entries for {} live",
            c.order.len(),
            c.map.len()
        );
    }

    #[test]
    fn clear_resets_hit_stats() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, Arc::new(1), 10);
        c.get(&1);
        c.get(&2);
        assert_eq!(c.hit_stats(), (1, 1));
        c.clear();
        // A cleared cache starts a fresh hit-ratio window.
        assert_eq!(c.hit_stats(), (0, 0));
        c.get(&1);
        assert_eq!(c.hit_stats(), (0, 1));
    }

    /// Seeded xorshift64* so the property test is deterministic without
    /// external crates (same idiom as `tests/prop_engine.rs`).
    struct XorShift64(u64);

    impl XorShift64 {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    #[test]
    fn property_order_queue_stays_linear_in_live_entries() {
        // Invariant: after every operation, order.len() <= 4*(map.len()+1)
        // + 1 slack for the entry just pushed before compaction ran.
        // Exercised under arbitrary interleavings of insert/get/remove
        // across several seeds, key ranges and budgets.
        for seed in [1u64, 0xDEADBEEF, 0x5EA1DB, 42, 7_777_777] {
            let mut rng = XorShift64(seed);
            let budget = 1 + rng.next() % 400;
            let key_space = 1 + (rng.next() % 64) as u32;
            let mut c: LruCache<u32, u32> = LruCache::new(budget);
            for step in 0..5_000u32 {
                let key = (rng.next() as u32) % key_space;
                match rng.next() % 3 {
                    0 => c.insert(key, Arc::new(step), 1 + rng.next() % 32),
                    1 => {
                        c.get(&key);
                    }
                    _ => c.remove(&key),
                }
                assert!(
                    c.order.len() <= 4 * (c.map.len() + 1),
                    "seed {seed} step {step}: order {} vs live {}",
                    c.order.len(),
                    c.map.len()
                );
                assert!(c.map.len() <= key_space as usize);
            }
        }
    }
}
