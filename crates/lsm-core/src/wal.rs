//! Write-ahead log, LevelDB's record format: the log is a sequence of
//! 32 KiB blocks; each record is
//! `masked_crc32c(4) | length(2, LE) | type(1) | payload`, where type is
//! FULL or a FIRST/MIDDLE.../LAST fragment chain for records spanning
//! blocks. Blocks with fewer than 7 trailing bytes are zero-padded.
//!
//! The writer produces bytes into an internal buffer that the database
//! drains to the simulated disk's log zone after each record; the reader
//! parses a fully materialised log (recovery reads the log back in one
//! sequential sweep), skipping corrupt tails the way LevelDB does.

use crate::error::{corruption, Result};
use crate::util::coding::decode_fixed32;
use crate::util::crc32c;

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: crc(4) + length(2) + type(1).
pub const HEADER_SIZE: usize = 7;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Appends records in the log format.
#[derive(Debug)]
pub struct LogWriter {
    buf: Vec<u8>,
    block_offset: usize,
}

impl LogWriter {
    /// Creates a writer positioned at a block boundary.
    pub fn new() -> Self {
        LogWriter {
            buf: Vec::new(),
            block_offset: 0,
        }
    }

    /// Appends one record (possibly fragmented across blocks).
    pub fn add_record(&mut self, payload: &[u8]) {
        let mut rest = payload;
        let mut first = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the block tail and switch to a new block.
                self.buf.extend(std::iter::repeat_n(0u8, leftover));
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let frag_len = rest.len().min(avail);
            let end = frag_len == rest.len();
            let ty = match (first, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(ty, &rest[..frag_len]);
            rest = &rest[frag_len..];
            first = false;
            if end {
                break;
            }
        }
    }

    fn emit(&mut self, ty: u8, frag: &[u8]) {
        let crc = crc32c::mask(crc32c::extend(crc32c::crc32c(&[ty]), frag));
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
            .extend_from_slice(&(frag.len() as u16).to_le_bytes());
        self.buf.push(ty);
        self.buf.extend_from_slice(frag);
        self.block_offset += HEADER_SIZE + frag.len();
        debug_assert!(self.block_offset <= BLOCK_SIZE);
        if self.block_offset == BLOCK_SIZE {
            self.block_offset = 0;
        }
    }

    /// Drains the bytes produced since the last call.
    pub fn take(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }

    /// Bytes pending in the buffer.
    pub fn pending_len(&self) -> usize {
        self.buf.len()
    }
}

impl Default for LogWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads records back from a materialised log.
#[derive(Debug)]
pub struct LogReader<'a> {
    data: &'a [u8],
    pos: usize,
    /// Corrupt byte ranges skipped so far (for diagnostics).
    pub dropped_bytes: usize,
}

impl<'a> LogReader<'a> {
    /// Creates a reader over the whole log contents.
    pub fn new(data: &'a [u8]) -> Self {
        LogReader {
            data,
            pos: 0,
            dropped_bytes: 0,
        }
    }

    fn read_fragment(&mut self) -> Option<std::result::Result<(u8, &'a [u8]), ()>> {
        loop {
            let block_left = BLOCK_SIZE - self.pos % BLOCK_SIZE;
            if block_left < HEADER_SIZE {
                // Padding zone.
                self.pos += block_left;
                continue;
            }
            if self.pos + HEADER_SIZE > self.data.len() {
                return None;
            }
            let hdr = &self.data[self.pos..self.pos + HEADER_SIZE];
            let crc = decode_fixed32(hdr);
            let len = u16::from_le_bytes([hdr[4], hdr[5]]) as usize;
            let ty = hdr[6];
            if ty == 0 && len == 0 && crc == 0 {
                // Zero padding written at a truncated tail.
                return None;
            }
            let start = self.pos + HEADER_SIZE;
            if start + len > self.data.len() {
                self.dropped_bytes += self.data.len() - self.pos;
                self.pos = self.data.len();
                return None;
            }
            let frag = &self.data[start..start + len];
            self.pos = start + len;
            let expect = crc32c::mask(crc32c::extend(crc32c::crc32c(&[ty]), frag));
            if expect != crc || !(FULL..=LAST).contains(&ty) {
                self.dropped_bytes += HEADER_SIZE + len;
                return Some(Err(()));
            }
            return Some(Ok((ty, frag)));
        }
    }

    /// Next complete record, or `None` at end of log. Corrupt fragments
    /// produce `Err` but reading may continue.
    pub fn next_record(&mut self) -> Option<Result<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            match self.read_fragment() {
                None => {
                    return match assembled {
                        // A dangling FIRST/MIDDLE chain at the tail means a
                        // crash mid-record; LevelDB silently drops it.
                        Some(partial) => {
                            self.dropped_bytes += partial.len();
                            None
                        }
                        None => None,
                    };
                }
                Some(Err(())) => {
                    return Some(corruption(format!(
                        "bad record crc near byte {} of wal (dropped {} bytes so far)",
                        self.pos, self.dropped_bytes
                    )));
                }
                Some(Ok((ty, frag))) => match ty {
                    FULL => {
                        if assembled.is_some() {
                            return Some(corruption(format!(
                                "FULL record inside fragment chain near byte {} of wal",
                                self.pos
                            )));
                        }
                        return Some(Ok(frag.to_vec()));
                    }
                    FIRST => {
                        if assembled.is_some() {
                            return Some(corruption(format!(
                                "FIRST record inside fragment chain near byte {} of wal",
                                self.pos
                            )));
                        }
                        assembled = Some(frag.to_vec());
                    }
                    MIDDLE => match assembled.as_mut() {
                        Some(a) => a.extend_from_slice(frag),
                        None => {
                            return Some(corruption(format!(
                                "MIDDLE record without FIRST near byte {} of wal",
                                self.pos
                            )))
                        }
                    },
                    LAST => match assembled.take() {
                        Some(mut a) => {
                            a.extend_from_slice(frag);
                            return Some(Ok(a));
                        }
                        None => {
                            return Some(corruption(format!(
                                "LAST record without FIRST near byte {} of wal",
                                self.pos
                            )))
                        }
                    },
                    _ => unreachable!("fragment type validated"),
                },
            }
        }
    }

    /// Collects all intact records, ignoring corruption (recovery policy).
    pub fn all_records(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record() {
            if let Ok(r) = rec {
                out.push(r);
            }
        }
        out
    }
}

/// Incremental record reassembly over log-formatted bytes that arrive
/// in chunks — the replication shipping path. [`LogReader`] parses a
/// fully materialised log and treats an incomplete tail as a crash to
/// drop; a stream must instead *wait*: [`WalStream::next_record`]
/// returns `None` while a record's bytes are still in flight and
/// resumes once [`WalStream::feed`] supplies the rest, preserving
/// fragment chains across calls and block boundaries.
#[derive(Debug, Default)]
pub struct WalStream {
    buf: Vec<u8>,
    /// Parse cursor into `buf`.
    pos: usize,
    /// Absolute log offset of `buf[0]` (drained prefixes), so block
    /// alignment survives buffer compaction.
    consumed: usize,
    /// Fragment chain in progress, carried across `next_record` calls.
    partial: Option<Vec<u8>>,
    /// Corrupt byte ranges skipped so far (for diagnostics).
    pub dropped_bytes: usize,
}

impl WalStream {
    /// Creates a stream positioned at the start of a log.
    pub fn new() -> Self {
        WalStream::default()
    }

    /// Appends newly arrived log bytes, compacting the parsed prefix.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.consumed += self.pos;
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes fed but not yet consumed by a parsed record.
    pub fn buffered_len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next fragment, `None` while its bytes are still in flight.
    fn read_fragment(&mut self) -> Option<std::result::Result<(u8, Vec<u8>), ()>> {
        loop {
            let block_left = BLOCK_SIZE - (self.consumed + self.pos) % BLOCK_SIZE;
            if block_left < HEADER_SIZE {
                if self.buf.len() < self.pos + block_left {
                    return None; // padding still in flight
                }
                self.pos += block_left;
                continue;
            }
            if self.buf.len() < self.pos + HEADER_SIZE {
                return None;
            }
            let hdr = &self.buf[self.pos..self.pos + HEADER_SIZE];
            let crc = decode_fixed32(hdr);
            let len = u16::from_le_bytes([hdr[4], hdr[5]]) as usize;
            let ty = hdr[6];
            if ty == 0 && len == 0 && crc == 0 {
                // A live stream never writes zero headers (short block
                // tails are the only padding, handled above): resync one
                // header forward and report the corruption.
                self.pos += HEADER_SIZE;
                self.dropped_bytes += HEADER_SIZE;
                return Some(Err(()));
            }
            if self.buf.len() < self.pos + HEADER_SIZE + len {
                return None; // payload still in flight
            }
            let start = self.pos + HEADER_SIZE;
            let frag = self.buf[start..start + len].to_vec();
            self.pos = start + len;
            let expect = crc32c::mask(crc32c::extend(crc32c::crc32c(&[ty]), &frag));
            if expect != crc || !(FULL..=LAST).contains(&ty) {
                self.dropped_bytes += HEADER_SIZE + len;
                return Some(Err(()));
            }
            return Some(Ok((ty, frag)));
        }
    }

    /// Next complete record, or `None` until more bytes arrive. Corrupt
    /// fragments produce `Err`; parsing continues on the next call.
    pub fn next_record(&mut self) -> Option<Result<Vec<u8>>> {
        loop {
            match self.read_fragment() {
                None => return None,
                Some(Err(())) => {
                    self.partial = None;
                    return Some(corruption(format!(
                        "bad record crc near stream byte {} (dropped {} bytes so far)",
                        self.consumed + self.pos,
                        self.dropped_bytes
                    )));
                }
                Some(Ok((ty, frag))) => match ty {
                    FULL => {
                        if self.partial.take().is_some() {
                            return Some(corruption(format!(
                                "FULL record inside fragment chain near stream byte {}",
                                self.consumed + self.pos
                            )));
                        }
                        return Some(Ok(frag));
                    }
                    FIRST => {
                        if self.partial.replace(frag).is_some() {
                            return Some(corruption(format!(
                                "FIRST record inside fragment chain near stream byte {}",
                                self.consumed + self.pos
                            )));
                        }
                    }
                    MIDDLE => match self.partial.as_mut() {
                        Some(a) => a.extend_from_slice(&frag),
                        None => {
                            return Some(corruption(format!(
                                "MIDDLE record without FIRST near stream byte {}",
                                self.consumed + self.pos
                            )))
                        }
                    },
                    LAST => match self.partial.take() {
                        Some(mut a) => {
                            a.extend_from_slice(&frag);
                            return Some(Ok(a));
                        }
                        None => {
                            return Some(corruption(format!(
                                "LAST record without FIRST near stream byte {}",
                                self.consumed + self.pos
                            )))
                        }
                    },
                    _ => unreachable!("fragment type validated"),
                },
            }
        }
    }

    /// Drains every record currently completable, ignoring corruption.
    pub fn drain_records(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record() {
            if let Ok(r) = rec {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let mut w = LogWriter::new();
        for r in records {
            w.add_record(r);
        }
        let bytes = w.take();
        LogReader::new(&bytes).all_records()
    }

    #[test]
    fn empty_log() {
        assert!(LogReader::new(&[]).all_records().is_empty());
    }

    #[test]
    fn small_records() {
        let recs = vec![b"one".to_vec(), b"two".to_vec(), vec![], b"four".to_vec()];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn record_spanning_blocks() {
        let big = vec![0xAB; BLOCK_SIZE * 3 + 123];
        let recs = vec![b"pre".to_vec(), big.clone(), b"post".to_vec()];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn record_exactly_filling_block() {
        let exact = vec![7u8; BLOCK_SIZE - HEADER_SIZE];
        let recs = vec![exact.clone(), b"after".to_vec()];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn block_tail_padding() {
        // Record that leaves < 7 bytes in the block forces padding.
        let a = vec![1u8; BLOCK_SIZE - HEADER_SIZE - 3];
        let recs = vec![a.clone(), b"next-block".to_vec()];
        assert_eq!(roundtrip(&recs), recs);
    }

    #[test]
    fn corrupt_crc_detected() {
        let mut w = LogWriter::new();
        w.add_record(b"good");
        w.add_record(b"evil");
        let mut bytes = w.take();
        // Flip a payload byte of the second record.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        let mut r = LogReader::new(&bytes);
        assert_eq!(r.next_record().unwrap().unwrap(), b"good");
        assert!(r.next_record().unwrap().is_err());
        assert!(r.dropped_bytes > 0);
    }

    #[test]
    fn truncated_tail_dropped_silently() {
        let mut w = LogWriter::new();
        w.add_record(b"complete");
        w.add_record(&vec![9u8; 5000]);
        let bytes = w.take();
        // Cut mid-way through the second record.
        let cut = &bytes[..bytes.len() - 2500];
        let recs = LogReader::new(cut).all_records();
        assert_eq!(recs, vec![b"complete".to_vec()]);
    }

    #[test]
    fn stream_reassembles_byte_at_a_time() {
        let big = vec![0x5A; BLOCK_SIZE + 777];
        let recs = vec![b"one".to_vec(), big.clone(), vec![], b"four".to_vec()];
        let mut w = LogWriter::new();
        for r in &recs {
            w.add_record(r);
        }
        let bytes = w.take();
        let mut s = WalStream::new();
        let mut got = Vec::new();
        for b in &bytes {
            s.feed(std::slice::from_ref(b));
            got.extend(s.drain_records());
        }
        assert_eq!(got, recs);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(s.buffered_len(), 0);
    }

    #[test]
    fn stream_waits_for_inflight_payload() {
        let mut w = LogWriter::new();
        w.add_record(&vec![3u8; 5000]);
        let bytes = w.take();
        let mut s = WalStream::new();
        s.feed(&bytes[..2500]);
        assert!(s.next_record().is_none(), "half a record must not parse");
        s.feed(&bytes[2500..]);
        let rec = s.next_record().expect("complete now").expect("intact");
        assert_eq!(rec, vec![3u8; 5000]);
    }

    #[test]
    fn stream_chain_survives_block_padding_gap() {
        // First record forces padding; the chunk boundary lands inside
        // the padding zone of the first block.
        let a = vec![1u8; BLOCK_SIZE - HEADER_SIZE - 3];
        let mut w = LogWriter::new();
        w.add_record(&a);
        w.add_record(b"next-block");
        let bytes = w.take();
        let cut = BLOCK_SIZE - 2; // inside the 3-byte zero padding
        let mut s = WalStream::new();
        s.feed(&bytes[..cut]);
        assert_eq!(s.drain_records(), vec![a.clone()]);
        s.feed(&bytes[cut..]);
        assert_eq!(s.drain_records(), vec![b"next-block".to_vec()]);
    }

    #[test]
    fn stream_surfaces_corruption_then_recovers() {
        let mut w = LogWriter::new();
        w.add_record(b"good");
        w.add_record(b"evil");
        w.add_record(b"tail");
        let mut bytes = w.take();
        // Flip a payload byte of the middle record.
        let evil_start = (HEADER_SIZE + 4) + HEADER_SIZE;
        bytes[evil_start] ^= 0xFF;
        let mut s = WalStream::new();
        s.feed(&bytes);
        assert_eq!(s.next_record().unwrap().unwrap(), b"good");
        assert!(s.next_record().unwrap().is_err());
        assert!(s.dropped_bytes > 0);
        assert_eq!(s.next_record().unwrap().unwrap(), b"tail");
    }

    #[test]
    fn stream_matches_reader_on_same_bytes() {
        let recs: Vec<Vec<u8>> = (0..50).map(|i| vec![i as u8; (i * 97) % 3000]).collect();
        let mut w = LogWriter::new();
        for r in &recs {
            w.add_record(r);
        }
        let bytes = w.take();
        let from_reader = LogReader::new(&bytes).all_records();
        let mut s = WalStream::new();
        let mut from_stream = Vec::new();
        for chunk in bytes.chunks(311) {
            s.feed(chunk);
            from_stream.extend(s.drain_records());
        }
        assert_eq!(from_stream, from_reader);
        assert_eq!(from_stream, recs);
    }

    #[test]
    fn take_is_incremental() {
        let mut w = LogWriter::new();
        w.add_record(b"a");
        let first = w.take();
        assert!(!first.is_empty());
        w.add_record(b"b");
        let second = w.take();
        let mut joined = first.clone();
        joined.extend_from_slice(&second);
        let recs = LogReader::new(&joined).all_records();
        assert_eq!(recs, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(w.pending_len(), 0);
    }
}
