//! # seal-replica — deterministic primary/replica replication
//!
//! Runs one primary [`Store`] and N replica [`Store`]s on the shared
//! simulated clock, connected by a seeded [`NetModel`]. The primary
//! ships its WAL as framed records over the network; two modes decide
//! what a replica does with a received frame:
//!
//! * [`ShipMode::WalApply`] — the replica applies every batch through
//!   its own write path ([`Store::apply_replicated`]), preserving the
//!   primary-assigned sequence numbers: a hot standby with a tiny
//!   replay tail and the fastest takeover.
//! * [`ShipMode::IndexLazy`] — the replica only appends the shipped
//!   frames durably to a dedicated ship log and materialises nothing,
//!   after the RDMA index-replication design (PAPERS.md): near-zero
//!   steady-state replica CPU, paid back at promotion when the
//!   recovery path replays the whole ship log.
//!
//! Acked-write semantics are quorum-configurable ([`AckPolicy`]): under
//! `Quorum`/`All`, a write returns only once enough replicas hold its
//! frame, so a primary kill can lose no acked write (RPO = 0); under
//! `PrimaryOnly`, frames are shipped asynchronously in batches and a
//! kill deterministically loses the unshipped tail — the baseline the
//! sweeps contrast against.
//!
//! Failover composes the earlier PRs: detection timeout, a fencing
//! round with the surviving voters, promotion of the most-caught-up
//! unpartitioned replica via the PR 1 crash-image recovery path, and a
//! client redirect modelled with `smr-sim`'s shared bounded backoff.
//! The old primary rejoins as a replica by catch-up streaming of the
//! full replicated log. Everything rides the simulated clock: the same
//! configuration and seed replays byte-identically.

use lsm_core::{Error, LogWriter, Result, ValueType, WalStream, WriteBatch};
use sealdb::{Store, StoreConfig, StoreKind, VlogParams};
use smr_sim::{Backoff, IoKind, NetModel, ObsLayer};
use std::collections::BTreeMap;

/// File id of the replica-side ship log in [`ShipMode::IndexLazy`].
/// High above any id the engine allocates, so recovery's "replay every
/// log at or past the current WAL id" sweep always includes it.
const SHIP_LOG_ID: lsm_core::FileId = 1 << 40;

/// Upper bound on modelled client redirect retries during one failover.
const MAX_CLIENT_RETRIES: u32 = 10_000;

/// What the primary ships and what a replica does with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShipMode {
    /// Replicas apply every shipped batch through their own WAL and
    /// memtable immediately (hot standby).
    WalApply,
    /// Replicas append shipped frames to a durable ship log and defer
    /// all materialisation to promotion time (lazy rebuild).
    IndexLazy,
}

impl ShipMode {
    /// Stable lowercase name used in artifact cells.
    pub fn name(self) -> &'static str {
        match self {
            ShipMode::WalApply => "wal",
            ShipMode::IndexLazy => "index",
        }
    }
}

/// When a write is acknowledged to the client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckPolicy {
    /// Acked as soon as the primary's own WAL holds it; frames ship
    /// asynchronously in `ship_every` batches. A primary kill loses
    /// the unshipped tail.
    PrimaryOnly,
    /// Acked once `k` replicas hold the frame (and, by in-order
    /// delivery, every earlier frame — the prefix property that makes
    /// the most-caught-up replica hold every acked write).
    Quorum(usize),
    /// Acked only when every live replica holds the frame.
    All,
}

impl AckPolicy {
    /// Stable lowercase name used in artifact cells.
    pub fn name(self) -> &'static str {
        match self {
            AckPolicy::PrimaryOnly => "primary",
            AckPolicy::Quorum(_) => "quorum",
            AckPolicy::All => "all",
        }
    }
}

/// Configuration of one replication cluster.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Which store kind every node runs.
    pub kind: StoreKind,
    /// Number of replicas (nodes are `0..=replicas`, node 0 is the
    /// initial primary).
    pub replicas: usize,
    /// What ships to replicas.
    pub mode: ShipMode,
    /// When writes are acknowledged.
    pub ack: AckPolicy,
    /// Determinism seed for the network and every node store.
    pub seed: u64,
    /// SSTable size of every node store.
    pub sstable_size: u64,
    /// Disk capacity of every node store.
    pub disk_capacity: u64,
    /// Base one-way link latency, ns.
    pub link_latency_ns: u64,
    /// Per-message drop probability, permille (drops delay via
    /// retransmit, they never lose frames).
    pub drop_permille: u64,
    /// Time from a primary kill to the cluster noticing it, ns.
    pub detect_timeout_ns: u64,
    /// Under [`AckPolicy::PrimaryOnly`], ship after this many buffered
    /// writes.
    pub ship_every: usize,
    /// Client redirect retry backoff base, ns (see
    /// [`smr_sim::Backoff`]).
    pub retry_backoff_ns: u64,
    /// Client redirect retry backoff cap, ns.
    pub retry_backoff_max_ns: u64,
    /// Key-value separation parameters for every node store; `None`
    /// stores values inline. Only valid with [`ShipMode::WalApply`]:
    /// the primary ships its *original* batch bytes and each node
    /// rewrites them through its own value log, whereas `IndexLazy`
    /// promotion replays the raw ship log straight into the engine,
    /// bypassing the rewrite and leaving diverted values unreadable.
    pub vlog: Option<VlogParams>,
}

impl ReplicaConfig {
    /// A SEALDB cluster with `replicas` replicas and quorum-1 acks.
    pub fn new(replicas: usize, sstable_size: u64, disk_capacity: u64) -> Self {
        ReplicaConfig {
            kind: StoreKind::SealDb,
            replicas,
            mode: ShipMode::WalApply,
            ack: AckPolicy::Quorum(1),
            seed: 0x5EA1C1D5,
            sstable_size,
            disk_capacity,
            link_latency_ns: 1_000_000,
            drop_permille: 0,
            detect_timeout_ns: 10_000_000,
            ship_every: 8,
            retry_backoff_ns: 500_000,
            retry_backoff_max_ns: 8_000_000,
            vlog: None,
        }
    }

    /// Enables key-value separation on every node store.
    pub fn with_vlog(mut self, params: VlogParams) -> Self {
        self.vlog = Some(params);
        self
    }
}

/// Lifetime counters of one cluster run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Key/value entries acknowledged to clients.
    pub acked_writes: u64,
    /// Frames shipped onto the network.
    pub shipped_frames: u64,
    /// Total shipped frame bytes (per frame, not per link).
    pub shipped_bytes: u64,
    /// Frames applied (or durably logged) on replicas.
    pub applied_frames: u64,
    /// Frames that died in the primary's async ship buffer at a kill.
    pub lost_unshipped_frames: u64,
    /// In-flight frames fenced off at a promotion.
    pub fenced_inflight_frames: u64,
    /// Frames replayed to a rejoining node by catch-up streaming.
    pub catchup_frames: u64,
    /// Failovers performed.
    pub failovers: u64,
}

/// What one failover cost, by phase. All times simulated ns.
#[derive(Clone, Copy, Debug)]
pub struct FailoverReport {
    /// Node index promoted to primary.
    pub promoted: usize,
    /// Recovery time objective actually measured: detection + fencing
    /// + replay + client redirect.
    pub rto_ns: u64,
    /// Detection timeout charged.
    pub detect_ns: u64,
    /// Fencing round trips with the surviving voters.
    pub fence_ns: u64,
    /// Replay of the promoted node's WAL / ship-log tail.
    pub replay_ns: u64,
    /// Client redirect round trip to the new primary.
    pub redirect_ns: u64,
    /// WAL records the promotion recovery replayed.
    pub replayed_records: u64,
    /// Bounded-backoff retries a redirected client issued while the
    /// new primary came up.
    pub client_retries: u64,
}

/// Result of checking every acked write against the current primary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditReport {
    /// Distinct keys acknowledged to clients.
    pub acked_writes: u64,
    /// Acked keys the current primary no longer serves correctly.
    pub acked_lost: u64,
}

/// Result of checking every acked write against every live node (see
/// [`Cluster::audit_deep`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeepAuditReport {
    /// Distinct keys acknowledged to clients.
    pub acked_writes: u64,
    /// Acked keys the current primary misserves (repairable as long as
    /// some other live node still holds them).
    pub primary_misses: u64,
    /// Acked keys no live node serves correctly — unrecoverable loss.
    pub acked_lost: u64,
}

/// A frame delivered to (but not yet processed by) one replica.
#[derive(Debug)]
struct PendingFrame {
    /// Effective receive time: delivery, deferred behind earlier frames
    /// so application is always in shipping order.
    ready_ns: u64,
    /// Highest sequence number the frame carries.
    last_seq: u64,
    /// Framed WAL bytes.
    bytes: Vec<u8>,
}

/// One entry of the replicated log, kept for catch-up streaming.
#[derive(Clone, Debug)]
struct HistFrame {
    last_seq: u64,
    bytes: Vec<u8>,
}

/// A write acked under `PrimaryOnly` but not yet shipped.
#[derive(Debug)]
struct Unshipped {
    rep: Vec<u8>,
    last_seq: u64,
}

/// One cluster node: a store (None once killed) plus its receive state.
#[derive(Debug)]
struct Node {
    store: Option<Store>,
    /// Delivered-but-unprocessed frames, in shipping order.
    pending: BTreeMap<u64, PendingFrame>,
    /// Key for the next pending insertion (monotone).
    next_pending: u64,
    /// Effective receive time of the last frame shipped to this node —
    /// the in-order-delivery hold-back watermark.
    eff_tail: u64,
    /// Streaming reassembly of the shipped WAL byte stream.
    stream: WalStream,
    /// Highest sequence this node holds durably (applied or logged).
    durable_seq: u64,
}

impl Node {
    fn fresh(store: Store) -> Node {
        Node {
            store: Some(store),
            pending: BTreeMap::new(),
            next_pending: 0,
            eff_tail: 0,
            stream: WalStream::new(),
            durable_seq: 0,
        }
    }
}

/// A primary plus replicas on one simulated clock and network.
#[derive(Debug)]
pub struct Cluster {
    cfg: ReplicaConfig,
    nodes: Vec<Node>,
    primary: usize,
    net: NetModel,
    /// Cluster-logical time: the primary's acked frontier. Node disk
    /// clocks are synced forward to this before operating on them.
    now_ns: u64,
    /// Monotone message-id source for network sampling.
    msg_seq: u64,
    /// The shared replicated-log writer. Survives failover: the new
    /// primary continues the byte stream at the position every live
    /// replica has already received up to.
    ship_writer: LogWriter,
    /// Full replicated log, for rejoin catch-up streaming.
    history: Vec<HistFrame>,
    /// Writes acked under `PrimaryOnly` awaiting an async ship.
    unshipped: Vec<Unshipped>,
    /// Every acked key and the value the client was promised
    /// (`None` = deletion), for RPO audits.
    acked: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Lifetime counters.
    pub stats: ClusterStats,
}

impl Cluster {
    /// Builds a cluster of `cfg.replicas + 1` fresh stores; node 0 is
    /// the primary.
    pub fn new(cfg: ReplicaConfig) -> Result<Cluster> {
        assert!(cfg.replicas >= 1, "a cluster needs at least one replica");
        if cfg.mode == ShipMode::IndexLazy && cfg.vlog.is_some() {
            return Err(Error::InvalidArgument(
                "IndexLazy replication cannot run with key-value separation: \
                 promotion replays the raw ship log, bypassing the per-node \
                 value-log rewrite"
                    .to_string(),
            ));
        }
        let mut net = NetModel::new(cfg.seed ^ 0x05EA_14E7, cfg.link_latency_ns);
        net.set_drop_permille(cfg.drop_permille);
        let mut cluster = Cluster {
            nodes: Vec::new(),
            primary: 0,
            net,
            now_ns: 0,
            msg_seq: 0,
            ship_writer: LogWriter::new(),
            history: Vec::new(),
            unshipped: Vec::new(),
            acked: BTreeMap::new(),
            stats: ClusterStats::default(),
            cfg,
        };
        for i in 0..=cluster.cfg.replicas {
            let store = cluster.build_store(i)?;
            cluster.nodes.push(Node::fresh(store));
        }
        Ok(cluster)
    }

    fn build_store(&self, idx: usize) -> Result<Store> {
        let mut sc = StoreConfig::new(self.cfg.kind, self.cfg.sstable_size, self.cfg.disk_capacity);
        sc.seed = self
            .cfg
            .seed
            .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // An acked write must survive the node's own reopen.
        sc.sync_writes = true;
        match self.cfg.vlog {
            Some(params) => sc.with_vlog(params).build(),
            None => sc.build(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ReplicaConfig {
        &self.cfg
    }

    /// Current primary node index.
    pub fn primary_index(&self) -> usize {
        self.primary
    }

    /// Cluster-logical simulated time, ns.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The network model (schedule partitions here before driving load).
    pub fn net_mut(&mut self) -> &mut NetModel {
        &mut self.net
    }

    /// Direct access to the primary's store — the hook fault-injection
    /// tests use to plant device damage or run scrub steps mid-stream.
    pub fn primary_store_mut(&mut self) -> &mut Store {
        match self.nodes[self.primary].store.as_mut() {
            Some(s) => s,
            None => unreachable!("primary {} has no store", self.primary),
        }
    }

    /// Highest sequence node `idx` holds durably.
    pub fn durable_seq(&self, idx: usize) -> u64 {
        self.nodes[idx].durable_seq
    }

    /// True while node `idx` has a live store.
    pub fn alive(&self, idx: usize) -> bool {
        self.nodes[idx].store.is_some()
    }

    fn next_msg(&mut self) -> u64 {
        self.msg_seq += 1;
        self.msg_seq
    }

    /// Virtual node index used for client-side latency sampling.
    fn client_node(&self) -> usize {
        self.nodes.len()
    }

    /// Advances node `idx`'s disk clock to at least `t_ns`.
    fn sync_node_clock(&mut self, idx: usize, t_ns: u64) {
        if let Some(store) = self.nodes[idx].store.as_mut() {
            let c = store.clock_ns();
            if t_ns > c {
                store.db.ctx().lock().fs.disk_mut().advance_ns(t_ns - c);
            }
        }
    }

    // ----- write path -----

    /// Inserts one key/value pair under the configured ack policy.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write_batch(b)
    }

    /// Deletes a key under the configured ack policy.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write_batch(b)
    }

    /// Applies a batch and returns once the ack policy is satisfied;
    /// the batch's entries are then recorded as promised to the client
    /// (the RPO audit set).
    pub fn write_batch(&mut self, batch: WriteBatch) -> Result<()> {
        self.write_inner(batch, true)
    }

    /// Applies and ships a batch but returns *before* the ack — an
    /// in-flight group commit. Its entries join no audit set: if the
    /// primary dies now, the batch may legitimately be lost, but it
    /// must be lost or kept atomically.
    pub fn write_unacked(&mut self, batch: WriteBatch) -> Result<()> {
        self.write_inner(batch, false)
    }

    fn write_inner(&mut self, mut batch: WriteBatch, record_ack: bool) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        // Opportunistically drain replica deliveries that are due.
        self.pump_all(self.now_ns)?;
        let p = self.primary;
        self.sync_node_clock(p, self.now_ns);
        let (rep, last, entries, clock, write_err) = {
            let store = self.nodes[p].store.as_mut().ok_or_else(|| {
                Error::InvalidArgument(format!("primary node {p} is dead; cannot write"))
            })?;
            let first = store.last_sequence() + 1;
            batch.set_sequence(first);
            let last = first + u64::from(batch.count()) - 1;
            let rep = batch.rep().to_vec();
            let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> = batch
                .iter()
                .map(|(_, ty, k, v)| {
                    let promised = match ty {
                        ValueType::Value => Some(v.to_vec()),
                        ValueType::Deletion => None,
                    };
                    (k.to_vec(), promised)
                })
                .collect();
            let res = store.write(batch);
            let committed = store.last_sequence() >= last;
            let clock = store.clock_ns();
            (rep, last, entries, clock, res.err().map(|e| (e, committed)))
        };
        self.now_ns = self.now_ns.max(clock);
        // The store commits (WAL + memtable, sequence advanced) before
        // background maintenance runs, so a write can error *after* the
        // batch is locally durable — e.g. a transient device fault
        // failing the triggered compaction. The client gets the error
        // either way, but a committed batch MUST still ship: replicas
        // refuse sequence gaps, so swallowing it would poison every
        // later frame and quietly diverge the primary from its replicas
        // (found by the chaos harness's composed-fault schedules).
        if let Some((e, committed)) = write_err {
            if committed {
                match self.cfg.ack {
                    AckPolicy::PrimaryOnly => {
                        self.unshipped.push(Unshipped {
                            rep,
                            last_seq: last,
                        });
                    }
                    AckPolicy::Quorum(_) | AckPolicy::All => {
                        // Best-effort ship; no ack was promised.
                        let _ = self.ship_rep(&rep, last);
                    }
                }
            }
            return Err(e);
        }
        match self.cfg.ack {
            AckPolicy::PrimaryOnly => {
                self.unshipped.push(Unshipped {
                    rep,
                    last_seq: last,
                });
                if self.unshipped.len() >= self.cfg.ship_every.max(1) {
                    self.flush_unshipped()?;
                }
            }
            AckPolicy::Quorum(_) | AckPolicy::All => {
                let mut acks = self.ship_rep(&rep, last);
                let need = match self.cfg.ack {
                    AckPolicy::Quorum(k) => k.max(1),
                    _ => self.live_replicas().len(),
                };
                if acks.len() < need {
                    return Err(Error::InvalidArgument(format!(
                        "ack policy needs {need} replica acks but only {} replicas can answer",
                        acks.len()
                    )));
                }
                acks.sort_unstable();
                self.now_ns = self.now_ns.max(acks[need - 1]);
            }
        }
        if record_ack {
            // Debug-build happens-before audit: every byte acked to the
            // client must already be durable on the primary (the cluster
            // runs `sync_writes`, so the WAL tail drains per write).
            if let Some(store) = self.nodes[p].store.as_mut() {
                store.ordering_ack();
            }
            self.stats.acked_writes += entries.len() as u64;
            for (k, v) in entries {
                self.acked.insert(k, v);
            }
        }
        Ok(())
    }

    fn live_replicas(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| i != self.primary && self.nodes[i].store.is_some())
            .collect()
    }

    /// Frames `rep` through the shared replicated log and ships it to
    /// every live replica. Returns the ack arrival times that will
    /// eventually reach the primary (one per replica that can answer).
    fn ship_rep(&mut self, rep: &[u8], last_seq: u64) -> Vec<u64> {
        self.ship_writer.add_record(rep);
        let bytes = self.ship_writer.take();
        self.history.push(HistFrame {
            last_seq,
            bytes: bytes.clone(),
        });
        self.stats.shipped_frames += 1;
        self.stats.shipped_bytes += bytes.len() as u64;
        let p = self.primary;
        let send = self.now_ns;
        let mut acks = Vec::new();
        for r in self.live_replicas() {
            let msg = self.next_msg();
            let ack_msg = self.next_msg();
            let Some(d) = self.net.delivery_ns(p, r, msg, send) else {
                continue; // unreachable forever: no ack, no pending frame
            };
            let node = &mut self.nodes[r];
            // A frame is processable only after every earlier frame:
            // the receiver holds back out-of-order deliveries.
            let eff = node.eff_tail.max(d);
            node.eff_tail = eff;
            let key = node.next_pending;
            node.next_pending += 1;
            node.pending.insert(
                key,
                PendingFrame {
                    ready_ns: eff,
                    last_seq,
                    bytes: bytes.clone(),
                },
            );
            if let Some(a) = self.net.delivery_ns(r, p, ack_msg, eff) {
                acks.push(a);
            }
        }
        acks
    }

    /// Ships everything in the async buffer (PrimaryOnly mode).
    fn flush_unshipped(&mut self) -> Result<()> {
        let frames = std::mem::take(&mut self.unshipped);
        for f in frames {
            self.ship_rep(&f.rep, f.last_seq);
        }
        Ok(())
    }

    /// Runs one budgeted cooperative value-log GC step on the primary
    /// and replicates the sequence range its pointer fixups consumed.
    ///
    /// GC fixups go through the primary's unaccounted write path, so
    /// they advance the primary's sequence counter like any client
    /// write — but they carry *pointers into the primary's own value
    /// log*, which mean nothing on another node. Running store-level GC
    /// on a replicated primary therefore silently opens a sequence gap
    /// that makes every later shipped frame unappliable (the chaos
    /// harness found exactly this). This method closes the gap: it
    /// ships the relocated records' **original values**, stamped with
    /// the consumed sequence range; each replica's apply path rewrites
    /// them through its *own* value log, so logical state converges
    /// while pointers stay node-local. Shipping is best-effort (GC
    /// promises no client ack) — unreachable replicas catch up from
    /// the frame history on rejoin. Returns whether any GC work was
    /// done.
    pub fn vlog_gc_step(&mut self, budget_bytes: u64) -> Result<bool> {
        self.pump_all(self.now_ns)?;
        let p = self.primary;
        self.sync_node_clock(p, self.now_ns);
        let (shipment, clock) = {
            let store = self.nodes[p].store.as_mut().ok_or_else(|| {
                Error::InvalidArgument(format!("primary node {p} is dead; cannot run GC"))
            })?;
            let shipment = store.vlog_gc_step_shipping(budget_bytes)?;
            (shipment, store.clock_ns())
        };
        self.now_ns = self.now_ns.max(clock);
        let Some(shipment) = shipment else {
            return Ok(false);
        };
        if !shipment.entries.is_empty() {
            let mut batch = WriteBatch::new();
            for (k, v) in &shipment.entries {
                batch.put(k, v);
            }
            batch.set_sequence(shipment.first_seq);
            let last = shipment.first_seq + u64::from(batch.count()) - 1;
            let _ = self.ship_rep(batch.rep(), last);
        }
        // Surfaced only now: even a failed barrier leaves the fixups'
        // sequence range consumed, so the ship above must happen first.
        if let Some(e) = shipment.barrier_error {
            return Err(e);
        }
        Ok(true)
    }

    // ----- replica receive path -----

    /// Processes every delivery already due at the cluster clock. The
    /// write path does this opportunistically; call it before inspecting
    /// replica state (e.g. [`Cluster::durable_seq`]) mid-stream.
    pub fn settle(&mut self) -> Result<()> {
        self.pump_all(self.now_ns)
    }

    /// Advances the cluster clock by `dt_ns` and delivers everything
    /// that becomes due — how the chaos harness steps past a finite
    /// partition's heal bound so frames buffered behind it drain
    /// deterministically before the oracle runs.
    pub fn advance_ns(&mut self, dt_ns: u64) -> Result<()> {
        self.now_ns = self.now_ns.saturating_add(dt_ns);
        self.settle()
    }

    /// Reads `key` on node `idx` at the cluster clock — the per-survivor
    /// read path the chaos oracle uses to check a promised value against
    /// every live node, not just the primary. A dead node is an error.
    pub fn get_of(&mut self, idx: usize, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.sync_node_clock(idx, self.now_ns);
        let store = self.nodes[idx]
            .store
            .as_mut()
            .ok_or_else(|| Error::InvalidArgument(format!("node {idx} is dead; cannot read")))?;
        store.get(key)
    }

    /// Processes every due delivery on every live replica up to `t_ns`.
    fn pump_all(&mut self, t_ns: u64) -> Result<()> {
        for r in self.live_replicas() {
            self.pump_node(r, t_ns)?;
        }
        Ok(())
    }

    /// Processes node `idx`'s pending frames with `ready_ns <= t_ns`,
    /// in shipping order.
    fn pump_node(&mut self, idx: usize, t_ns: u64) -> Result<()> {
        loop {
            let due = match self.nodes[idx].pending.first_key_value() {
                Some((&key, frame)) if frame.ready_ns <= t_ns => key,
                _ => break,
            };
            if let Some(frame) = self.nodes[idx].pending.remove(&due) {
                self.apply_frame(idx, frame)?;
            }
        }
        Ok(())
    }

    /// Applies one received frame on node `idx` at its ready time.
    fn apply_frame(&mut self, idx: usize, frame: PendingFrame) -> Result<()> {
        self.sync_node_clock(idx, frame.ready_ns);
        let node = &mut self.nodes[idx];
        let store = node
            .store
            .as_mut()
            .ok_or_else(|| Error::InvalidArgument(format!("frame delivered to dead node {idx}")))?;
        match self.cfg.mode {
            ShipMode::WalApply => {
                node.stream.feed(&frame.bytes);
                while let Some(rec) = node.stream.next_record() {
                    let batch = WriteBatch::decode(&rec?)?;
                    store.apply_replicated(batch)?;
                }
            }
            ShipMode::IndexLazy => {
                let mut guard = store.db.ctx().lock();
                if !guard.fs.has_log(SHIP_LOG_ID) {
                    guard.fs.create_log(SHIP_LOG_ID)?;
                }
                guard
                    .fs
                    .log_append(SHIP_LOG_ID, &frame.bytes, IoKind::Wal)?;
            }
        }
        node.durable_seq = node.durable_seq.max(frame.last_seq);
        self.stats.applied_frames += 1;
        Ok(())
    }

    // ----- failover -----

    /// Kills the current primary at the cluster clock and fails over:
    /// detection timeout, fencing with the surviving voters, promotion
    /// of the most-caught-up unpartitioned replica via the crash-image
    /// recovery path, and a modelled client redirect. Writes acked
    /// under `PrimaryOnly` that were still in the async ship buffer
    /// die with the primary.
    pub fn kill_primary(&mut self) -> Result<FailoverReport> {
        let kill_ns = self.now_ns;
        let old = self.primary;
        self.net.faults_mut().kill(old, kill_ns);
        self.nodes[old].store = None;
        self.nodes[old].pending.clear();
        self.stats.lost_unshipped_frames += self.unshipped.len() as u64;
        self.unshipped.clear();
        self.stats.failovers += 1;
        self.failover(kill_ns)
    }

    /// Kills a non-primary node at the cluster clock: its store and any
    /// frames still in flight to it are gone. The cluster keeps serving
    /// as long as the ack policy can still be met; the node can come
    /// back later via [`Cluster::rejoin`].
    pub fn kill_replica(&mut self, idx: usize) -> Result<()> {
        if idx == self.primary {
            return Err(Error::InvalidArgument(format!(
                "node {idx} is the primary; use kill_primary for a failover"
            )));
        }
        if self.nodes[idx].store.is_none() {
            return Err(Error::InvalidArgument(format!(
                "node {idx} is already dead"
            )));
        }
        self.net.faults_mut().kill(idx, self.now_ns);
        self.nodes[idx].store = None;
        self.nodes[idx].pending.clear();
        Ok(())
    }

    /// Power-cycles the current primary in place: the store restarts
    /// from its durable on-disk state through the crash-image recovery
    /// path (WAL replay, manifest quarantine, value-log torn-tail
    /// scan), exactly as if the machine lost power and came back. The
    /// primary keeps its role — no failover, no fencing — so this
    /// models a fast reboot rather than a kill. Returns the number of
    /// WAL records recovery replayed.
    pub fn restart_primary(&mut self) -> Result<u64> {
        let p = self.primary;
        self.sync_node_clock(p, self.now_ns);
        let store = self.nodes[p].store.take().ok_or_else(|| {
            Error::InvalidArgument(format!("primary node {p} is dead; cannot restart"))
        })?;
        let store = store.reopen()?;
        let replayed = store.db.recovery_report().wal_records_recovered;
        self.now_ns = self.now_ns.max(store.clock_ns());
        self.nodes[p].store = Some(store);
        Ok(replayed)
    }

    fn failover(&mut self, kill_ns: u64) -> Result<FailoverReport> {
        let detect_ns = self.cfg.detect_timeout_ns;
        let detect_end = kill_ns + detect_ns;
        // Voters: live replicas reachable at detection time. A
        // partitioned replica cannot be fenced, so it cannot be
        // promoted — quorum acks guarantee some reachable replica
        // holds every acked write.
        let voters: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| {
                self.nodes[i].store.is_some() && !self.net.faults().partitioned_at(i, detect_end)
            })
            .collect();
        // Bring every voter up to date with deliveries due by now.
        for &v in &voters {
            self.pump_node(v, detect_end)?;
        }
        let candidate = voters
            .iter()
            .copied()
            .max_by_key(|&v| (self.nodes[v].durable_seq, std::cmp::Reverse(v)))
            .ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "no promotable replica among {} nodes (all dead or partitioned)",
                    self.nodes.len()
                ))
            })?;
        // Fencing: two round trips with every other voter, so the old
        // epoch is sealed before the candidate serves.
        let mut fence_ns = 0u64;
        for &v in voters.iter().filter(|&&v| v != candidate) {
            let m1 = self.next_msg();
            let m2 = self.next_msg();
            let rtt = self.net.sample_latency_ns(candidate, v, m1)
                + self.net.sample_latency_ns(v, candidate, m2);
            fence_ns = fence_ns.max(2 * rtt);
        }
        let fence_end = detect_end + fence_ns;
        // Frames that land during detection + fencing still count.
        self.pump_node(candidate, fence_end)?;
        // Anything still in flight to the candidate is fenced off.
        let fenced = self.nodes[candidate].pending.len() as u64;
        self.nodes[candidate].pending.clear();
        self.stats.fenced_inflight_frames += fenced;
        // Promotion: the PR 1 crash-image + recovery path. For
        // IndexLazy the reopen replays the ship log (its id sits above
        // the WAL id horizon), materialising the replica lazily.
        self.sync_node_clock(candidate, fence_end);
        let store = self.nodes[candidate].store.take().ok_or_else(|| {
            Error::InvalidArgument(format!("candidate {candidate} lost its store mid-failover"))
        })?;
        let store = store.reopen()?;
        let replayed = store.db.recovery_report().wal_records_recovered;
        if self.cfg.mode == ShipMode::IndexLazy {
            let mut guard = store.db.ctx().lock();
            if guard.fs.has_log(SHIP_LOG_ID) {
                guard.fs.delete_log(SHIP_LOG_ID)?;
            }
        }
        let replay_ns = store.clock_ns().saturating_sub(fence_end);
        // Client redirect: one round trip to the promoted node,
        // retried on seal-front's capped backoff while it came up.
        let client = self.client_node();
        let m3 = self.next_msg();
        let m4 = self.next_msg();
        let redirect_ns = self.net.sample_latency_ns(client, candidate, m3)
            + self.net.sample_latency_ns(candidate, client, m4);
        let rto_ns = detect_ns + fence_ns + replay_ns + redirect_ns;
        let backoff = Backoff::new(self.cfg.retry_backoff_ns, self.cfg.retry_backoff_max_ns);
        let mut waited = 0u64;
        let mut retries = 0u32;
        while waited < rto_ns && retries < MAX_CLIENT_RETRIES {
            waited += backoff.delay_ns(retries);
            retries += 1;
        }
        {
            let mut guard = store.db.ctx().lock();
            let obs = guard.fs.disk_mut().obs_mut();
            obs.latency(ObsLayer::Replication, "rto_ns", rto_ns);
            obs.counter_add(ObsLayer::Replication, "failovers", 1);
            obs.counter_add(ObsLayer::Replication, "replayed_records", replayed);
            obs.counter_add(
                ObsLayer::Replication,
                "client_redirect_retries",
                u64::from(retries),
            );
        }
        self.nodes[candidate].store = Some(store);
        self.primary = candidate;
        self.now_ns = self.now_ns.max(kill_ns + rto_ns);
        Ok(FailoverReport {
            promoted: candidate,
            rto_ns,
            detect_ns,
            fence_ns,
            replay_ns,
            redirect_ns,
            replayed_records: replayed,
            client_retries: u64::from(retries),
        })
    }

    /// Rebuilds a killed node as a fresh replica and catches it up by
    /// streaming the full replicated log. Returns the frames streamed.
    pub fn rejoin(&mut self, idx: usize) -> Result<u64> {
        if self.nodes[idx].store.is_some() {
            return Err(Error::InvalidArgument(format!(
                "node {idx} is still alive; only killed nodes rejoin"
            )));
        }
        if idx == self.primary {
            return Err(Error::InvalidArgument(format!(
                "node {idx} is the primary slot; promote elsewhere first"
            )));
        }
        self.net.faults_mut().revive(idx);
        let mut node = Node::fresh(self.build_store(idx)?);
        node.eff_tail = self.now_ns;
        self.nodes[idx] = node;
        let frames: Vec<HistFrame> = self.history.clone();
        let caught = frames.len() as u64;
        let now = self.now_ns;
        for f in frames {
            self.apply_frame(
                idx,
                PendingFrame {
                    ready_ns: now,
                    last_seq: f.last_seq,
                    bytes: f.bytes,
                },
            )?;
        }
        self.stats.catchup_frames += caught;
        self.stats.applied_frames -= caught; // catch-up counted separately
        Ok(caught)
    }

    // ----- audit -----

    /// Checks every acked write against the current primary. Quorum
    /// and all-ack clusters must report zero loss after any single
    /// kill (RPO = 0); primary-only clusters lose the unshipped tail.
    pub fn audit(&mut self) -> Result<AuditReport> {
        self.pump_all(self.now_ns)?;
        let p = self.primary;
        let expected: Vec<(Vec<u8>, Option<Vec<u8>>)> = self
            .acked
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        self.sync_node_clock(p, self.now_ns);
        let store = self.nodes[p].store.as_mut().ok_or_else(|| {
            Error::InvalidArgument(format!("primary node {p} is dead; cannot audit"))
        })?;
        let mut lost = 0u64;
        for (k, v) in expected {
            if store.get(&k)? != v {
                lost += 1;
            }
        }
        Ok(AuditReport {
            acked_writes: self.acked.len() as u64,
            acked_lost: lost,
        })
    }

    /// Checks every acked write against the primary *and*, for keys the
    /// primary misserves, against every other live node. A key counts
    /// as lost only when **no** live store returns the promised value —
    /// the cluster-wide durability oracle the chaos harness asserts on:
    /// a lagging primary is a repairable inconsistency, but a key no
    /// survivor holds is unrecoverable acked-write loss.
    ///
    /// A node whose `get` *errors* counts as not holding the key — a
    /// degraded read (for example a fail-closed pointer chase into a
    /// quarantined value-log segment after media failure) is a miss on
    /// that node, not grounds to abort the audit: the question the
    /// oracle answers is whether any survivor still serves the value.
    pub fn audit_deep(&mut self) -> Result<DeepAuditReport> {
        self.pump_all(self.now_ns)?;
        let expected: Vec<(Vec<u8>, Option<Vec<u8>>)> = self
            .acked
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].store.is_some())
            .collect();
        for &i in &live {
            self.sync_node_clock(i, self.now_ns);
        }
        let p = self.primary;
        let mut primary_misses = 0u64;
        let mut lost = 0u64;
        for (k, v) in expected {
            let on_primary = match self.nodes[p].store.as_mut() {
                Some(store) => store.get(&k).is_ok_and(|got| got == v),
                None => false,
            };
            if on_primary {
                continue;
            }
            primary_misses += 1;
            let mut held = false;
            for &i in live.iter().filter(|&&i| i != p) {
                let store = self.nodes[i].store.as_mut().expect("filtered live");
                if store.get(&k).is_ok_and(|got| got == v) {
                    held = true;
                    break;
                }
            }
            if !held {
                lost += 1;
            }
        }
        Ok(DeepAuditReport {
            acked_writes: self.acked.len() as u64,
            primary_misses,
            acked_lost: lost,
        })
    }

    /// Order-independent FNV-1a digest of the primary's full key/value
    /// state — the cross-run promoted-state fingerprint determinism
    /// tests compare.
    pub fn state_hash(&mut self) -> Result<u64> {
        self.state_hash_of(self.primary)
    }

    /// [`Cluster::state_hash`] for an arbitrary live node — survivor
    /// agreement checks hash every caught-up node and compare.
    pub fn state_hash_of(&mut self, idx: usize) -> Result<u64> {
        self.sync_node_clock(idx, self.now_ns);
        let store = self.nodes[idx]
            .store
            .as_mut()
            .ok_or_else(|| Error::InvalidArgument(format!("node {idx} is dead; cannot hash")))?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let fold = |h: &mut u64, bytes: &[u8]| {
            *h = (*h ^ bytes.len() as u64).wrapping_mul(0x100_0000_01b3);
            for &b in bytes {
                *h = (*h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        };
        let mut start: Vec<u8> = Vec::new();
        loop {
            let page = store.scan(&start, 1024)?;
            for (k, v) in &page {
                fold(&mut h, k);
                fold(&mut h, v);
            }
            match page.last() {
                Some((k, _)) if page.len() == 1024 => {
                    start = k.clone();
                    start.push(0);
                }
                _ => break,
            }
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SST: u64 = 32 << 10;
    const CAP: u64 = 1 << 30;

    fn cfg(replicas: usize) -> ReplicaConfig {
        ReplicaConfig::new(replicas, SST, CAP)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:05}").into_bytes()
    }

    fn value(i: u32) -> Vec<u8> {
        format!("value-{i:05}-{}", "x".repeat(80)).into_bytes()
    }

    fn load(c: &mut Cluster, from: u32, to: u32) {
        for i in from..to {
            c.put(&key(i), &value(i)).unwrap();
        }
    }

    #[test]
    fn quorum_replication_survives_primary_kill_with_zero_rpo() {
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 40);
        let r = c.kill_primary().unwrap();
        assert_ne!(r.promoted, 0, "a replica must take over");
        assert!(r.rto_ns > 0 && r.rto_ns >= r.detect_ns);
        // Survivable: the new primary keeps accepting writes.
        load(&mut c, 40, 60);
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 60);
        assert_eq!(audit.acked_lost, 0, "quorum acks must make RPO zero");
        // Reads on the promoted primary see pre-kill values.
        let got = c.primary_store_mut().get(&key(7)).unwrap();
        assert_eq!(got, Some(value(7)));
    }

    #[test]
    fn primary_only_acks_lose_the_unshipped_tail() {
        let mut conf = cfg(2);
        conf.ack = AckPolicy::PrimaryOnly;
        conf.ship_every = 8;
        let mut c = Cluster::new(conf).unwrap();
        // 21 writes: 16 ship in two batches, 5 die in the buffer.
        load(&mut c, 0, 21);
        c.kill_primary().unwrap();
        assert_eq!(c.stats.lost_unshipped_frames, 5);
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 21);
        assert_eq!(
            audit.acked_lost, 5,
            "async shipping must lose exactly the unshipped tail"
        );
    }

    #[test]
    fn index_lazy_mode_materialises_at_promotion() {
        let mut conf = cfg(2);
        conf.mode = ShipMode::IndexLazy;
        let mut c = Cluster::new(conf).unwrap();
        load(&mut c, 0, 30);
        // Replicas hold the frames durably but have applied nothing.
        c.settle().unwrap();
        assert_eq!(c.durable_seq(1), 30);
        let r = c.kill_primary().unwrap();
        assert!(
            r.replayed_records >= 30,
            "promotion must replay the ship log ({} records)",
            r.replayed_records
        );
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_lost, 0);
        assert_eq!(c.primary_store_mut().get(&key(3)).unwrap(), Some(value(3)));
    }

    #[test]
    fn lazy_promotion_replays_more_than_hot_standby() {
        let run = |mode: ShipMode| {
            let mut conf = cfg(2);
            conf.mode = mode;
            let mut c = Cluster::new(conf).unwrap();
            load(&mut c, 0, 30);
            c.kill_primary().unwrap().replay_ns
        };
        // The lazy replica defers all materialisation to promotion, so
        // its takeover replay cannot be cheaper than the hot standby's.
        assert!(run(ShipMode::IndexLazy) >= run(ShipMode::WalApply));
    }

    #[test]
    fn rejoined_node_catches_up_and_is_promotable() {
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 20);
        let first = c.kill_primary().unwrap();
        load(&mut c, 20, 30);
        let caught = c.rejoin(0).unwrap();
        assert_eq!(caught, 30, "catch-up must stream the full history");
        assert_eq!(c.durable_seq(0), 30);
        load(&mut c, 30, 35);
        // Kill again: the rejoined node is now a legitimate candidate.
        let second = c.kill_primary().unwrap();
        assert_ne!(second.promoted, first.promoted);
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 35);
        assert_eq!(audit.acked_lost, 0);
    }

    #[test]
    fn rejoin_refuses_live_nodes() {
        let mut c = Cluster::new(cfg(1)).unwrap();
        load(&mut c, 0, 3);
        let err = c.rejoin(1).unwrap_err();
        assert!(format!("{err:?}").contains("still alive"));
    }

    // --- satellite 3: failover edge cases ---

    #[test]
    fn kill_during_group_commit_flush_is_atomic() {
        // In-flight group commit under async shipping: the whole batch
        // sits in the unshipped buffer, so the kill loses it whole.
        let mut conf = cfg(2);
        conf.ack = AckPolicy::PrimaryOnly;
        conf.ship_every = 100; // never auto-flush
        let mut c = Cluster::new(conf).unwrap();
        load(&mut c, 0, 5);
        let mut batch = WriteBatch::new();
        for i in 100..103 {
            batch.put(&key(i), &value(i));
        }
        c.write_unacked(batch).unwrap();
        c.kill_primary().unwrap();
        let present = (100..103)
            .filter(|&i| c.primary_store_mut().get(&key(i)).unwrap().is_some())
            .count();
        assert_eq!(present, 0, "an unshipped group commit dies whole");

        // Same in-flight batch under quorum shipping: it was already on
        // the wire, so the kill keeps it whole.
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 5);
        let mut batch = WriteBatch::new();
        for i in 100..103 {
            batch.put(&key(i), &value(i));
        }
        c.write_unacked(batch).unwrap();
        c.kill_primary().unwrap();
        let present = (100..103)
            .filter(|&i| c.primary_store_mut().get(&key(i)).unwrap().is_some())
            .count();
        assert_eq!(present, 3, "a shipped group commit survives whole");
    }

    #[test]
    fn kill_during_scrub_in_progress_loses_nothing_acked() {
        use lsm_core::ScrubConfig;
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 40);
        // Damage a table on the primary and start (but do not finish)
        // a scrub: the kill lands mid-repair.
        {
            let store = c.primary_store_mut();
            store.flush().unwrap();
            let f = store
                .db
                .current_version()
                .files
                .iter()
                .flatten()
                .max_by_key(|f| f.size)
                .expect("flush left no tables")
                .clone();
            let ext = store.db.ctx().lock().fs.file_extent(f.id).unwrap();
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .corrupt_extent(smr_sim::Extent::new(ext.offset + 100, 64));
            let scrub = ScrubConfig {
                bytes_per_step: 1,
                repair: true,
            };
            store.scrub_step(&scrub).unwrap();
        }
        c.kill_primary().unwrap();
        // The replica never saw the primary's local damage or its
        // half-done repair; every acked write survives.
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 40);
        assert_eq!(audit.acked_lost, 0);
    }

    #[test]
    fn double_failover_under_all_acks_keeps_every_write() {
        let mut conf = cfg(2);
        conf.ack = AckPolicy::All;
        let mut c = Cluster::new(conf).unwrap();
        load(&mut c, 0, 15);
        let first = c.kill_primary().unwrap();
        load(&mut c, 15, 25);
        let second = c.kill_primary().unwrap();
        assert_ne!(first.promoted, second.promoted);
        assert_eq!(c.stats.failovers, 2);
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 25);
        assert_eq!(audit.acked_lost, 0, "all-acks survive two failovers");
    }

    #[test]
    fn partitioned_replica_is_never_promoted() {
        let mut c = Cluster::new(cfg(2)).unwrap();
        // Node 2 is cut off before any traffic and never heals.
        c.net_mut().faults_mut().partition(2, 0, u64::MAX);
        load(&mut c, 0, 20);
        assert_eq!(c.durable_seq(2), 0, "partitioned replica saw nothing");
        let r = c.kill_primary().unwrap();
        assert_eq!(
            r.promoted, 1,
            "a partitioned replica cannot win the election"
        );
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_lost, 0);
    }

    #[test]
    fn all_replicas_gone_is_a_refused_failover() {
        let mut c = Cluster::new(cfg(1)).unwrap();
        c.net_mut().faults_mut().partition(1, 0, u64::MAX);
        // Quorum writes cannot even ack.
        let err = c.put(&key(0), &value(0)).unwrap_err();
        assert!(format!("{err:?}").contains("replica acks"));
        let err = c.kill_primary().unwrap_err();
        assert!(format!("{err:?}").contains("no promotable replica"));
    }

    #[test]
    fn vlog_cluster_replicates_kills_and_fails_over_losslessly() {
        // Key-value separation on every node: values large enough to
        // divert, shipped as original bytes and rewritten through each
        // node's own log.
        let mut conf = cfg(2).with_vlog(sealdb::VlogParams {
            segment_bytes: 32 << 10,
            value_threshold: 64,
            ..sealdb::VlogParams::default()
        });
        conf.ack = AckPolicy::All;
        let mut c = Cluster::new(conf).unwrap();
        for i in 0..40u32 {
            c.put(&key(i), &vec![(i % 250) as u8; 1024]).unwrap();
        }
        c.settle().unwrap();
        // Caught-up nodes agree on full state, pointer chases included.
        let h1 = c.state_hash_of(1).unwrap();
        let h2 = c.state_hash_of(2).unwrap();
        assert_eq!(h1, h2, "caught-up replicas must hash identically");
        assert_eq!(c.state_hash().unwrap(), h1);
        // Failover: the promoted replica serves every diverted value.
        c.kill_primary().unwrap();
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 40);
        assert_eq!(audit.acked_lost, 0, "vlog values must survive failover");
        let got = c.primary_store_mut().get(&key(11)).unwrap();
        assert_eq!(got.as_deref(), Some(vec![11u8; 1024].as_slice()));
    }

    #[test]
    fn cluster_gc_ships_fixup_sequences_and_replicas_stay_convergent() {
        // Value-log GC writes pointer fixups through the primary's
        // unaccounted write path, consuming sequence numbers. The
        // cluster-level GC step must replicate that range (as original
        // values, rewritten through each replica's own log) — running
        // store-level GC instead would leave a sequence gap that makes
        // every later frame unappliable.
        let conf = cfg(2).with_vlog(sealdb::VlogParams {
            segment_bytes: 8 << 10,
            value_threshold: 64,
            ..sealdb::VlogParams::default()
        });
        let mut c = Cluster::new(conf).unwrap();
        // Several overwrite rounds: sealed segments fill with dead
        // records, leaving live survivors for GC to relocate.
        for round in 0..6u32 {
            for i in 0..40u32 {
                c.put(&key(i), &vec![(round + 1) as u8; 512]).unwrap();
            }
        }
        c.primary_store_mut().flush().unwrap();
        let before = c.primary_store_mut().last_sequence();
        let mut steps = 0u32;
        while c.vlog_gc_step(1 << 20).unwrap() {
            steps += 1;
            assert!(steps < 256, "GC never drained");
        }
        let after = c.primary_store_mut().last_sequence();
        assert!(
            after > before,
            "GC relocated nothing; the test exercised no fixups"
        );
        // Later writes still apply everywhere and all nodes agree on
        // the full logical state — the fixup range shipped cleanly.
        for i in 100..110u32 {
            c.put(&key(i), &value(i)).unwrap();
        }
        c.advance_ns(50_000_000).unwrap();
        assert_eq!(c.durable_seq(1), c.primary_store_mut().last_sequence());
        let h0 = c.state_hash_of(0).unwrap();
        assert_eq!(h0, c.state_hash_of(1).unwrap());
        assert_eq!(h0, c.state_hash_of(2).unwrap());
    }

    #[test]
    fn index_lazy_with_vlog_is_refused() {
        let mut conf = cfg(1).with_vlog(sealdb::VlogParams::default());
        conf.mode = ShipMode::IndexLazy;
        let err = Cluster::new(conf).unwrap_err();
        assert!(format!("{err:?}").contains("IndexLazy"));
    }

    #[test]
    fn killed_replica_rejoins_and_catches_up() {
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 10);
        c.kill_replica(2).unwrap();
        assert!(!c.alive(2));
        // Quorum(1) still holds with one live replica.
        load(&mut c, 10, 25);
        let caught = c.rejoin(2).unwrap();
        assert_eq!(caught, 25, "catch-up streams the full history");
        c.settle().unwrap();
        assert_eq!(c.state_hash_of(2).unwrap(), c.state_hash().unwrap());
        // Guards: no killing the primary slot, no double kill.
        let err = c.kill_replica(c.primary_index()).unwrap_err();
        assert!(format!("{err:?}").contains("kill_primary"));
        c.kill_replica(2).unwrap();
        let err = c.kill_replica(2).unwrap_err();
        assert!(format!("{err:?}").contains("already dead"));
    }

    #[test]
    fn restart_primary_recovers_in_place_and_keeps_acked_writes() {
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 30);
        let before = c.primary_index();
        let replayed = c.restart_primary().unwrap();
        assert_eq!(c.primary_index(), before, "a restart is not a failover");
        assert_eq!(c.stats.failovers, 0);
        let _ = replayed; // sync_writes: the tail may already be in tables
        let audit = c.audit().unwrap();
        assert_eq!(audit.acked_writes, 30);
        assert_eq!(audit.acked_lost, 0, "power-cycle must lose nothing acked");
        // Still a functional primary afterwards.
        load(&mut c, 30, 35);
        assert_eq!(c.audit().unwrap().acked_lost, 0);
    }

    #[test]
    fn deep_audit_distinguishes_lagging_primary_from_true_loss() {
        // PrimaryOnly + a kill: the unshipped tail is truly lost — no
        // live node holds it — so the deep audit agrees with the
        // primary-facing audit.
        let mut conf = cfg(2);
        conf.ack = AckPolicy::PrimaryOnly;
        conf.ship_every = 8;
        let mut c = Cluster::new(conf).unwrap();
        load(&mut c, 0, 21);
        c.kill_primary().unwrap();
        let deep = c.audit_deep().unwrap();
        assert_eq!(deep.acked_writes, 21);
        assert_eq!(deep.primary_misses, 5);
        assert_eq!(deep.acked_lost, 5, "an unshipped tail is lost everywhere");
        // Quorum acks: nothing is ever lost anywhere.
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 21);
        c.kill_primary().unwrap();
        let deep = c.audit_deep().unwrap();
        assert_eq!(deep.acked_lost, 0);
        assert_eq!(deep.primary_misses, 0);
    }

    #[test]
    fn committed_but_errored_write_still_ships_and_keeps_replicas_convergent() {
        // A device fault can fail the compaction a write triggers
        // *after* the batch committed (WAL + memtable, sequence
        // advanced). The client sees the error, but the batch must
        // still ship: replicas refuse sequence gaps, so a swallowed
        // committed batch would poison every later frame. Transient
        // read faults are retried inside the filestore, so the trigger
        // here is a *persistent* read fault on a flushed table — the
        // first compaction that reads it fails.
        let mut c = Cluster::new(cfg(2)).unwrap();
        load(&mut c, 0, 10);
        {
            let store = c.primary_store_mut();
            store.flush().unwrap();
            let version = store.db.current_version();
            let file = version
                .files
                .iter()
                .flatten()
                .max_by_key(|f| f.size)
                .unwrap()
                .clone();
            let ext = store.db.ctx().lock().fs.file_extent(file.id).unwrap();
            store
                .db
                .ctx()
                .lock()
                .fs
                .disk_mut()
                .faults_mut()
                .fail_reads_permanently(smr_sim::Extent::new(ext.offset + 64, 16));
        }
        // Overwrite the damaged table's key range so it overlaps every
        // later flush and a compaction must read it.
        let mut failed = 0u32;
        for i in 10..2000 {
            if c.put(&key(i % 50), &value(i)).is_err() {
                failed += 1;
            }
        }
        assert!(failed > 0, "no write tripped over the damaged table");
        c.primary_store_mut()
            .db
            .ctx()
            .lock()
            .fs
            .disk_mut()
            .faults_mut()
            .clear_persistent_faults();
        // The stream stays healthy: later writes succeed and every
        // surviving node agrees on the full logical state, including
        // the committed-but-errored batches.
        load(&mut c, 1200, 1210);
        c.settle().unwrap();
        let h0 = c.state_hash_of(0).unwrap();
        assert_eq!(h0, c.state_hash_of(1).unwrap());
        assert_eq!(h0, c.state_hash_of(2).unwrap());
        let deep = c.audit_deep().unwrap();
        assert_eq!(deep.acked_lost, 0);
    }

    #[test]
    fn same_seed_replays_identically() {
        let run = || {
            let mut c = Cluster::new(cfg(2)).unwrap();
            load(&mut c, 0, 25);
            let r = c.kill_primary().unwrap();
            load(&mut c, 25, 30);
            c.rejoin(0).unwrap();
            load(&mut c, 30, 33);
            (r.rto_ns, c.now_ns(), c.state_hash().unwrap())
        };
        assert_eq!(run(), run());
    }
}
