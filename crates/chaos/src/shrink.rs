//! Deterministic delta-debugging reduction of failing chaos schedules.
//!
//! When a schedule trips the oracle (or panics an ordering audit), the
//! interesting question is *which handful of its events actually
//! matter*. [`shrink`] answers it with classic ddmin: partition the
//! schedule into chunks, try dropping each chunk and each chunk's
//! complement, keep any reduction that still fails, double granularity
//! when stuck — then polish with a 1-minimal single-removal sweep.
//! Every candidate is judged by replaying it on a **fresh** harness
//! with the same `(config, seed)`, so the reduction is exactly as
//! deterministic as the harness itself.
//!
//! The result is a [`ChaosRepro`]: the minimized schedule plus
//! everything needed to replay it, with a [`ChaosRepro::snippet`]
//! rendering ready to paste into a regression test (see
//! `tests/chaos_regressions.rs` at the workspace root).

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::harness::{ChaosConfig, ChaosHarness};
use crate::schedule::ChaosEvent;

/// A replayable minimized failure: config, seed and the reduced
/// schedule. Feed `events` back through [`schedule_fails`] with the
/// same config and seed to reproduce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosRepro {
    /// Harness seed the failure reproduces under.
    pub seed: u64,
    /// Harness configuration the failure reproduces under.
    pub config: ChaosConfig,
    /// The minimized schedule.
    pub events: Vec<ChaosEvent>,
}

impl ChaosRepro {
    /// Renders the schedule as a Rust `vec![..]` snippet for pinning
    /// in a regression test. `ChaosEvent`'s derived `Debug` output is
    /// valid Rust under `use seal_chaos::ChaosEvent::*;`.
    pub fn snippet(&self) -> String {
        let mut s = String::from("use seal_chaos::ChaosEvent::*;\nlet events = vec![\n");
        for ev in &self.events {
            s.push_str(&format!("    {ev:?},\n"));
        }
        s.push_str("];\n");
        s
    }
}

/// Replays `events` on a fresh harness and reports whether the run
/// fails: an oracle violation, a harness error, or a panic (debug
/// ordering audits fail by panicking). Deterministic for fixed inputs.
pub fn schedule_fails(cfg: &ChaosConfig, seed: u64, events: &[ChaosEvent]) -> bool {
    let cfg = cfg.clone();
    let events = events.to_vec();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut h = match ChaosHarness::new(cfg, seed) {
            Ok(h) => h,
            Err(_) => return true,
        };
        match h.run(&events) {
            Ok(report) => !report.violations.is_empty(),
            Err(_) => true,
        }
    }));
    outcome.unwrap_or(true)
}

/// Runs `f` with the panic hook silenced, restoring the previous hook
/// afterwards. The shrinker replays panicking candidates dozens of
/// times; without this every probe would spray a backtrace.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Minimizes a failing schedule with ddmin plus a 1-minimal polish.
/// Panics if `events` does not fail to begin with — shrinking a
/// passing schedule is always a caller bug.
pub fn shrink(cfg: &ChaosConfig, seed: u64, events: &[ChaosEvent]) -> ChaosRepro {
    with_quiet_panics(|| {
        assert!(
            schedule_fails(cfg, seed, events),
            "shrink() requires a failing schedule"
        );
        let mut current = events.to_vec();
        let mut chunks = 2usize;
        while current.len() >= 2 {
            let len = current.len();
            let n = chunks.min(len);
            let mut reduced = false;
            // Chunk boundaries: n near-equal slices of `current`.
            let bounds: Vec<(usize, usize)> =
                (0..n).map(|i| (i * len / n, (i + 1) * len / n)).collect();
            // Try each complement (drop one chunk), then each chunk
            // alone. Complements first keeps reductions large.
            for &(lo, hi) in &bounds {
                let mut cand = Vec::with_capacity(len - (hi - lo));
                cand.extend_from_slice(&current[..lo]);
                cand.extend_from_slice(&current[hi..]);
                if !cand.is_empty() && schedule_fails(cfg, seed, &cand) {
                    current = cand;
                    chunks = (chunks - 1).max(2);
                    reduced = true;
                    break;
                }
            }
            if reduced {
                continue;
            }
            for &(lo, hi) in &bounds {
                let cand = current[lo..hi].to_vec();
                if cand.len() < current.len() && schedule_fails(cfg, seed, &cand) {
                    current = cand;
                    chunks = 2;
                    reduced = true;
                    break;
                }
            }
            if reduced {
                continue;
            }
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
        // 1-minimal polish: drop single events until no single removal
        // still fails.
        let mut polished = true;
        while polished && current.len() > 1 {
            polished = false;
            for i in 0..current.len() {
                let mut cand = current.clone();
                cand.remove(i);
                if schedule_fails(cfg, seed, &cand) {
                    current = cand;
                    polished = true;
                    break;
                }
            }
        }
        ChaosRepro {
            seed,
            config: cfg.clone(),
            events: current,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ChaosConfig;
    use crate::schedule::ChaosEvent::*;

    fn buggy_cfg() -> ChaosConfig {
        ChaosConfig {
            groups: 1,
            replicas: 1,
            buggy_gc: true,
            ..ChaosConfig::default()
        }
    }

    /// The noisy schedule the shrinker demo starts from: the four
    /// events that actually matter (two full-keyspace rounds make the
    /// keys hot, a churn round kills round-2 versions inside a sealed
    /// hot segment, the drain relocates the survivors and recycles
    /// before their fixups are durable) buried in unrelated noise.
    fn noisy_schedule() -> Vec<crate::schedule::ChaosEvent> {
        vec![
            WriteBurst { base: 0, count: 60 },
            ScrubPass { group: 0 },
            WriteBurst { base: 0, count: 60 },
            TransientReads { group: 0, n: 2 },
            WriteBurst {
                base: 10,
                count: 50,
            },
            FailSlow { group: 0, mult: 3 },
            ScrubPass { group: 0 },
            GcDrain { group: 0 },
            WriteBurst {
                base: 64,
                count: 12,
            },
        ]
    }

    #[test]
    #[cfg(debug_assertions)]
    fn shrinks_the_reinjected_gc_ordering_bug_to_its_core() {
        let cfg = buggy_cfg();
        assert!(
            schedule_fails(&cfg, 7, &noisy_schedule()),
            "the noisy buggy-GC schedule must fail under ordering audits"
        );
        let repro = with_quiet_panics(|| shrink(&cfg, 7, &noisy_schedule()));
        assert!(
            repro.events.len() <= 5,
            "expected a ≤5-event core, got {:?}",
            repro.events
        );
        assert!(
            schedule_fails(&cfg, 7, &repro.events),
            "the minimized schedule must still fail"
        );
        assert!(
            repro.events.iter().any(|e| matches!(e, GcDrain { .. })),
            "the GC drain must survive shrinking: {:?}",
            repro.events
        );
        assert!(repro.snippet().contains("GcDrain"));
        // Shrinking is deterministic: a second reduction of the same
        // input lands on the same core.
        let again = with_quiet_panics(|| shrink(&cfg, 7, &noisy_schedule()));
        assert_eq!(repro, again);
        // 1-minimality: removing any single surviving event yields a
        // passing schedule.
        for i in 0..repro.events.len() {
            let mut cand = repro.events.clone();
            cand.remove(i);
            assert!(
                !schedule_fails(&cfg, 7, &cand),
                "dropping event {i} should make the schedule pass: {cand:?}"
            );
        }
    }

    #[test]
    fn correct_gc_passes_the_same_schedule() {
        let cfg = ChaosConfig {
            buggy_gc: false,
            ..buggy_cfg()
        };
        assert!(
            !schedule_fails(&cfg, 7, &noisy_schedule()),
            "the same schedule must pass once GC syncs before recycling"
        );
    }

    #[test]
    fn shrink_is_a_noop_on_an_already_minimal_failure() {
        // A schedule that fails because of a single impossible
        // expectation is already 1-minimal modulo the traffic that
        // arms it.
        let cfg = buggy_cfg();
        let core = vec![
            WriteBurst { base: 0, count: 60 },
            WriteBurst { base: 0, count: 60 },
            WriteBurst {
                base: 10,
                count: 50,
            },
            GcDrain { group: 0 },
        ];
        if !schedule_fails(&cfg, 7, &core) {
            // The harness evolved; the outer demo test will catch it.
            return;
        }
        let repro = with_quiet_panics(|| shrink(&cfg, 7, &core));
        assert!(repro.events.len() <= core.len());
        assert!(schedule_fails(&cfg, 7, &repro.events));
    }
}
