//! # seal-chaos — cluster-wide chaos harness for the SEALDB stack
//!
//! Three pieces, layered:
//!
//! * [`schedule`] — seeded random **fault schedules**: interleavings
//!   of serving traffic with device faults (torn writes, corruption,
//!   latent sector errors, band failures, fail-slow), cluster faults
//!   (partitions, kills, revives, failovers, primary restarts) and
//!   maintenance chaos (GC drains, scrub passes, shard migrations).
//!   Same seed ⇒ same schedule, always.
//! * [`harness`] — the orchestrator that applies a schedule to a real
//!   composed deployment (replicated, sharded, vlog-enabled SEALDB
//!   stores on simulated SMR disks) and then runs the **end-to-end
//!   durability oracle**: no acked write lost, promised values served
//!   across migrations, survivor state-hash agreement, scrub
//!   remediation accounting, and (in debug builds) zero ordering-audit
//!   panics.
//! * [`shrink`] — **delta-debugging reduction**: a failing schedule is
//!   minimized to the handful of events that matter, yielding a
//!   replayable [`ChaosRepro`] ready to pin as a regression test.
//!
//! Everything is deterministic on top of the repository's simulated
//! clock and seeded RNG discipline; there is no wall clock and no
//! ambient randomness anywhere in this crate.

/// Orchestrator + end-to-end durability oracle over a composed deployment.
pub mod harness;
/// Seeded random fault-schedule generation (same seed ⇒ same schedule).
pub mod schedule;
/// Delta-debugging minimization of failing schedules into replayable repros.
pub mod shrink;

pub use harness::{ChaosConfig, ChaosHarness, Coverage, OracleReport, BUCKETS, KEYSPACE};
pub use schedule::{generate, ChaosEvent, SplitMix};
pub use shrink::{schedule_fails, shrink, ChaosRepro};
