//! The chaos orchestrator and its end-to-end durability oracle.
//!
//! A [`ChaosHarness`] composes the full stack the way production
//! would: several replication groups (each a [`seal_replica::Cluster`]
//! of vlog-enabled SEALDB stores), a consistent-hash ring routing
//! client keys across groups, and a migration override table on top of
//! the ring. Events from a [`crate::ChaosEvent`] schedule are applied
//! one by one on the shared simulated timeline; the harness tracks
//! every value it promised a client in a global `promised` map.
//!
//! After the schedule, [`ChaosHarness::check`] runs the oracle:
//!
//! 1. **No acked loss** — every group's [`Cluster::audit_deep`] must
//!    report zero acked writes that *no* survivor holds (a lagging or
//!    damaged primary is a repairable miss, not loss).
//! 2. **Routing durability** — every promised key must be served with
//!    its promised value by some live node of the group it currently
//!    routes to, across migrations (the vlog pointer path included:
//!    reads resolve through each node's own value log).
//! 3. **Survivor agreement** — live undamaged nodes of a group must
//!    agree on a full-state hash (nodes that took injected permanent
//!    device damage are excluded: quarantine legitimately sheds data
//!    locally, which is exactly what replicas are for).
//! 4. **Scrub accounting** — every corrupt block a scrubber found must
//!    be remediated: `corrected + lost + files_quarantined ≥ corrupt`.
//! 5. **Ordering audits** — in debug builds the per-store
//!    [`smr_sim::OrderingAuditor`] panics on any ack/durability/recycle
//!    ordering violation; a panic fails the run (and is what the
//!    shrinker minimizes on).
//!
//! Everything is deterministic: the same `(config, seed, schedule)`
//! produces byte-identical [`OracleReport`]s.

use std::collections::{BTreeMap, BTreeSet};

use lsm_core::{Result, ScrubConfig, ScrubReport, WriteBatch};
use seal_replica::{Cluster, ReplicaConfig};
use seal_shard::HashRing;
use sealdb::{Store, VlogParams};
use smr_sim::{ClusterFaultClass, DeviceFaultClass, Extent, FaultPlan};

use crate::schedule::ChaosEvent;

/// Number of distinct client keys the traffic model cycles over.
pub const KEYSPACE: u32 = 128;

/// Number of routing buckets (key index modulo this); migration moves
/// whole buckets between groups.
pub const BUCKETS: u32 = 16;

/// Shape of one chaos run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Replication groups (the "shards" of the composed deployment).
    pub groups: usize,
    /// Replicas per group (each group runs `replicas + 1` nodes).
    pub replicas: usize,
    /// Schedule length the generator aims for.
    pub events: usize,
    /// SSTable size of every node store.
    pub sstable_size: u64,
    /// Disk capacity of every node store.
    pub disk_capacity: u64,
    /// Route value-log GC through the deliberately broken
    /// retire-before-sync entry point
    /// (`Store::vlog_gc_step_retire_before_sync`) — the re-injected
    /// PR 8 regression the shrinker demo minimizes down to.
    pub buggy_gc: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            groups: 2,
            replicas: 2,
            events: 24,
            sstable_size: 32 << 10,
            disk_capacity: 1 << 30,
            buggy_gc: false,
        }
    }
}

/// Which fault classes a run actually injected, by stable class name
/// (see [`DeviceFaultClass::name`] / [`ClusterFaultClass::name`]).
/// The CI smoke gate requires a minimum spread of classes so "chaos
/// passed" can never mean "chaos did nothing".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Injections per device fault class.
    pub device: BTreeMap<&'static str, u64>,
    /// Injections per cluster fault class.
    pub cluster: BTreeMap<&'static str, u64>,
}

impl Coverage {
    /// Records one device-fault injection.
    pub fn record_device(&mut self, class: DeviceFaultClass) {
        *self.device.entry(class.name()).or_insert(0) += 1;
    }

    /// Records one cluster-fault injection.
    pub fn record_cluster(&mut self, class: ClusterFaultClass) {
        *self.cluster.entry(class.name()).or_insert(0) += 1;
    }

    /// Distinct device fault classes injected.
    pub fn device_classes(&self) -> usize {
        self.device.len()
    }

    /// Distinct cluster fault classes injected.
    pub fn cluster_classes(&self) -> usize {
        self.cluster.len()
    }

    /// Folds another coverage tally into this one.
    pub fn merge(&mut self, other: &Coverage) {
        for (k, v) in &other.device {
            *self.device.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.cluster {
            *self.cluster.entry(k).or_insert(0) += v;
        }
    }
}

/// What the oracle concluded about one finished schedule. Violations
/// empty ⇒ the run upheld every invariant; anything else is a
/// reproducible bug (feed the schedule to [`crate::shrink`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Replica groups in the run.
    pub groups: usize,
    /// Schedule events actually applied.
    pub events_applied: u64,
    /// Schedule events skipped as inapplicable (e.g. a kill with no
    /// live victim after shrinking removed its neighbours).
    pub events_skipped: u64,
    /// Acked client writes across all groups (per-group audit sets).
    pub acked_writes: u64,
    /// Acked keys some group's primary misserved but a survivor held —
    /// repairable inconsistency, not loss.
    pub primary_misses: u64,
    /// Acked keys no survivor of their group holds. Must be zero.
    pub acked_lost: u64,
    /// Promised keys the routing-level check verified.
    pub promised_checked: u64,
    /// Promised keys unreadable on every live node of their routed
    /// group. Must be zero.
    pub promised_lost: u64,
    /// Groups where ≥ 2 undamaged survivors were compared for
    /// state-hash agreement.
    pub hash_groups_checked: u64,
    /// Lifetime scrub counters summed over group primaries.
    pub scrub_blocks_corrupt: u64,
    /// Corrupt blocks recovered by correction or salvage relocation.
    pub scrub_blocks_corrected: u64,
    /// Blocks lost outright.
    pub scrub_blocks_lost: u64,
    /// Files rebuilt onto healthy space.
    pub scrub_files_repaired: u64,
    /// Files or value-log segments quarantined.
    pub scrub_files_quarantined: u64,
    /// Failovers performed across all groups.
    pub failovers: u64,
    /// Fault classes injected.
    pub coverage: Coverage,
    /// Invariant violations, in detection order. Empty ⇒ pass.
    pub violations: Vec<String>,
}

/// The chaos orchestrator. Build with [`ChaosHarness::new`], drive
/// with [`ChaosHarness::run`] (one-shot: a harness serves one
/// schedule, then its oracle verdict).
#[derive(Debug)]
pub struct ChaosHarness {
    cfg: ChaosConfig,
    groups: Vec<Cluster>,
    ring: HashRing,
    /// Migration overrides: bucket → group, shadowing the ring.
    overrides: BTreeMap<u32, usize>,
    /// Every value promised to a client, by key index (`None` = a
    /// promised deletion).
    promised: BTreeMap<u32, Option<Vec<u8>>>,
    /// Nodes excluded from state-hash agreement: they took injected
    /// permanent device damage (quarantine sheds data locally) or a
    /// write error left them ahead of the shipped frame stream.
    damaged: BTreeSet<(usize, usize)>,
    /// Per group, the latest scheduled partition heal bound.
    partition_end: Vec<u64>,
    /// Monotonic operation counter feeding key values and probes.
    seq: u64,
    coverage: Coverage,
    applied: u64,
    skipped: u64,
    violations: Vec<String>,
}

/// Runs `f` against the primary's device fault plan.
fn with_primary_faults<R>(c: &mut Cluster, f: impl FnOnce(&mut FaultPlan) -> R) -> R {
    let store = c.primary_store_mut();
    let ctx = store.db.ctx();
    let mut guard = ctx.lock();
    f(guard.fs.disk_mut().faults_mut())
}

/// The on-disk extent of the primary's largest live table, if any.
fn largest_table_extent(store: &mut Store) -> Option<Extent> {
    let version = store.db.current_version();
    let file = version
        .files
        .iter()
        .flatten()
        .max_by_key(|f| f.size)?
        .clone();
    store.db.ctx().lock().fs.file_extent(file.id).ok()
}

/// Flushes with retries (a transient read fault can fail the
/// compaction that rides along). True once a flush succeeded.
fn flush_with_retry(store: &mut Store) -> bool {
    for _ in 0..4 {
        if store.flush().is_ok() {
            return true;
        }
    }
    false
}

/// Runs repairing scrub steps until one full pass completes. False if
/// the pass could not be driven to completion.
fn scrub_until_full_pass(store: &mut Store) -> bool {
    let cfg = ScrubConfig {
        bytes_per_step: 1 << 20,
        repair: true,
    };
    let before = store.scrub_report().full_passes;
    let mut errs = 0u32;
    for _ in 0..512 {
        if store.scrub_step(&cfg).is_err() {
            // Transient read faults fail a step; the retried step
            // re-reads the same offsets and succeeds.
            errs += 1;
            if errs > 16 {
                return false;
            }
        }
        if store.scrub_report().full_passes > before {
            return true;
        }
    }
    false
}

/// Reads `key` on node `idx`, retrying through the transient-fault
/// budget (each distinct offset fails at most once).
fn get_with_retry(c: &mut Cluster, idx: usize, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut last = None;
    for _ in 0..4 {
        match c.get_of(idx, key) {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("retry loop ran at least once"))
}

/// Client key bytes for key index `idx`.
pub fn key_bytes(idx: u32) -> Vec<u8> {
    format!("k{idx:05}").into_bytes()
}

/// Deterministic value payload for key `idx` at operation `seq` —
/// large enough to divert through the value log.
pub fn value_bytes(idx: u32, seq: u64) -> Vec<u8> {
    let mut v = format!("value-{idx:05}-{seq:010}-").into_bytes();
    v.resize(400, b'x');
    v
}

impl ChaosHarness {
    /// Builds `cfg.groups` fresh replication groups, each node running
    /// key-value separation, with per-group seeds derived from `seed`.
    pub fn new(cfg: ChaosConfig, seed: u64) -> Result<ChaosHarness> {
        assert!(cfg.groups >= 1, "a chaos run needs at least one group");
        let mut ring = HashRing::new(8);
        let mut groups = Vec::with_capacity(cfg.groups);
        for g in 0..cfg.groups {
            ring.add_shard(g);
            let mut rc = ReplicaConfig::new(cfg.replicas, cfg.sstable_size, cfg.disk_capacity);
            rc.seed = crate::schedule::SplitMix::new(seed ^ (g as u64 + 1)).next_u64();
            let rc = rc.with_vlog(VlogParams {
                segment_bytes: 32 << 10,
                value_threshold: 64,
                ..VlogParams::default()
            });
            groups.push(Cluster::new(rc)?);
        }
        Ok(ChaosHarness {
            partition_end: vec![0; cfg.groups],
            cfg,
            groups,
            ring,
            overrides: BTreeMap::new(),
            promised: BTreeMap::new(),
            damaged: BTreeSet::new(),
            seq: 0,
            coverage: Coverage::default(),
            applied: 0,
            skipped: 0,
            violations: Vec::new(),
        })
    }

    /// Direct access to one replication group — for tests and
    /// debugging tools that need to inspect cluster internals between
    /// events; schedules themselves only go through
    /// [`ChaosHarness::apply_event`].
    pub fn group_mut(&mut self, g: usize) -> &mut Cluster {
        &mut self.groups[g]
    }

    /// The group key index `idx` currently routes to.
    pub fn route(&self, idx: u32) -> usize {
        let bucket = idx % BUCKETS;
        match self.overrides.get(&bucket) {
            Some(&g) => g,
            None => {
                let g = self.ring.route(format!("bucket{bucket:03}").as_bytes());
                g % self.cfg.groups
            }
        }
    }

    /// Applies the whole schedule, then runs the oracle.
    pub fn run(&mut self, events: &[ChaosEvent]) -> Result<OracleReport> {
        for ev in events {
            self.apply_event(ev)?;
        }
        self.check()
    }

    /// Applies one event. Returns whether it was applicable (an event
    /// whose precondition vanished — e.g. a kill with no live victim
    /// after shrinking — is skipped, never an error).
    pub fn apply_event(&mut self, ev: &ChaosEvent) -> Result<bool> {
        let done = match *ev {
            ChaosEvent::WriteBurst { base, count } => self.ev_write_burst(base, count)?,
            ChaosEvent::TornWrite { group } => self.ev_torn_write(group % self.cfg.groups)?,
            ChaosEvent::CorruptExtent { group } => {
                self.ev_corrupt_extent(group % self.cfg.groups)?
            }
            ChaosEvent::TransientReads { group, n } => {
                self.ev_transient_reads(group % self.cfg.groups, n)?
            }
            ChaosEvent::UnrecoverableRead { group } => {
                self.ev_permanent_damage(group % self.cfg.groups, false)?
            }
            ChaosEvent::BandFailure { group } => {
                self.ev_permanent_damage(group % self.cfg.groups, true)?
            }
            ChaosEvent::FailSlow { group, mult } => {
                self.ev_fail_slow(group % self.cfg.groups, mult)?
            }
            ChaosEvent::Partition {
                group,
                pick,
                dur_ns,
            } => self.ev_partition(group % self.cfg.groups, pick, dur_ns)?,
            ChaosEvent::KillReplica { group, pick } => {
                self.ev_kill_replica(group % self.cfg.groups, pick)?
            }
            ChaosEvent::Revive { group } => self.ev_revive(group % self.cfg.groups)?,
            ChaosEvent::Failover { group } => self.ev_failover(group % self.cfg.groups)?,
            ChaosEvent::RestartPrimary { group } => {
                self.groups[group % self.cfg.groups].restart_primary()?;
                true
            }
            ChaosEvent::GcDrain { group } => self.ev_gc_drain(group % self.cfg.groups)?,
            ChaosEvent::ScrubPass { group } => self.ev_scrub_pass(group % self.cfg.groups)?,
            ChaosEvent::Migrate { bucket, to } => self.ev_migrate(bucket, to)?,
        };
        if done {
            self.applied += 1;
            if let Some(c) = ev.device_class() {
                self.coverage.record_device(c);
            }
            for &c in ev.cluster_classes() {
                self.coverage.record_cluster(c);
            }
        } else {
            self.skipped += 1;
        }
        Ok(done)
    }

    fn ev_write_burst(&mut self, base: u32, count: u32) -> Result<bool> {
        for i in 0..count {
            let idx = (base.wrapping_add(i)) % KEYSPACE;
            self.seq += 1;
            let g = self.route(idx);
            let key = key_bytes(idx);
            let delete = self.seq.is_multiple_of(7);
            let value = if delete {
                None
            } else {
                Some(value_bytes(idx, self.seq))
            };
            let res = match &value {
                None => self.groups[g].delete(&key),
                Some(v) => self.groups[g].put(&key, v),
            };
            if res.is_ok() {
                self.promised.insert(idx, value);
            }
            // A write error promises nothing, and the cluster keeps
            // primary and replicas convergent even then: a batch that
            // committed locally before maintenance failed still ships,
            // so there is no divergence to track here.
        }
        Ok(true)
    }

    fn ev_torn_write(&mut self, g: usize) -> Result<bool> {
        let c = &mut self.groups[g];
        with_primary_faults(c, |f| f.tear_write_after(0));
        self.seq += 1;
        let probe_key = format!("torn-probe-{:08}", self.seq).into_bytes();
        let mut probe_value = format!("torn-{:08}-", self.seq).into_bytes();
        probe_value.resize(200, b't');
        let mut b = WriteBatch::new();
        b.put(&probe_key, &probe_value);
        let res = c.write_unacked(b);
        with_primary_faults(c, |f| f.disarm_torn_writes());
        c.restart_primary()?;
        if res.is_ok() {
            self.violations.push(format!(
                "group {g}: torn write was armed but the probe write succeeded"
            ));
        }
        // If the torn write hit a different device write than the
        // probe's own WAL record, recovery may legitimately resurrect
        // the probe on the primary; no replica ever saw it, so the
        // node leaves the survivor-agreement set.
        let p = c.primary_index();
        if get_with_retry(c, p, &probe_key)?.is_some() {
            self.damaged.insert((g, p));
        }
        Ok(true)
    }

    fn ev_corrupt_extent(&mut self, g: usize) -> Result<bool> {
        let c = &mut self.groups[g];
        flush_with_retry(c.primary_store_mut());
        let Some(ext) = largest_table_extent(c.primary_store_mut()) else {
            return Ok(false);
        };
        if ext.len < 256 {
            return Ok(false);
        }
        // ≤ 64 damaged bytes ⇒ one flipped bit per overlapped 4 KiB
        // block ⇒ single-bit-correctable.
        with_primary_faults(c, |f| f.corrupt_extent(Extent::new(ext.offset + 100, 8)));
        let before = *c.primary_store_mut().scrub_report();
        let completed = scrub_until_full_pass(c.primary_store_mut());
        with_primary_faults(c, |f| f.clear_corruption());
        let after = *c.primary_store_mut().scrub_report();
        if !completed {
            self.violations.push(format!(
                "group {g}: repair scrub after corruption never finished a pass"
            ));
        }
        if after.blocks_corrupt == before.blocks_corrupt {
            self.violations.push(format!(
                "group {g}: planted corruption was not detected by scrub"
            ));
        } else if after.blocks_corrected == before.blocks_corrected
            && after.blocks_lost == before.blocks_lost
            && after.files_quarantined == before.files_quarantined
        {
            self.violations.push(format!(
                "group {g}: detected corruption was left unremediated"
            ));
        }
        if after.blocks_lost > before.blocks_lost
            || after.files_quarantined > before.files_quarantined
        {
            let p = c.primary_index();
            self.damaged.insert((g, p));
        }
        Ok(true)
    }

    fn ev_transient_reads(&mut self, g: usize, n: u64) -> Result<bool> {
        let budget = n.clamp(1, 3);
        let c = &mut self.groups[g];
        with_primary_faults(c, |f| f.fail_reads_transiently(budget));
        // Absorb most of the budget right away with throwaway reads of
        // promised keys; whatever survives is soaked up by the retry
        // discipline every later read path uses.
        let keys: Vec<u32> = self
            .promised
            .keys()
            .copied()
            .filter(|&idx| self.route(idx) == g)
            .take(4)
            .collect();
        let c = &mut self.groups[g];
        let p = c.primary_index();
        for _ in 0..2 {
            for &idx in &keys {
                let _ = c.get_of(p, &key_bytes(idx));
            }
        }
        Ok(true)
    }

    fn ev_permanent_damage(&mut self, g: usize, whole_band: bool) -> Result<bool> {
        let c = &mut self.groups[g];
        flush_with_retry(c.primary_store_mut());
        let Some(ext) = largest_table_extent(c.primary_store_mut()) else {
            return Ok(false);
        };
        if ext.len < 4096 {
            return Ok(false);
        }
        with_primary_faults(c, |f| {
            if whole_band {
                f.fail_band(ext);
            } else {
                f.fail_reads_permanently(Extent::new(ext.offset + ext.len / 2, 16));
            }
        });
        let before = *c.primary_store_mut().scrub_report();
        let completed = scrub_until_full_pass(c.primary_store_mut());
        // The drive "remaps" the bad region once scrub has moved or
        // quarantined everything that lived there; the fenced extents
        // stay out of the allocator regardless.
        with_primary_faults(c, |f| f.clear_persistent_faults());
        let after = *c.primary_store_mut().scrub_report();
        let kind = if whole_band {
            "band failure"
        } else {
            "latent sector error"
        };
        if !completed {
            self.violations.push(format!(
                "group {g}: repair scrub after {kind} never finished a pass"
            ));
        }
        let remediated = after.blocks_lost > before.blocks_lost
            || after.files_repaired > before.files_repaired
            || after.files_quarantined > before.files_quarantined
            || after.blocks_corrected > before.blocks_corrected;
        if !remediated {
            self.violations.push(format!(
                "group {g}: planted {kind} left no trace in scrub accounting"
            ));
        }
        // Quarantine/repair may shed data on this node; replicas hold it.
        let p = c.primary_index();
        self.damaged.insert((g, p));
        Ok(true)
    }

    fn ev_fail_slow(&mut self, g: usize, mult: u64) -> Result<bool> {
        let c = &mut self.groups[g];
        let ext =
            largest_table_extent(c.primary_store_mut()).unwrap_or_else(|| Extent::new(0, 1 << 20));
        with_primary_faults(c, |f| f.slow_reads(ext, mult.clamp(2, 16)));
        Ok(true)
    }

    fn live_replica_choices(c: &Cluster) -> Vec<usize> {
        let p = c.primary_index();
        (0..=c.config().replicas)
            .filter(|&i| i != p && c.alive(i))
            .collect()
    }

    fn ev_partition(&mut self, g: usize, pick: usize, dur_ns: u64) -> Result<bool> {
        let c = &mut self.groups[g];
        let choices = Self::live_replica_choices(c);
        if choices.is_empty() {
            return Ok(false);
        }
        let node = choices[pick % choices.len()];
        let from = c.now_ns();
        let to = from + dur_ns.clamp(1_000_000, 200_000_000);
        c.net_mut().faults_mut().partition(node, from, to);
        self.partition_end[g] = self.partition_end[g].max(to);
        Ok(true)
    }

    fn ev_kill_replica(&mut self, g: usize, pick: usize) -> Result<bool> {
        let c = &mut self.groups[g];
        let choices = Self::live_replica_choices(c);
        if choices.is_empty() {
            return Ok(false);
        }
        let node = choices[pick % choices.len()];
        c.kill_replica(node)?;
        Ok(true)
    }

    fn ev_revive(&mut self, g: usize) -> Result<bool> {
        // Heal first: catch-up streaming brings the rejoined node fully
        // up to date, so frames still buffered behind a partition must
        // drain before anything else judges survivor state.
        let dt = {
            let c = &self.groups[g];
            self.partition_end[g].saturating_sub(c.now_ns()) + 5_000_000
        };
        let c = &mut self.groups[g];
        c.advance_ns(dt)?;
        let p = c.primary_index();
        let mut any = false;
        for i in 0..=c.config().replicas {
            if i != p && !c.alive(i) {
                c.rejoin(i)?;
                self.damaged.remove(&(g, i));
                any = true;
            }
        }
        // A revive with nothing dead still healed partitions; count it
        // applied so coverage reflects the generator's intent.
        let _ = any;
        Ok(true)
    }

    fn ev_failover(&mut self, g: usize) -> Result<bool> {
        let c = &mut self.groups[g];
        let p = c.primary_index();
        let detect_end = c.now_ns() + c.config().detect_timeout_ns;
        let replicas = c.config().replicas;
        let promotable = (0..=replicas)
            .any(|i| i != p && c.alive(i) && !c.net_mut().faults().partitioned_at(i, detect_end));
        if !promotable {
            return Ok(false);
        }
        c.kill_primary()?;
        Ok(true)
    }

    fn ev_gc_drain(&mut self, g: usize) -> Result<bool> {
        let buggy = self.cfg.buggy_gc;
        let c = &mut self.groups[g];
        flush_with_retry(c.primary_store_mut());
        let mut errs = 0u32;
        for _ in 0..64 {
            // The correct path is the *cluster-level* GC step, which
            // replicates the sequence range the fixups consume. The
            // buggy knob deliberately runs store-level GC with the
            // retire-before-sync bug — in debug builds the ordering
            // auditor panics, and either way the unshipped sequence
            // range diverges the replicas, so the oracle fails too.
            let step = if buggy {
                c.primary_store_mut()
                    .vlog_gc_step_retire_before_sync(1 << 20)
            } else {
                c.vlog_gc_step(1 << 20)
            };
            match step {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => {
                    errs += 1;
                    if errs > 4 {
                        break;
                    }
                }
            }
        }
        Ok(true)
    }

    fn ev_scrub_pass(&mut self, g: usize) -> Result<bool> {
        let store = self.groups[g].primary_store_mut();
        if !scrub_until_full_pass(store) {
            self.violations
                .push(format!("group {g}: scheduled scrub never finished a pass"));
        }
        Ok(true)
    }

    fn ev_migrate(&mut self, bucket: u32, to: usize) -> Result<bool> {
        let b = bucket % BUCKETS;
        let to = to % self.cfg.groups;
        if self.route(b) == to {
            return Ok(false);
        }
        let entries: Vec<(u32, Option<Vec<u8>>)> = self
            .promised
            .iter()
            .filter(|(idx, _)| *idx % BUCKETS == b)
            .map(|(idx, v)| (*idx, v.clone()))
            .collect();
        for (idx, value) in entries {
            let key = key_bytes(idx);
            let res = match &value {
                Some(v) => self.groups[to].put(&key, v),
                None => self.groups[to].delete(&key),
            };
            if res.is_err() {
                // Abort: the bucket keeps routing to its old group,
                // which still holds every promised value; the target
                // group stays internally convergent (committed batches
                // ship even when the write errors).
                return Ok(false);
            }
        }
        self.overrides.insert(b, to);
        Ok(true)
    }

    /// Runs the epilogue (heal, rejoin, settle, verification scrub)
    /// and the oracle. Consumes nothing: the harness can still be
    /// inspected afterwards, but `check` is meant to run once, after
    /// the full schedule.
    pub fn check(&mut self) -> Result<OracleReport> {
        let mut report = OracleReport {
            groups: self.cfg.groups,
            events_applied: self.applied,
            events_skipped: self.skipped,
            coverage: self.coverage.clone(),
            violations: std::mem::take(&mut self.violations),
            ..OracleReport::default()
        };
        for g in 0..self.cfg.groups {
            // 1. Clear injected device fault state (scrub already
            //    realized permanent damage as quarantine/repair when
            //    it was planted).
            let c = &mut self.groups[g];
            with_primary_faults(c, |f| {
                f.disarm_torn_writes();
                f.clear_corruption();
                f.clear_fail_slow();
                f.clear_persistent_faults();
            });
            // 2. Step past every scheduled partition heal bound so
            //    buffered frames drain, then rejoin the dead.
            let dt = self.partition_end[g].saturating_sub(c.now_ns()) + 5_000_000;
            c.advance_ns(dt)?;
            let p = c.primary_index();
            for i in 0..=c.config().replicas {
                if i != p && !c.alive(i) {
                    c.rejoin(i)?;
                    self.damaged.remove(&(g, i));
                }
            }
            c.settle()?;
            // 3. Verification scrub over tables and value log.
            if !scrub_until_full_pass(c.primary_store_mut()) {
                report
                    .violations
                    .push(format!("group {g}: epilogue scrub never finished a pass"));
            }
            // 4. Durability: no acked write may be lost cluster-wide.
            let mut deep = None;
            let mut audit_err = None;
            for _ in 0..5 {
                match c.audit_deep() {
                    Ok(r) => {
                        deep = Some(r);
                        break;
                    }
                    Err(e) => audit_err = Some(e),
                }
            }
            match deep {
                Some(r) => {
                    report.acked_writes += r.acked_writes;
                    report.primary_misses += r.primary_misses;
                    report.acked_lost += r.acked_lost;
                    if r.acked_lost > 0 {
                        report.violations.push(format!(
                            "group {g}: {} acked writes lost on every survivor",
                            r.acked_lost
                        ));
                    }
                }
                None => report.violations.push(format!(
                    "group {g}: deep audit kept failing: {}",
                    audit_err.map_or_else(|| "no error captured".to_string(), |e| e.to_string())
                )),
            }
            // 5. Survivor agreement among undamaged live nodes.
            let mut hashes: Vec<(usize, u64)> = Vec::new();
            for i in 0..=c.config().replicas {
                if !c.alive(i) || self.damaged.contains(&(g, i)) {
                    continue;
                }
                for _ in 0..4 {
                    if let Ok(h) = c.state_hash_of(i) {
                        hashes.push((i, h));
                        break;
                    }
                }
            }
            if hashes.len() >= 2 {
                report.hash_groups_checked += 1;
                if hashes.iter().any(|&(_, h)| h != hashes[0].1) {
                    report.violations.push(format!(
                        "group {g}: survivor state hashes diverge: {hashes:?}"
                    ));
                }
            }
            // 6. Scrub accounting rollup.
            let s: ScrubReport = *c.primary_store_mut().scrub_report();
            report.scrub_blocks_corrupt += s.blocks_corrupt;
            report.scrub_blocks_corrected += s.blocks_corrected;
            report.scrub_blocks_lost += s.blocks_lost;
            report.scrub_files_repaired += s.files_repaired;
            report.scrub_files_quarantined += s.files_quarantined;
            report.failovers += c.stats.failovers;
        }
        // 7. Routing-level durability: the promised value must be
        //    served by some live node of the group the key routes to
        //    today, across any migrations.
        let expected: Vec<(u32, Option<Vec<u8>>)> =
            self.promised.iter().map(|(k, v)| (*k, v.clone())).collect();
        for (idx, want) in expected {
            let g = self.route(idx);
            let key = key_bytes(idx);
            let c = &mut self.groups[g];
            let p = c.primary_index();
            let mut order = vec![p];
            order.extend((0..=c.config().replicas).filter(|&i| i != p));
            let mut held = false;
            for i in order {
                if !c.alive(i) {
                    continue;
                }
                if matches!(get_with_retry(c, i, &key), Ok(v) if v == want) {
                    held = true;
                    break;
                }
            }
            report.promised_checked += 1;
            if !held {
                report.promised_lost += 1;
            }
        }
        if report.promised_lost > 0 {
            report.violations.push(format!(
                "{} of {} promised keys unreadable on their routed group",
                report.promised_lost, report.promised_checked
            ));
        }
        // 8. Every corrupt block found must be remediated somewhere:
        //    corrected in place, counted lost, or quarantined with its
        //    file/segment.
        if report.scrub_blocks_corrected + report.scrub_blocks_lost + report.scrub_files_quarantined
            < report.scrub_blocks_corrupt
        {
            report.violations.push(format!(
                "scrub accounting leaks: corrupt={} > corrected={} + lost={} + quarantined={}",
                report.scrub_blocks_corrupt,
                report.scrub_blocks_corrected,
                report.scrub_blocks_lost,
                report.scrub_files_quarantined
            ));
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::generate;

    fn small() -> ChaosConfig {
        ChaosConfig {
            events: 16,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn generated_schedules_uphold_the_oracle() {
        for seed in 1..=3u64 {
            let cfg = small();
            let events = generate(seed, &cfg);
            let mut h = ChaosHarness::new(cfg, seed).unwrap();
            let report = h.run(&events).unwrap();
            assert!(
                report.violations.is_empty(),
                "seed {seed}: {:?}",
                report.violations
            );
            assert!(report.acked_writes > 0, "seed {seed} served no traffic");
            assert_eq!(report.acked_lost, 0);
            assert_eq!(report.promised_lost, 0);
        }
    }

    #[test]
    fn same_seed_same_schedule_same_report() {
        let cfg = small();
        let events = generate(11, &cfg);
        let r1 = ChaosHarness::new(cfg.clone(), 11)
            .unwrap()
            .run(&events)
            .unwrap();
        let r2 = ChaosHarness::new(cfg, 11).unwrap().run(&events).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn migration_moves_a_bucket_and_keeps_promises() {
        let cfg = ChaosConfig {
            events: 4,
            ..ChaosConfig::default()
        };
        let mut h = ChaosHarness::new(cfg, 5).unwrap();
        h.apply_event(&ChaosEvent::WriteBurst { base: 0, count: 64 })
            .unwrap();
        // Move bucket 3 to whichever group it does not live on.
        let before = h.route(3);
        let to = (before + 1) % 2;
        assert!(h
            .apply_event(&ChaosEvent::Migrate { bucket: 3, to })
            .unwrap());
        assert_eq!(h.route(3), to);
        let report = h.check().unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.promised_lost, 0);
    }

    #[test]
    fn composed_kill_partition_and_device_damage_pass_the_oracle() {
        // A hand-built worst-plausible composition: traffic, a replica
        // kill in group 0, a partition in group 1, permanent device
        // damage on group 0's primary, a failover in group 1 after its
        // partition heals, GC and scrub in the middle, migration under
        // the kill, then more traffic.
        let cfg = ChaosConfig {
            events: 0,
            ..ChaosConfig::default()
        };
        use ChaosEvent::*;
        let events = vec![
            WriteBurst { base: 0, count: 80 },
            KillReplica { group: 0, pick: 0 },
            Partition {
                group: 1,
                pick: 0,
                dur_ns: 20_000_000,
            },
            WriteBurst {
                base: 16,
                count: 48,
            },
            UnrecoverableRead { group: 0 },
            GcDrain { group: 0 },
            Migrate { bucket: 2, to: 1 },
            Migrate { bucket: 5, to: 0 },
            ScrubPass { group: 1 },
            Revive { group: 1 },
            Failover { group: 1 },
            TornWrite { group: 0 },
            WriteBurst {
                base: 40,
                count: 48,
            },
            Revive { group: 0 },
            Revive { group: 1 },
        ];
        let mut h = ChaosHarness::new(cfg, 99).unwrap();
        let report = h.run(&events).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.failovers >= 1);
        assert!(report.coverage.device_classes() >= 2);
        assert!(report.coverage.cluster_classes() >= 3);
    }
}
