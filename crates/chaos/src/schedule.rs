//! Seeded random fault schedules.
//!
//! A schedule is a flat list of [`ChaosEvent`]s: serving traffic,
//! device faults, cluster faults, and maintenance operations (GC,
//! scrub, migration, failover) interleaved in one deterministic
//! sequence. The generator draws events from a seeded [`SplitMix`]
//! stream under a *disruption-credit* rule: at most one outstanding
//! availability-reducing fault per replica group (a killed replica, an
//! open partition, or the dead old primary after a failover), so a
//! quorum-1 cluster can always meet its ack policy and every oracle
//! violation found under chaos is a genuine bug rather than a
//! scheduled outage.
//!
//! Event parameters are abstract (a `pick` index is resolved against
//! the live node set at execution time), which keeps generation purely
//! static: the same `(seed, config)` always yields the same schedule,
//! and a schedule replays identically on a fresh harness — the
//! property the delta-debugging shrinker depends on.

use smr_sim::{ClusterFaultClass, DeviceFaultClass};

use crate::harness::ChaosConfig;

/// SplitMix64 pseudo-random stream. Crate-local on purpose: the
/// schedule stream must not share state with the device-level fault
/// mixer inside `smr-sim`, and the harness itself draws nothing at
/// run time — all randomness lives in the generated schedule.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }
}

/// One step of a chaos schedule.
///
/// The `Debug` rendering of every variant is a valid Rust expression
/// (under `use ChaosEvent::*;`), so a shrunk schedule can be pasted
/// into a regression test verbatim — see [`crate::ChaosRepro`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Serve `count` client operations over key indices starting at
    /// `base` (modulo the harness keyspace), routed across groups by
    /// the hash ring. Every seventh operation is a delete; the rest
    /// are value-log-sized puts.
    WriteBurst {
        /// First key index of the burst.
        base: u32,
        /// Number of operations.
        count: u32,
    },
    /// Arm a torn write on the group's primary, issue one unacked
    /// probe write (which must fail mid-write), then power-cycle the
    /// primary through crash recovery.
    TornWrite {
        /// Target replica group.
        group: usize,
    },
    /// Flip bits in a narrow slice of the primary's largest table and
    /// run a repairing scrub pass — single-bit damage the scrubber
    /// must detect and correct.
    CorruptExtent {
        /// Target replica group.
        group: usize,
    },
    /// Arm `n` transient read errors on the primary (each distinct
    /// offset fails once; retries succeed).
    TransientReads {
        /// Target replica group.
        group: usize,
        /// Number of one-shot read errors.
        n: u64,
    },
    /// Plant a latent sector error inside the primary's largest table,
    /// then scrub: the file is repaired around the bad block or
    /// quarantined, and the damaged node is excluded from the state-
    /// hash agreement check (its replicas still hold everything).
    UnrecoverableRead {
        /// Target replica group.
        group: usize,
    },
    /// Fail the whole band under the primary's largest table, then
    /// scrub-quarantine it — the SMR analogue of losing a shingled
    /// band end to end.
    BandFailure {
        /// Target replica group.
        group: usize,
    },
    /// Reads overlapping the primary's largest table run `mult`×
    /// slower until the epilogue clears fail-slow state. Latency-only.
    FailSlow {
        /// Target replica group.
        group: usize,
        /// Service-time multiplier (≥ 2 to have any effect).
        mult: u64,
    },
    /// Partition one replica off the network for `dur_ns` simulated
    /// nanoseconds. Frames buffer behind the partition and deliver at
    /// heal; the epilogue advances the clock past every heal bound.
    Partition {
        /// Target replica group.
        group: usize,
        /// Abstract node pick, resolved modulo the live non-primary
        /// node set at execution time.
        pick: usize,
        /// Partition duration, simulated ns.
        dur_ns: u64,
    },
    /// Kill one replica (store and in-flight frames gone) until a
    /// [`ChaosEvent::Revive`] rejoins it via catch-up streaming.
    KillReplica {
        /// Target replica group.
        group: usize,
        /// Abstract node pick, resolved against live non-primary nodes.
        pick: usize,
    },
    /// Rejoin every dead node of the group and advance the clock past
    /// any scheduled partition heal bound — full group recovery,
    /// releasing the group's disruption credit.
    Revive {
        /// Target replica group.
        group: usize,
    },
    /// Kill the primary and fail over: detection, fencing, promotion
    /// of the most caught-up replica through crash recovery, client
    /// redirect. The dead old primary holds the disruption credit
    /// until revived.
    Failover {
        /// Target replica group.
        group: usize,
    },
    /// Power-cycle the primary in place through the crash-image
    /// recovery path (WAL replay, torn-tail scan); no failover.
    RestartPrimary {
        /// Target replica group.
        group: usize,
    },
    /// Flush the primary, then run its value-log garbage collector
    /// until idle (budget-capped). Under `buggy_gc` this routes
    /// through the deliberately broken retire-before-sync entry point.
    GcDrain {
        /// Target replica group.
        group: usize,
    },
    /// Run one full repairing scrub pass over the primary's tables
    /// and value-log segments.
    ScrubPass {
        /// Target replica group.
        group: usize,
    },
    /// Migrate one routing bucket to group `to`: replay every promised
    /// key of the bucket onto the destination, then flip the routing
    /// override — shard migration that must be loss-free even when it
    /// runs while another group is killed or partitioned.
    Migrate {
        /// Routing bucket (modulo the harness bucket count).
        bucket: u32,
        /// Destination group (modulo the group count).
        to: usize,
    },
}

impl ChaosEvent {
    /// The device fault class this event injects, if any.
    pub fn device_class(&self) -> Option<DeviceFaultClass> {
        match self {
            ChaosEvent::TornWrite { .. } => Some(DeviceFaultClass::TornWrite),
            ChaosEvent::CorruptExtent { .. } => Some(DeviceFaultClass::Corruption),
            ChaosEvent::TransientReads { .. } => Some(DeviceFaultClass::TransientRead),
            ChaosEvent::UnrecoverableRead { .. } => Some(DeviceFaultClass::UnrecoverableRead),
            ChaosEvent::BandFailure { .. } => Some(DeviceFaultClass::BandFailure),
            ChaosEvent::FailSlow { .. } => Some(DeviceFaultClass::FailSlow),
            _ => None,
        }
    }

    /// The cluster fault classes this event exercises. A failover
    /// counts as a kill (of the primary); a revive counts once even
    /// if it rejoins several nodes.
    pub fn cluster_classes(&self) -> &'static [ClusterFaultClass] {
        match self {
            ChaosEvent::Partition { .. } => &[ClusterFaultClass::Partition],
            ChaosEvent::KillReplica { .. } | ChaosEvent::Failover { .. } => {
                &[ClusterFaultClass::Kill]
            }
            ChaosEvent::Revive { .. } => &[ClusterFaultClass::Revive],
            _ => &[],
        }
    }

    /// The replica group the event targets, if it targets one.
    pub fn group(&self) -> Option<usize> {
        match *self {
            ChaosEvent::TornWrite { group }
            | ChaosEvent::CorruptExtent { group }
            | ChaosEvent::TransientReads { group, .. }
            | ChaosEvent::UnrecoverableRead { group }
            | ChaosEvent::BandFailure { group }
            | ChaosEvent::FailSlow { group, .. }
            | ChaosEvent::Partition { group, .. }
            | ChaosEvent::KillReplica { group, .. }
            | ChaosEvent::Revive { group }
            | ChaosEvent::Failover { group }
            | ChaosEvent::RestartPrimary { group }
            | ChaosEvent::GcDrain { group }
            | ChaosEvent::ScrubPass { group } => Some(group),
            ChaosEvent::WriteBurst { .. } | ChaosEvent::Migrate { .. } => None,
        }
    }
}

/// Generates a `cfg.events`-step schedule from `seed`.
///
/// The stream opens with a write burst (faults need state to chew on)
/// and then draws weighted events. Availability-reducing faults
/// (partition, kill, failover) are emitted only while the target
/// group's disruption credit is free; while a group is disrupted the
/// same draws turn into [`ChaosEvent::Revive`], which releases the
/// credit. Device faults target primaries only — replicas must stay
/// pristine so the oracle's survivor checks have a ground truth.
pub fn generate(seed: u64, cfg: &ChaosConfig) -> Vec<ChaosEvent> {
    assert!(cfg.groups >= 1, "a chaos run needs at least one group");
    let mut rng = SplitMix::new(seed ^ 0xC4A0_5C4E_D01E_5EED);
    let mut disrupted = vec![false; cfg.groups];
    let mut out = Vec::with_capacity(cfg.events);
    out.push(ChaosEvent::WriteBurst { base: 0, count: 48 });
    while out.len() < cfg.events {
        let g = rng.below(cfg.groups as u64) as usize;
        let roll = rng.below(100);
        let ev = match roll {
            0..=34 => ChaosEvent::WriteBurst {
                base: rng.below(u64::from(crate::harness::KEYSPACE)) as u32,
                count: 8 + rng.below(17) as u32,
            },
            35..=39 => ChaosEvent::TornWrite { group: g },
            40..=44 => ChaosEvent::CorruptExtent { group: g },
            45..=49 => ChaosEvent::TransientReads {
                group: g,
                n: 1 + rng.below(3),
            },
            50..=53 => ChaosEvent::UnrecoverableRead { group: g },
            54..=57 => ChaosEvent::BandFailure { group: g },
            58..=61 => ChaosEvent::FailSlow {
                group: g,
                mult: 2 + rng.below(5),
            },
            62..=67 => {
                let pick = rng.below(8) as usize;
                let dur_ns = 2_000_000 + rng.below(48) * 1_000_000;
                if disrupted[g] {
                    ChaosEvent::Revive { group: g }
                } else {
                    disrupted[g] = true;
                    ChaosEvent::Partition {
                        group: g,
                        pick,
                        dur_ns,
                    }
                }
            }
            68..=73 => {
                let pick = rng.below(8) as usize;
                if disrupted[g] {
                    ChaosEvent::Revive { group: g }
                } else {
                    disrupted[g] = true;
                    ChaosEvent::KillReplica { group: g, pick }
                }
            }
            74..=78 => {
                if disrupted[g] {
                    ChaosEvent::Revive { group: g }
                } else {
                    disrupted[g] = true;
                    ChaosEvent::Failover { group: g }
                }
            }
            79..=83 => {
                if disrupted[g] {
                    ChaosEvent::Revive { group: g }
                } else {
                    ChaosEvent::WriteBurst {
                        base: rng.below(u64::from(crate::harness::KEYSPACE)) as u32,
                        count: 8 + rng.below(9) as u32,
                    }
                }
            }
            84..=87 => ChaosEvent::RestartPrimary { group: g },
            88..=91 => ChaosEvent::GcDrain { group: g },
            92..=95 => ChaosEvent::ScrubPass { group: g },
            _ => {
                if cfg.groups > 1 {
                    ChaosEvent::Migrate {
                        bucket: rng.below(u64::from(crate::harness::BUCKETS)) as u32,
                        to: rng.below(cfg.groups as u64) as usize,
                    }
                } else {
                    ChaosEvent::GcDrain { group: g }
                }
            }
        };
        if matches!(ev, ChaosEvent::Revive { .. }) {
            disrupted[g] = false;
        }
        out.push(ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        assert_eq!(generate(42, &cfg), generate(42, &cfg));
        assert_ne!(generate(42, &cfg), generate(43, &cfg));
    }

    #[test]
    fn credit_rule_never_stacks_disruptions() {
        // Replay the generator's bookkeeping from the emitted events:
        // a second availability-reducing fault must never hit a group
        // before a Revive released the first.
        let cfg = ChaosConfig {
            events: 400,
            ..ChaosConfig::default()
        };
        for seed in 0..8u64 {
            let mut open = vec![false; cfg.groups];
            for ev in generate(seed, &cfg) {
                match ev {
                    ChaosEvent::Partition { group, .. }
                    | ChaosEvent::KillReplica { group, .. }
                    | ChaosEvent::Failover { group } => {
                        assert!(!open[group], "seed {seed}: stacked disruption on {group}");
                        open[group] = true;
                    }
                    ChaosEvent::Revive { group } => {
                        assert!(open[group], "seed {seed}: revive without disruption");
                        open[group] = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn twenty_five_seeds_cover_every_fault_class() {
        // The CI smoke gate needs ≥4 device and ≥3 cluster fault
        // classes across its 25 schedules; the generator actually
        // reaches all 6 and all 3.
        let cfg = ChaosConfig::default();
        let mut device: BTreeSet<&'static str> = BTreeSet::new();
        let mut cluster: BTreeSet<&'static str> = BTreeSet::new();
        for seed in 0..25u64 {
            for ev in generate(seed, &cfg) {
                if let Some(c) = ev.device_class() {
                    device.insert(c.name());
                }
                for c in ev.cluster_classes() {
                    cluster.insert(c.name());
                }
            }
        }
        assert_eq!(device.len(), smr_sim::DeviceFaultClass::ALL.len());
        assert_eq!(cluster.len(), smr_sim::ClusterFaultClass::ALL.len());
    }
}
