//! Micro-benchmarks over the paper's four store configurations at smoke
//! scale: simulator wall-clock throughput for loads and point reads.
//! (Simulated-time results — the paper's actual metrics — come from the
//! `seal-bench` figure harness; these benches track the *implementation's*
//! speed so regressions in the reproduction itself are visible.)

use bench::timing::{bench, bench_with_setup};
use sealdb::{Store, StoreConfig, StoreKind};
use workloads::{fill_random, RecordGenerator};

fn generator() -> RecordGenerator {
    RecordGenerator::new(16, 256, 7)
}

fn fresh(kind: StoreKind) -> Store {
    StoreConfig::new(kind, 32 << 10, 512 << 20)
        .build()
        .expect("build store")
}

fn bench_fill_random() {
    for kind in StoreKind::ALL {
        bench_with_setup(
            &format!("fillrandom-4k-records/{}", kind.name()),
            || fresh(kind),
            |mut store| {
                fill_random(&mut store, &generator(), 4000, 11).expect("load");
                store
            },
        );
    }
}

fn bench_get() {
    for kind in StoreKind::ALL {
        let mut store = fresh(kind);
        fill_random(&mut store, &generator(), 4000, 11).expect("load");
        let g = generator();
        let mut i = 0u64;
        bench(&format!("get-after-load/{}", kind.name()), || {
            i = (i + 7919) % 4000;
            store.get(&g.key(i)).expect("get")
        });
    }
}

fn bench_scan() {
    for kind in StoreKind::ALL {
        let mut store = fresh(kind);
        fill_random(&mut store, &generator(), 4000, 11).expect("load");
        let g = generator();
        let mut i = 0u64;
        bench(&format!("scan-100-after-load/{}", kind.name()), || {
            i = (i + 7919) % 3900;
            store.scan(&g.key(i), 100).expect("scan")
        });
    }
}

fn main() {
    bench_fill_random();
    bench_get();
    bench_scan();
}
