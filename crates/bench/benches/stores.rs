//! Criterion benches over the paper's four store configurations at smoke
//! scale: simulator wall-clock throughput for loads and point reads.
//! (Simulated-time results — the paper's actual metrics — come from the
//! `seal-bench` figure harness; these benches track the *implementation's*
//! speed so regressions in the reproduction itself are visible.)

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sealdb::{Store, StoreConfig, StoreKind};
use workloads::{fill_random, RecordGenerator};

fn gen() -> RecordGenerator {
    RecordGenerator::new(16, 256, 7)
}

fn fresh(kind: StoreKind) -> Store {
    StoreConfig::new(kind, 32 << 10, 512 << 20)
        .build()
        .expect("build store")
}

fn bench_fill_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("fillrandom-4k-records");
    group.sample_size(10);
    for kind in StoreKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || fresh(kind),
                |mut store| {
                    fill_random(&mut store, &gen(), 4000, 11).expect("load");
                    store
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("get-after-load");
    for kind in StoreKind::ALL {
        let mut store = fresh(kind);
        fill_random(&mut store, &gen(), 4000, 11).expect("load");
        let g = gen();
        group.bench_function(kind.name(), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % 4000;
                store.get(&g.key(i)).expect("get")
            })
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan-100-after-load");
    for kind in StoreKind::ALL {
        let mut store = fresh(kind);
        fill_random(&mut store, &gen(), 4000, 11).expect("load");
        let g = gen();
        group.bench_function(kind.name(), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % 3900;
                store.scan(&g.key(i), 100).expect("scan")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fill_random, bench_get, bench_scan);
criterion_main!(benches);
