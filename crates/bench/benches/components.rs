//! Micro-benchmarks of the core components (wall-clock performance of
//! the library itself, not simulated time).

use bench::timing::{bench, bench_with_setup};
use lsm_core::memtable::MemTable;
use lsm_core::sstable::{scan_all, TableBuilder, TableOptions};
use lsm_core::types::{make_internal_key, ValueType};
use lsm_core::util::bloom::BloomFilter;
use lsm_core::util::crc32c;
use lsm_core::util::rng::XorShift64;
use placement::{Allocator, DynamicBandAlloc};
use workloads::{Distribution, ScrambledZipfian};

fn bench_crc32c() {
    let data = vec![0xA5u8; 64 * 1024];
    bench("crc32c/64KiB", || {
        crc32c::crc32c(std::hint::black_box(&data))
    });
}

fn bench_bloom() {
    let keys: Vec<Vec<u8>> = (0..10_000u32)
        .map(|i| format!("key{i:08}").into_bytes())
        .collect();
    bench("bloom/build-10k", || {
        BloomFilter::build(std::hint::black_box(&keys), 10)
    });
    let filter = BloomFilter::build(&keys, 10);
    let mut i = 0u32;
    bench("bloom/query", || {
        i = i.wrapping_add(1);
        filter.may_contain(format!("key{i:08}").as_bytes())
    });
}

fn bench_memtable() {
    bench_with_setup(
        "memtable/insert-10k",
        || MemTable::new(42),
        |mut m| {
            for i in 0..10_000u64 {
                let k = format!("key{:012}", (i * 2654435761) % 10_000);
                m.add(i + 1, ValueType::Value, k.as_bytes(), b"value");
            }
            m
        },
    );
    let mut mem = MemTable::new(42);
    for i in 0..10_000u64 {
        let k = format!("key{:012}", (i * 2654435761) % 10_000);
        mem.add(i + 1, ValueType::Value, k.as_bytes(), b"value");
    }
    let mut i = 0u64;
    bench("memtable/get", || {
        i = (i + 7919) % 10_000;
        mem.get(format!("key{i:012}").as_bytes(), u64::MAX >> 8)
    });
}

fn bench_table() {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..5000u64)
        .map(|i| {
            (
                make_internal_key(format!("key{i:010}").as_bytes(), 1, ValueType::Value),
                vec![0u8; 100],
            )
        })
        .collect();
    bench("table/build-5k", || {
        let mut t = TableBuilder::new(TableOptions::default());
        for (k, v) in &entries {
            t.add(k, v);
        }
        t.finish()
    });
    let mut t = TableBuilder::new(TableOptions::default());
    for (k, v) in &entries {
        t.add(k, v);
    }
    let data = t.finish();
    bench("table/scan_all-5k", || {
        scan_all(std::hint::black_box(&data)).unwrap()
    });
}

fn bench_allocator() {
    bench_with_setup(
        "dynamic-band/alloc-free-churn",
        || DynamicBandAlloc::new(1 << 34, 4 << 20, 4 << 20),
        |mut a| {
            let mut live = Vec::new();
            let mut rng = XorShift64::new(7);
            for _ in 0..1000 {
                if live.len() > 20 && rng.one_in(2) {
                    let i = (rng.next_below(live.len() as u64)) as usize;
                    let e = live.swap_remove(i);
                    a.free(e);
                } else {
                    let size = (1 + rng.next_below(10)) * (4 << 20);
                    live.push(a.allocate(size).unwrap());
                }
            }
            (a, live)
        },
    );
}

fn bench_zipfian() {
    let mut z = ScrambledZipfian::new(1_000_000);
    let mut rng = XorShift64::new(9);
    bench("zipfian/next", || z.next(&mut rng, 1_000_000));
}

fn main() {
    bench_crc32c();
    bench_bloom();
    bench_memtable();
    bench_table();
    bench_allocator();
    bench_zipfian();
}
