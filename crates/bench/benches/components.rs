//! Criterion micro-benchmarks of the core components (wall-clock
//! performance of the library itself, not simulated time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsm_core::memtable::MemTable;
use lsm_core::sstable::{scan_all, TableBuilder, TableOptions};
use lsm_core::types::{make_internal_key, ValueType};
use lsm_core::util::bloom::BloomFilter;
use lsm_core::util::crc32c;
use lsm_core::util::rng::XorShift64;
use placement::{Allocator, DynamicBandAlloc};
use workloads::{Distribution, ScrambledZipfian};

fn bench_crc32c(c: &mut Criterion) {
    let data = vec![0xA5u8; 64 * 1024];
    c.bench_function("crc32c/64KiB", |b| {
        b.iter(|| crc32c::crc32c(std::hint::black_box(&data)))
    });
}

fn bench_bloom(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000u32)
        .map(|i| format!("key{i:08}").into_bytes())
        .collect();
    c.bench_function("bloom/build-10k", |b| {
        b.iter(|| BloomFilter::build(std::hint::black_box(&keys), 10))
    });
    let filter = BloomFilter::build(&keys, 10);
    c.bench_function("bloom/query", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            filter.may_contain(format!("key{i:08}").as_bytes())
        })
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable/insert-10k", |b| {
        b.iter_batched(
            || MemTable::new(42),
            |mut m| {
                for i in 0..10_000u64 {
                    let k = format!("key{:012}", (i * 2654435761) % 10_000);
                    m.add(i + 1, ValueType::Value, k.as_bytes(), b"value");
                }
                m
            },
            BatchSize::LargeInput,
        )
    });
    let mut mem = MemTable::new(42);
    for i in 0..10_000u64 {
        let k = format!("key{:012}", (i * 2654435761) % 10_000);
        mem.add(i + 1, ValueType::Value, k.as_bytes(), b"value");
    }
    c.bench_function("memtable/get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            mem.get(format!("key{i:012}").as_bytes(), u64::MAX >> 8)
        })
    });
}

fn bench_table(c: &mut Criterion) {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..5000u64)
        .map(|i| {
            (
                make_internal_key(format!("key{i:010}").as_bytes(), 1, ValueType::Value),
                vec![0u8; 100],
            )
        })
        .collect();
    c.bench_function("table/build-5k", |b| {
        b.iter(|| {
            let mut t = TableBuilder::new(TableOptions::default());
            for (k, v) in &entries {
                t.add(k, v);
            }
            t.finish()
        })
    });
    let mut t = TableBuilder::new(TableOptions::default());
    for (k, v) in &entries {
        t.add(k, v);
    }
    let data = t.finish();
    c.bench_function("table/scan_all-5k", |b| {
        b.iter(|| scan_all(std::hint::black_box(&data)).unwrap())
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("dynamic-band/alloc-free-churn", |b| {
        b.iter_batched(
            || DynamicBandAlloc::new(1 << 34, 4 << 20, 4 << 20),
            |mut a| {
                let mut live = Vec::new();
                let mut rng = XorShift64::new(7);
                for _ in 0..1000 {
                    if live.len() > 20 && rng.one_in(2) {
                        let i = (rng.next_below(live.len() as u64)) as usize;
                        let e = live.swap_remove(i);
                        a.free(e);
                    } else {
                        let size = (1 + rng.next_below(10)) * (4 << 20);
                        live.push(a.allocate(size).unwrap());
                    }
                }
                (a, live)
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let mut z = ScrambledZipfian::new(1_000_000);
    let mut rng = XorShift64::new(9);
    c.bench_function("zipfian/next", |b| b.iter(|| z.next(&mut rng, 1_000_000)));
}

criterion_group!(
    benches,
    bench_crc32c,
    bench_bloom,
    bench_memtable,
    bench_table,
    bench_allocator,
    bench_zipfian
);
criterion_main!(benches);
