//! # bench — the figure/table regeneration harness
//!
//! One function per table/figure of the paper's evaluation section; the
//! `seal-bench` binary dispatches to them and writes CSV series next to
//! a human-readable summary. See `DESIGN.md` (experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured) at the workspace root.
//!
//! All results come from the *simulated* disk clock: runs are
//! deterministic, and "throughput" means operations per simulated
//! second, exactly the quantity the paper plots.

pub mod chaos_run;
pub mod experiments;
pub mod metrics_run;
pub mod replicate_run;
pub mod scale;
pub mod scrub_run;
pub mod serve_run;
pub mod shard_run;
pub mod timing;
pub mod vlog_run;

pub use scale::BenchScale;

use lsm_core::Result;
use sealdb::{Store, StoreConfig, StoreKind};
use workloads::{MicroResult, RecordGenerator};

/// Builds a store of `kind` at the given scale.
pub fn build_store(kind: StoreKind, scale: &BenchScale) -> Result<Store> {
    let mut cfg = StoreConfig::new(kind, scale.sstable, scale.disk_capacity());
    cfg.seed = scale.seed;
    cfg.build()
}

/// Builds a store with an explicit disk-layout override (Fig. 2 runs
/// LevelDB on a conventional HDD).
pub fn build_store_with_layout(
    kind: StoreKind,
    scale: &BenchScale,
    layout: smr_sim::Layout,
) -> Result<Store> {
    let mut cfg = StoreConfig::new(kind, scale.sstable, scale.disk_capacity());
    cfg.seed = scale.seed;
    cfg.layout_override = Some(layout);
    cfg.build()
}

/// Random-loads a fresh store of `kind` with `scale.load_records()`
/// records; returns the store and the load result.
pub fn loaded_store(kind: StoreKind, scale: &BenchScale) -> Result<(Store, MicroResult)> {
    let mut store = build_store(kind, scale)?;
    let gen = scale.generator();
    let res = workloads::fill_random(&mut store, &gen, scale.load_records(), scale.seed)?;
    Ok((store, res))
}

/// Runs `f` once per store kind on its own OS thread (every store owns
/// an independent simulated disk, so the fan-out is embarrassingly
/// parallel) and returns results in input order.
pub fn per_store_parallel<T, F>(kinds: &[StoreKind], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(StoreKind) -> T + Sync,
{
    let mut out: Vec<Option<T>> = kinds.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for &kind in kinds {
            let f = &f;
            handles.push(s.spawn(move || f(kind)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("store thread panicked"));
        }
    });
    out.into_iter().map(|o| o.expect("joined")).collect()
}

/// A generator matching the scale's record shape.
pub fn generator(scale: &BenchScale) -> RecordGenerator {
    scale.generator()
}

/// Formats nanoseconds as seconds with 3 decimals.
pub fn secs(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e9)
}

/// Formats a byte count as mebibytes.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_store_parallel_preserves_order() {
        let kinds = [StoreKind::LevelDb, StoreKind::SmrDb, StoreKind::SealDb];
        let names = per_store_parallel(&kinds, |k| k.name().to_string());
        assert_eq!(names, vec!["LevelDB", "SMRDB", "SEALDB"]);
    }

    #[test]
    fn build_all_kinds_at_tiny_scale() {
        let scale = BenchScale::tiny();
        for kind in StoreKind::ALL {
            let mut store = build_store(kind, &scale).unwrap();
            store.put(b"k", b"v").unwrap();
            assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1_500_000_000), "1.500");
        assert_eq!(mib(3 << 20), "3.00");
    }
}
