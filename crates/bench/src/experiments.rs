//! One function per table/figure of the paper's evaluation (§IV).
//! Each returns a [`Report`]: human-readable summary lines plus CSV
//! series with the exact data the corresponding plot shows.

use crate::{build_store, build_store_with_layout, loaded_store, per_store_parallel, BenchScale};
use lsm_core::Result;
use sealdb::{StoreKind, StoreSnapshot};
use smr_sim::{Disk, Extent, IoKind, Layout, TimeModel, TraceDir};
use workloads::{fill_random, fill_seq, read_random, read_seq, MicroResult, WorkloadSpec};

/// A CSV artifact.
#[derive(Clone, Debug)]
pub struct Csv {
    /// File name (e.g. `fig08_micro.csv`).
    pub name: String,
    /// Full file contents, header included.
    pub content: String,
}

/// The outcome of one experiment.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment title.
    pub title: String,
    /// Human-readable summary lines.
    pub lines: Vec<String>,
    /// CSV series for plotting.
    pub csvs: Vec<Csv>,
}

impl Report {
    fn new(title: &str) -> Self {
        Report {
            title: title.to_string(),
            ..Default::default()
        }
    }

    fn line(&mut self, s: impl Into<String>) {
        self.lines.push(s.into());
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }
}

const MB: f64 = (1u64 << 20) as f64;

// ---------------------------------------------------------------- Fig. 2

/// Fig. 2: physical placement of every SSTable written by every
/// compaction when LevelDB random-loads a database on Ext4 over a
/// conventional HDD — the paper's demonstration that one compaction's
/// files scatter across the whole used span.
pub fn fig02(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 2 — LevelDB SSTable placement per compaction (Ext4/HDD)");
    let mut store = build_store_with_layout(StoreKind::LevelDb, scale, Layout::Hdd)?;
    store.set_tracing(true);
    let gen = scale.generator();
    fill_random(&mut store, &gen, scale.load_records(), scale.seed)?;
    let trace = store.take_trace();

    let mut rows = String::from("compaction,file,offset_mb,len_kb\n");
    let mut per_compaction_span: Vec<f64> = Vec::new();
    let mut cur_tag = 0u64;
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    let mut writes = 0usize;
    for e in trace
        .iter()
        .filter(|e| e.dir == TraceDir::Write && e.tag > 0 && e.kind == IoKind::CompactionWrite)
    {
        if e.tag != cur_tag {
            if cur_tag != 0 && lo != u64::MAX {
                per_compaction_span.push((hi - lo) as f64 / MB);
            }
            cur_tag = e.tag;
            lo = u64::MAX;
            hi = 0;
        }
        lo = lo.min(e.ext.offset);
        hi = hi.max(e.ext.end());
        writes += 1;
        rows.push_str(&format!(
            "{},{},{:.3},{}\n",
            e.tag,
            e.file,
            e.ext.offset as f64 / MB,
            e.ext.len / 1024
        ));
    }
    if cur_tag != 0 && lo != u64::MAX {
        per_compaction_span.push((hi - lo) as f64 / MB);
    }
    let compactions = per_compaction_span.len();
    let avg_span = per_compaction_span.iter().sum::<f64>() / compactions.max(1) as f64;
    let used_span = store.snapshot().high_water as f64 / MB;
    report.line(format!("database loaded: {} MiB", scale.load_bytes >> 20));
    report.line(format!("compactions traced: {compactions}"));
    report.line(format!("SSTable writes traced: {writes}"));
    report.line(format!("used disk span: {used_span:.1} MiB"));
    report.line(format!(
        "avg per-compaction write span: {avg_span:.1} MiB ({:.0}% of used span)",
        100.0 * avg_span / used_span.max(1e-9)
    ));
    report.csvs.push(Csv {
        name: "fig02_leveldb_layout.csv".into(),
        content: rows,
    });
    Ok(report)
}

// ---------------------------------------------------------------- Fig. 3

/// Fig. 3: fixed-band SMR sweep. For band sizes of 5–15 SSTables
/// (20–60 MB at paper scale), random-load LevelDB and report (a) average
/// SSTables written and distinct bands touched per compaction and
/// (b) WA and MWA.
pub fn fig03(scale: &BenchScale) -> Result<Report> {
    let mut report =
        Report::new("Fig. 3 — SSTable/band distribution and amplification vs band size");
    let ratios: Vec<u64> = vec![5, 8, 10, 12, 15];
    let mut rows = String::from(
        "band_sstables,band_mb,avg_sstables_per_compaction,avg_bands_per_compaction,wa,awa,mwa\n",
    );
    let outcomes: Vec<(u64, f64, f64, f64, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = ratios
            .iter()
            .map(|&r| {
                s.spawn(move || {
                    let mut cfg = sealdb::StoreConfig::new(
                        StoreKind::LevelDb,
                        scale.sstable,
                        scale.disk_capacity(),
                    );
                    cfg.band_ratio = r;
                    cfg.seed = scale.seed;
                    let mut store = cfg.build().expect("build");
                    let gen = scale.generator();
                    fill_random(&mut store, &gen, scale.load_records(), scale.seed).expect("load");
                    let snap = store.snapshot();
                    let real: Vec<_> = snap.real_compactions().collect();
                    let n = real.len().max(1) as f64;
                    let avg_files = real.iter().map(|c| c.output_files as f64).sum::<f64>() / n;
                    let avg_bands = real.iter().map(|c| c.output_bands as f64).sum::<f64>() / n;
                    (
                        r,
                        avg_files,
                        avg_bands,
                        snap.io.wa(),
                        snap.io.awa(),
                        snap.io.mwa(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (r, avg_files, avg_bands, wa, awa, mwa) in outcomes {
        let band_mb = (r * scale.sstable) as f64 / MB;
        report.line(format!(
            "band {r:>2} SSTables ({band_mb:.1} MiB): {avg_files:.2} tables -> {avg_bands:.2} bands per compaction, WA {wa:.2}, AWA {awa:.2}, MWA {mwa:.2}"
        ));
        rows.push_str(&format!(
            "{r},{band_mb:.2},{avg_files:.3},{avg_bands:.3},{wa:.3},{awa:.3},{mwa:.3}\n"
        ));
    }
    report.csvs.push(Csv {
        name: "fig03_band_sweep.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Table II

/// Table II: raw device performance of the two mechanical models.
pub fn table2(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Table II — device model performance (HDD vs SMR)");
    let cap = scale.disk_capacity().max(4 << 30);
    let mut rows = String::from("device,metric,value,unit\n");

    let run = |name: &str,
               model: TimeModel,
               layout: Layout,
               rows: &mut String,
               report: &mut Report| {
        // Sequential transfers: 64 MiB streamed.
        let chunk = 1 << 20;
        let total = 64 * chunk;
        let mut d = Disk::new(cap, layout, model);
        let data = vec![0u8; chunk as usize];
        let t0 = d.clock_ns();
        for i in 0..(total / chunk) {
            d.write(Extent::new(i * chunk, chunk), &data, IoKind::Raw)
                .unwrap();
        }
        let wr = total as f64 / 1e6 / ((d.clock_ns() - t0) as f64 / 1e9);
        let t0 = d.clock_ns();
        for i in 0..(total / chunk) {
            d.read(Extent::new(i * chunk, chunk), IoKind::Raw).unwrap();
        }
        let rd = total as f64 / 1e6 / ((d.clock_ns() - t0) as f64 / 1e9);
        // Random 4 KiB reads over the written region + a spread of seeks
        // across the whole platter (seek distance matters).
        let mut rng = lsm_core::util::rng::XorShift64::new(7);
        // Pre-write scattered 4 KiB blocks to read back (on raw layouts
        // reads require valid data; here layout is Hdd/FixedBand).
        let mut offsets = Vec::new();
        for _ in 0..500 {
            let off = (rng.next_below(cap / 4096 - 1)) * 4096;
            offsets.push(off);
        }
        let mut dr = Disk::new(cap, layout, model);
        for &off in &offsets {
            dr.write_conventional(Extent::new(off, 4096), &data[..4096], IoKind::Raw)
                .unwrap();
        }
        let t0 = dr.clock_ns();
        for &off in &offsets {
            dr.read(Extent::new(off, 4096), IoKind::Raw).unwrap();
        }
        let riops = offsets.len() as f64 / ((dr.clock_ns() - t0) as f64 / 1e9);
        // Random 4 KiB writes on a fresh disk (best case: empty bands /
        // write cache) and on a disk with full bands (worst case).
        let mut dw = Disk::new(cap, layout, model);
        let t0 = dw.clock_ns();
        for &off in &offsets {
            dw.write(Extent::new(off, 4096), &data[..4096], IoKind::Raw)
                .unwrap();
        }
        let wiops_fresh = offsets.len() as f64 / ((dw.clock_ns() - t0) as f64 / 1e9);
        let wiops_aged = if let Layout::FixedBand { band_size } = layout {
            // Age: fill the first bands completely, then rewrite randomly.
            let mut da = Disk::new(cap, layout, model);
            let span = 64u64;
            let big = vec![0u8; band_size as usize];
            for b in 0..span {
                da.write(Extent::new(b * band_size, band_size), &big, IoKind::Raw)
                    .unwrap();
            }
            let t0 = da.clock_ns();
            let n = 40;
            for i in 0..n {
                let off = (rng.next_below(span * band_size / 4096 - 1)) * 4096;
                let _ = i;
                da.write(Extent::new(off, 4096), &data[..4096], IoKind::Raw)
                    .unwrap();
            }
            Some(n as f64 / ((da.clock_ns() - t0) as f64 / 1e9))
        } else {
            None
        };
        report.line(format!(
            "{name}: seq read {rd:.0} MB/s, seq write {wr:.0} MB/s, rand read {riops:.0} IOPS, rand write {wiops_fresh:.0} IOPS{}",
            wiops_aged.map(|w| format!(" (fresh) / {w:.1} IOPS (aged bands)")).unwrap_or_default()
        ));
        for (metric, value, unit) in [
            ("seq_read", rd, "MB/s"),
            ("seq_write", wr, "MB/s"),
            ("rand_read_4k", riops, "IOPS"),
            ("rand_write_4k", wiops_fresh, "IOPS"),
        ] {
            rows.push_str(&format!("{name},{metric},{value:.1},{unit}\n"));
        }
        if let Some(w) = wiops_aged {
            rows.push_str(&format!("{name},rand_write_4k_aged,{w:.1},IOPS\n"));
        }
    };

    run(
        "HDD",
        TimeModel::hdd_st1000dm003(cap),
        Layout::Hdd,
        &mut rows,
        &mut report,
    );
    run(
        "SMR",
        TimeModel::smr_st5000as0011(cap),
        Layout::FixedBand {
            band_size: scale.band_size(),
        },
        &mut rows,
        &mut report,
    );
    report.line("paper Table II: HDD 169/155 MB/s, 64/143 IOPS; SMR 165/148 MB/s, 70 IOPS read, 5-140 IOPS write");
    report.csvs.push(Csv {
        name: "table2_device_model.csv".into(),
        content: rows,
    });
    Ok(report)
}

// ---------------------------------------------------------------- Fig. 8

/// The four micro-benchmark phases for one store kind.
#[derive(Debug)]
pub struct MicroSuite {
    /// Store kind.
    pub kind: StoreKind,
    /// Sequential load.
    pub fillseq: MicroResult,
    /// Random load.
    pub fillrandom: MicroResult,
    /// Random point reads on the random-loaded database.
    pub readrandom: MicroResult,
    /// Sequential range reads on the random-loaded database.
    pub readseq: MicroResult,
    /// Snapshot after the random load + reads.
    pub snapshot: StoreSnapshot,
}

/// Runs the §IV-A micro-benchmark suite for one store kind.
pub fn micro_suite(kind: StoreKind, scale: &BenchScale) -> Result<MicroSuite> {
    let gen = scale.generator();
    let n = scale.load_records();
    // Sequential load on a fresh store.
    let mut s1 = build_store(kind, scale)?;
    let fillseq = fill_seq(&mut s1, &gen, n)?;
    drop(s1);
    // Random load on a fresh store; reads run against it.
    let mut s2 = build_store(kind, scale)?;
    let fillrandom = fill_random(&mut s2, &gen, n, scale.seed)?;
    let readrandom = read_random(&mut s2, &gen, n, scale.read_ops, scale.seed ^ 1)?;
    let readseq = read_seq(&mut s2, &gen, n, scale.read_ops, scale.seed ^ 2)?;
    let snapshot = s2.snapshot();
    Ok(MicroSuite {
        kind,
        fillseq,
        fillrandom,
        readrandom,
        readseq,
        snapshot,
    })
}

fn micro_rows(suites: &[MicroSuite], report: &mut Report, csv_name: &str) {
    let base = &suites[0];
    let mut rows = String::from("store,phase,ops_per_sec,mb_per_sec,normalized_to_first\n");
    for s in suites {
        for (phase, r, b) in [
            ("fillseq", &s.fillseq, &base.fillseq),
            ("fillrandom", &s.fillrandom, &base.fillrandom),
            ("readrandom", &s.readrandom, &base.readrandom),
            ("readseq", &s.readseq, &base.readseq),
        ] {
            let norm = r.ops_per_sec() / b.ops_per_sec().max(1e-12);
            rows.push_str(&format!(
                "{},{phase},{:.1},{:.2},{norm:.3}\n",
                s.kind.name(),
                r.ops_per_sec(),
                r.mb_per_sec()
            ));
        }
        report.lines.push(format!(
            "{:<13} fillseq {:>9.0} op/s ({:.2}x)   fillrandom {:>8.0} op/s ({:.2}x)   readrandom {:>7.0} op/s ({:.2}x)   readseq {:>8.0} op/s ({:.2}x)",
            s.kind.name(),
            s.fillseq.ops_per_sec(),
            s.fillseq.ops_per_sec() / base.fillseq.ops_per_sec().max(1e-12),
            s.fillrandom.ops_per_sec(),
            s.fillrandom.ops_per_sec() / base.fillrandom.ops_per_sec().max(1e-12),
            s.readrandom.ops_per_sec(),
            s.readrandom.ops_per_sec() / base.readrandom.ops_per_sec().max(1e-12),
            s.readseq.ops_per_sec(),
            s.readseq.ops_per_sec() / base.readseq.ops_per_sec().max(1e-12),
        ));
    }
    report.csvs.push(Csv {
        name: csv_name.into(),
        content: rows,
    });
}

/// Fig. 8: micro-benchmark performance of LevelDB, SMRDB and SEALDB,
/// normalised to LevelDB.
pub fn fig08(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 8 — micro-benchmark performance (normalised to LevelDB)");
    let suites: Vec<MicroSuite> = per_store_parallel(&StoreKind::MAIN, |kind| {
        micro_suite(kind, scale).expect("suite")
    });
    micro_rows(&suites, &mut report, "fig08_micro.csv");
    report.line("paper: SEALDB 3.42x LevelDB on random load, 1.67x over SMRDB; 3.96x seq read; 1.80x rand read");
    Ok(report)
}

// ---------------------------------------------------------------- Fig. 9

/// Fig. 9: YCSB workloads A–F on the three stores.
pub fn fig09(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 9 — YCSB macro-benchmark (ops per simulated second)");
    let specs = WorkloadSpec::all();
    let results: Vec<(StoreKind, Vec<(String, f64)>)> =
        per_store_parallel(&StoreKind::MAIN, |kind| {
            let (mut store, _) = loaded_store(kind, scale).expect("load");
            let gen = scale.generator();
            let mut out = Vec::new();
            for spec in WorkloadSpec::all() {
                let r = workloads::run_ycsb(
                    &mut store,
                    &gen,
                    &spec,
                    scale.load_records(),
                    scale.ycsb_ops,
                    scale.seed ^ 0x9C5B,
                )
                .expect("ycsb");
                out.push((spec.name.to_string(), r.ops_per_sec()));
            }
            (kind, out)
        });
    let mut rows = String::from("store,workload,ops_per_sec,normalized_to_leveldb\n");
    for (kind, series) in &results {
        let mut line = format!("{:<13}", kind.name());
        for (i, (name, ops)) in series.iter().enumerate() {
            let base = results[0].1[i].1.max(1e-12);
            line.push_str(&format!(" {name} {ops:>8.0} ({:.2}x)", ops / base));
            rows.push_str(&format!(
                "{},{name},{ops:.1},{:.3}\n",
                kind.name(),
                ops / base
            ));
        }
        report.line(line);
    }
    let _ = specs;
    report.csvs.push(Csv {
        name: "fig09_ycsb.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Fig. 10

/// Fig. 10: per-compaction latency series and average compaction size
/// during a random load.
pub fn fig10(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 10 — compaction latency and size during random load");
    let snaps: Vec<(StoreKind, StoreSnapshot)> = per_store_parallel(&StoreKind::MAIN, |kind| {
        let (store, _) = loaded_store(kind, scale).expect("load");
        (kind, store.snapshot())
    });
    let mut rows = String::from("store,compaction,start_s,latency_ms,output_mb,input_files\n");
    for (kind, snap) in &snaps {
        let real: Vec<_> = snap.real_compactions().collect();
        for c in &real {
            rows.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{}\n",
                kind.name(),
                c.id,
                c.start_ns as f64 / 1e9,
                c.duration_ns as f64 / 1e6,
                c.output_bytes as f64 / MB,
                c.input_files
            ));
        }
        let n = real.len().max(1) as f64;
        let avg_lat = real.iter().map(|c| c.duration_ns as f64).sum::<f64>() / n / 1e6;
        let avg_mb = snap.avg_compaction_bytes() / MB;
        report.line(format!(
            "{:<13} {} compactions, avg latency {avg_lat:.1} ms, total {:.2} s, avg compaction size {avg_mb:.2} MiB",
            kind.name(),
            real.len(),
            snap.total_compaction_ns() as f64 / 1e9,
        ));
    }
    report.line("paper: SEALDB 4.30x lower total latency than LevelDB; SMRDB avg 900 MB compactions; SEALDB avg set 27.48 MB");
    report.csvs.push(Csv {
        name: "fig10_compactions.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Fig. 11

/// Fig. 11: SEALDB set placement per compaction — the counterpart of
/// Fig. 2 showing each compaction writing one contiguous region.
pub fn fig11(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 11 — SEALDB set placement per compaction (dynamic bands)");
    let mut store = build_store(StoreKind::SealDb, scale)?;
    store.set_tracing(true);
    let gen = scale.generator();
    fill_random(&mut store, &gen, scale.load_records(), scale.seed)?;
    let trace = store.take_trace();
    let mut rows = String::from("compaction,file,offset_mb,len_kb\n");
    let mut compactions = std::collections::BTreeMap::<u64, (u64, u64)>::new();
    for e in trace
        .iter()
        .filter(|e| e.dir == TraceDir::Write && e.tag > 0 && e.kind == IoKind::CompactionWrite)
    {
        rows.push_str(&format!(
            "{},{},{:.3},{}\n",
            e.tag,
            e.file,
            e.ext.offset as f64 / MB,
            e.ext.len / 1024
        ));
        let entry = compactions.entry(e.tag).or_insert((u64::MAX, 0));
        entry.0 = entry.0.min(e.ext.offset);
        entry.1 = entry.1.max(e.ext.end());
    }
    let snap = store.snapshot();
    let contiguous = compactions
        .values()
        .filter(|(lo, hi)| {
            // A compaction is "contiguous" if its writes span exactly the
            // bytes written (no holes beyond rounding).
            hi > lo && (hi - lo) < scale.band_size() * 4
        })
        .count();
    report.line(format!("compactions traced: {}", compactions.len()));
    report.line(format!(
        "compactions writing one contiguous region: {contiguous} ({:.0}%)",
        100.0 * contiguous as f64 / compactions.len().max(1) as f64
    ));
    report.line(format!(
        "used disk span: {:.1} MiB for a {} MiB database (paper: 2.7 GB span for 10 GB)",
        snap.high_water as f64 / MB,
        scale.load_bytes >> 20
    ));
    if let Some(ss) = snap.set_stats {
        report.line(format!(
            "avg set: {:.2} MiB, {:.2} SSTables (paper: 27.48 MB, 6.87)",
            ss.avg_set_bytes() / MB,
            ss.avg_set_files()
        ));
    }
    report.csvs.push(Csv {
        name: "fig11_sealdb_layout.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Fig. 12

/// Fig. 12: WA, AWA and MWA of the three stores after a random load.
pub fn fig12(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 12 — write amplification (WA, AWA, MWA)");
    let snaps: Vec<(StoreKind, StoreSnapshot)> = per_store_parallel(&StoreKind::MAIN, |kind| {
        let (store, _) = loaded_store(kind, scale).expect("load");
        (kind, store.snapshot())
    });
    let mut rows = String::from("store,wa,awa,mwa\n");
    for (kind, snap) in &snaps {
        report.line(format!(
            "{:<13} WA {:>6.2}   AWA {:>6.2}   MWA {:>7.2}",
            kind.name(),
            snap.io.wa(),
            snap.io.awa(),
            snap.io.mwa()
        ));
        rows.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            kind.name(),
            snap.io.wa(),
            snap.io.awa(),
            snap.io.mwa()
        ));
    }
    let mwa_ld = snaps[0].1.io.mwa();
    let mwa_seal = snaps.last().expect("stores").1.io.mwa();
    report.line(format!(
        "SEALDB MWA reduction vs LevelDB: {:.2}x (paper: 6.70x)",
        mwa_ld / mwa_seal.max(1e-12)
    ));
    report.csvs.push(Csv {
        name: "fig12_write_amplification.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Fig. 13

/// Fig. 13: dynamic-band layout and fragments after a random load.
pub fn fig13(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Fig. 13 — dynamic bands and fragments");
    let (store, _) = loaded_store(StoreKind::SealDb, scale)?;
    let snap = store.snapshot();
    let avg_set = snap
        .set_stats
        .map_or(scale.band_size() as f64, |s| s.avg_set_bytes());
    // Fragments: free regions smaller than the average set size.
    let fragments: Vec<&Extent> = snap
        .free_regions
        .iter()
        .filter(|e| (e.len as f64) < avg_set)
        .collect();
    let frag_bytes: u64 = fragments.iter().map(|e| e.len).sum();
    let occupied = snap.high_water.max(1);
    let mut rows = String::from("kind,offset_mb,len_mb,members\n");
    for (ext, members) in &snap.bands {
        rows.push_str(&format!(
            "band,{:.3},{:.3},{members}\n",
            ext.offset as f64 / MB,
            ext.len as f64 / MB
        ));
    }
    for e in &snap.free_regions {
        let kind = if (e.len as f64) < avg_set {
            "fragment"
        } else {
            "free"
        };
        rows.push_str(&format!(
            "{kind},{:.3},{:.3},0\n",
            e.offset as f64 / MB,
            e.len as f64 / MB
        ));
    }
    report.line(format!("dynamic bands: {}", snap.bands.len()));
    report.line(format!(
        "banded region: {:.1} MiB for a {} MiB database",
        occupied as f64 / MB,
        scale.load_bytes >> 20
    ));
    report.line(format!(
        "fragments: {} regions, {:.1} MiB = {:.2}% of occupied space (paper: 9.32%)",
        fragments.len(),
        frag_bytes as f64 / MB,
        100.0 * frag_bytes as f64 / occupied as f64
    ));
    report.line(format!(
        "avg set size used as fragment threshold: {:.2} MiB",
        avg_set / MB
    ));
    // The paper's future work, implemented: a fragment GC pass.
    let mut store = store;
    let gc = store.collect_garbage(&lsm_core::GcConfig {
        fragment_threshold: avg_set as u64,
        target_fragment_ratio: 0.01,
        max_moves: 256,
    })?;
    let snap2 = store.snapshot();
    report.line(format!(
        "after GC (paper future work): relocated {} sets ({:.1} MiB moved), fragments {:.1} -> {:.1} MiB ({:.2}% of occupied)",
        gc.relocated_sets,
        gc.moved_bytes as f64 / MB,
        gc.fragments_before as f64 / MB,
        gc.fragments_after as f64 / MB,
        100.0 * gc.fragments_after as f64 / snap2.high_water.max(1) as f64
    ));
    report.csvs.push(Csv {
        name: "fig13_dynamic_bands.csv".into(),
        content: rows,
    });
    Ok(report)
}

// --------------------------------------------------------------- Fig. 14

/// Fig. 14: contribution analysis — LevelDB vs LevelDB+sets vs SEALDB
/// (sets + dynamic bands) on the four micro-benchmarks.
pub fn fig14(scale: &BenchScale) -> Result<Report> {
    let mut report =
        Report::new("Fig. 14 — contribution of sets vs dynamic bands (normalised to LevelDB)");
    let kinds = [
        StoreKind::LevelDb,
        StoreKind::LevelDbSets,
        StoreKind::SealDb,
    ];
    let suites: Vec<MicroSuite> =
        per_store_parallel(&kinds, |kind| micro_suite(kind, scale).expect("suite"));
    micro_rows(&suites, &mut report, "fig14_contribution.csv");
    report.line("paper: sets alone give ~41-50% of the read/random-write gains; sequential write improves only with dynamic bands");
    Ok(report)
}

// --------------------------------------------------------------- Ablation

/// Ablation of SEALDB's design choices (beyond the paper's Fig. 14):
///
/// * victim-priority picking on/off (§III-C *Delete*),
/// * per-file placement over dynamic bands (sets removed, device layer
///   kept),
/// * guard-region size sweep (Eq. 1's `S_guard`).
pub fn ablation(scale: &BenchScale) -> Result<Report> {
    use lsm_core::{DbCore, PerFilePolicy, PlacementPolicy};
    use placement::DynamicBandAlloc;
    use sealdb::SetPolicy;
    use smr_sim::Disk;

    /// One ablation row: label, policy factory (data capacity → policy),
    /// guard-region bytes for the disk layout.
    type Variant = (String, Box<dyn Fn(u64) -> Box<dyn PlacementPolicy>>, u64);

    let mut report = Report::new("Ablation — SEALDB design choices on a random load");
    let mut rows =
        String::from("variant,ops_per_sec,wa,mwa,frontier_mb,free_pool_mb,fragments_mb\n");

    let build_variant = |policy_for: &dyn Fn(u64) -> Box<dyn PlacementPolicy>,
                         guard: u64|
     -> Result<sealdb::Store> {
        let opts = {
            let mut o = lsm_core::Options::scaled(scale.sstable);
            o.seed = scale.seed;
            o
        };
        let cap = scale.disk_capacity();
        let disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: guard },
            TimeModel::smr_st5000as0011(cap),
        );
        let data_cap = cap - opts.log_zone_bytes - guard;
        let db = DbCore::open(disk, opts, policy_for(data_cap))?;
        let ord_audit = sealdb::Store::fresh_auditor(&db, None);
        Ok(sealdb::Store {
            kind: StoreKind::SealDb,
            db,
            instance: None,
            vlog: None,
            ord_audit,
        })
    };

    let sst = scale.sstable;
    let variants: Vec<Variant> = vec![
        (
            "sets+priority (SEALDB)".into(),
            Box::new(move |cap| {
                Box::new(SetPolicy::new(Box::new(DynamicBandAlloc::new(
                    cap, sst, sst,
                ))))
            }),
            sst,
        ),
        (
            "sets, no priority".into(),
            Box::new(move |cap| {
                Box::new(
                    SetPolicy::new(Box::new(DynamicBandAlloc::new(cap, sst, sst)))
                        .without_priority_picking(),
                )
            }),
            sst,
        ),
        (
            "per-file on dynamic bands".into(),
            Box::new(move |cap| {
                Box::new(PerFilePolicy::new(Box::new(DynamicBandAlloc::new(
                    cap, sst, sst,
                ))))
            }),
            sst,
        ),
        (
            "sets, guard 2x SSTable".into(),
            Box::new(move |cap| {
                Box::new(SetPolicy::new(Box::new(DynamicBandAlloc::new(
                    cap,
                    sst,
                    2 * sst,
                ))))
            }),
            2 * sst,
        ),
        (
            "sets, guard 4x SSTable".into(),
            Box::new(move |cap| {
                Box::new(SetPolicy::new(Box::new(DynamicBandAlloc::new(
                    cap,
                    sst,
                    4 * sst,
                ))))
            }),
            4 * sst,
        ),
    ];

    for (name, policy_for, guard) in &variants {
        let mut store = build_variant(policy_for.as_ref(), *guard)?;
        let gen = scale.generator();
        let res = workloads::fill_random(&mut store, &gen, scale.load_records(), scale.seed)?;
        let snap = store.snapshot();
        let avg_set = snap
            .set_stats
            .map_or(scale.band_size() as f64, |s| s.avg_set_bytes());
        let frag_bytes: u64 = snap
            .free_regions
            .iter()
            .filter(|e| (e.len as f64) < avg_set)
            .map(|e| e.len)
            .sum();
        let free_pool: u64 = snap.free_regions.iter().map(|e| e.len).sum();
        report.line(format!(
            "{name:<28} {:>8.0} op/s  WA {:>5.2}  MWA {:>6.2}  frontier {:>7.1} MiB  fragments {:>6.1} MiB",
            res.ops_per_sec(),
            snap.io.wa(),
            snap.io.mwa(),
            snap.high_water as f64 / MB,
            frag_bytes as f64 / MB,
        ));
        rows.push_str(&format!(
            "{name},{:.1},{:.3},{:.3},{:.2},{:.2},{:.2}\n",
            res.ops_per_sec(),
            snap.io.wa(),
            snap.io.mwa(),
            snap.high_water as f64 / MB,
            free_pool as f64 / MB,
            frag_bytes as f64 / MB,
        ));
    }
    report.line("expected: priority picking trims fragments at equal WA; sets matter mainly for compaction streaming; larger guards waste reuse opportunities (bigger frontier)");
    report.csvs.push(Csv {
        name: "ablation_design_choices.csv".into(),
        content: rows,
    });
    Ok(report)
}

// ---------------------------------------------------------------- HA-SMR

/// HA-SMR justification experiment (§II-C): the paper argues that
/// drive-managed media caches "cannot address the MWA problem, since
/// cache cleaning processes induce large latency ... and bring a bimodal
/// behavior". Runs LevelDB on an HA-SMR drive (media cache = 1/64 of
/// capacity) and contrasts per-write latency and MWA against the
/// fixed-band drive and SEALDB.
pub fn hasmr(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("HA-SMR — media-cache bimodality and MWA (paper §II-C)");
    // LevelDB over HA-SMR with per-put latency sampling.
    let mut cfg =
        sealdb::StoreConfig::new(StoreKind::LevelDb, scale.sstable, scale.disk_capacity());
    cfg.seed = scale.seed;
    cfg.layout_override = Some(Layout::HaSmr {
        band_size: scale.band_size(),
        media_cache_bytes: scale.disk_capacity() / 64,
    });
    let mut store = cfg.build()?;
    let gen = scale.generator();
    let n = scale.load_records();
    let mut rows = String::from("op,latency_ms\n");
    let mut latencies: Vec<u64> = Vec::with_capacity(n as usize);
    for i in 0..n {
        let j = workloads::permute(i, n, scale.seed);
        let t0 = store.clock_ns();
        store.put(&gen.key(j), &gen.value(j))?;
        let dt = store.clock_ns() - t0;
        latencies.push(dt);
        // Keep the CSV plottable: every 64th op plus every stall.
        if i % 64 == 0 || dt > 50_000_000 {
            rows.push_str(&format!("{i},{:.3}\n", dt as f64 / 1e6));
        }
    }
    store.flush()?;
    let snap = store.snapshot();
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let pct = |p: f64| sorted[(p * (sorted.len() - 1) as f64) as usize] as f64 / 1e6;
    let cleanings = store.db.ctx().lock().fs.disk().cleaning_passes();
    report.line(format!(
        "LevelDB on HA-SMR: p50 {:.3} ms, p99 {:.3} ms, max {:.1} ms — bimodal (cleanings: {cleanings})",
        pct(0.50),
        pct(0.99),
        *sorted.last().expect("nonempty") as f64 / 1e6
    ));
    report.line(format!(
        "LevelDB on HA-SMR: WA {:.2}, AWA {:.2}, MWA {:.2} (cache cleaning does not solve MWA)",
        snap.io.wa(),
        snap.io.awa(),
        snap.io.mwa()
    ));
    // Reference points at the same scale.
    let refs: Vec<(StoreKind, StoreSnapshot)> =
        per_store_parallel(&[StoreKind::LevelDb, StoreKind::SealDb], |kind| {
            let (store, _) = loaded_store(kind, scale).expect("load");
            (kind, store.snapshot())
        });
    for (kind, s) in &refs {
        report.line(format!(
            "{} on {}: MWA {:.2}",
            kind.name(),
            if *kind == StoreKind::SealDb {
                "raw HM-SMR"
            } else {
                "fixed-band SMR"
            },
            s.io.mwa()
        ));
    }
    report.csvs.push(Csv {
        name: "hasmr_latency_series.csv".into(),
        content: rows,
    });
    Ok(report)
}

// ---------------------------------------------------------- Serve sweep

/// Latency under load: the multi-client serving front-end sweeps offered
/// load per store and reports throughput, tail latency, queue depth, and
/// write stalls (the PR 3 `BENCH_pr3.json` artifact in table form).
pub fn serve(scale: &BenchScale) -> Result<Report> {
    let mut report = Report::new("Serve — latency under offered load (multi-client front-end)");
    let sweeps = crate::serve_run::run_sweep(scale)?;
    let mut rows = String::from(
        "store,offered_ops_per_sec,throughput_ops_per_sec,p50_ms,p95_ms,p99_ms,max_ms,queue_depth_max,stalls,avg_group_size\n",
    );
    let ms = |ns: u64| ns as f64 / 1e6;
    for sweep in &sweeps {
        report.line(format!(
            "{}: saturation {:.0} ops/s (closed loop, {} clients)",
            sweep.store,
            sweep.saturation_ops_per_sec,
            crate::serve_run::CLIENTS
        ));
        for p in &sweep.points {
            let r = &p.result;
            report.line(format!(
                "  offered {:>8.0} ops/s -> {:>8.0} ops/s, p50 {:>8.3} ms, p99 {:>9.3} ms, depth {:>3}, stalls {:>4}, group {:.2}",
                p.offered_ops_per_sec,
                r.throughput_ops_per_sec,
                ms(r.latency.p50_ns),
                ms(r.latency.p99_ns),
                r.queue_depth_max,
                r.stalls.total_count(),
                r.avg_group_size(),
            ));
            rows.push_str(&format!(
                "{},{:.3},{:.3},{:.4},{:.4},{:.4},{:.4},{},{},{:.3}\n",
                sweep.store,
                p.offered_ops_per_sec,
                r.throughput_ops_per_sec,
                ms(r.latency.p50_ns),
                ms(r.latency.p95_ns),
                ms(r.latency.p99_ns),
                ms(r.latency.max_ns),
                r.queue_depth_max,
                r.stalls.total_count(),
                r.avg_group_size(),
            ));
        }
    }
    report.csvs.push(Csv {
        name: "serve_latency_under_load.csv".into(),
        content: rows,
    });
    Ok(report)
}
