//! The latency-under-load artifact behind `--serve-out` and
//! `--serve-check` (`BENCH_pr3.json`).
//!
//! Per main store: a closed-loop run (zero think time) measures the
//! saturation throughput, then open-loop Poisson points at fractions and
//! multiples of it trace the latency-vs-offered-load curve — throughput
//! plateaus at the knee while p99 and queue depth climb, and past the
//! knee the L0 slowdown/stop triggers surface as stall counts. Every
//! point runs on a freshly preloaded store so no state leaks between
//! load levels, and everything rides the simulated clock: two same-seed
//! sweeps serialize byte-identically.

use crate::BenchScale;
use lsm_core::Result;
use seal_front::{run_serve, ServeConfig, ServeResult};
use sealdb::{Store, StoreKind};
use std::fmt::Write as _;
use workloads::{ArrivalProcess, WorkloadSpec};

/// Schema marker the checker requires at the top of the artifact.
pub const SERVE_SCHEMA: &str = "sealdb-serve-v1";

/// Virtual clients per serving run.
pub const CLIENTS: usize = 4;

/// Offered load as a fraction of the measured saturation throughput.
pub const LOAD_MULTIPLIERS: [f64; 4] = [0.5, 0.8, 1.0, 1.3];

/// Keys that must appear once per sweep point in a valid artifact.
const POINT_KEYS: [&str; 12] = [
    "\"offered_ops_per_sec\"",
    "\"throughput_ops_per_sec\"",
    "\"mean_ns\"",
    "\"p50_ns\"",
    "\"p95_ns\"",
    "\"p99_ns\"",
    "\"max_ns\"",
    "\"queue_depth_max\"",
    "\"stall_slowdowns\"",
    "\"stall_stops\"",
    "\"stall_memtables\"",
    "\"avg_group_size\"",
];

fn point_json(offered_per_client: f64, r: &ServeResult) -> String {
    format!(
        concat!(
            "{{\"offered_ops_per_sec\":{:.3},\"throughput_ops_per_sec\":{:.3},",
            "\"mean_ns\":{:.1},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},",
            "\"queue_delay_mean_ns\":{:.1},\"queue_depth_max\":{},\"queue_depth_mean\":{:.3},",
            "\"stall_slowdowns\":{},\"stall_stops\":{},\"stall_memtables\":{},\"stall_ns\":{},",
            "\"write_calls\":{},\"write_ops\":{},\"avg_group_size\":{:.3},",
            "\"idle_compactions\":{}}}"
        ),
        offered_per_client * CLIENTS as f64,
        r.throughput_ops_per_sec,
        r.latency.mean_ns,
        r.latency.p50_ns,
        r.latency.p95_ns,
        r.latency.p99_ns,
        r.latency.max_ns,
        r.queue_delay.mean_ns,
        r.queue_depth_max,
        r.queue_depth_mean,
        r.stalls.slowdown_count,
        r.stalls.stop_count,
        r.stalls.memtable_count,
        r.stalls.total_ns(),
        r.write_calls,
        r.write_ops,
        r.avg_group_size(),
        r.idle_compactions,
    )
}

/// One offered-load level of a store's sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Total offered load across all clients, ops per simulated second.
    pub offered_ops_per_sec: f64,
    /// Everything the serving run measured at this load.
    pub result: ServeResult,
}

/// One store's full sweep.
#[derive(Clone, Debug)]
pub struct StoreSweep {
    /// Display name of the store.
    pub store: &'static str,
    /// Closed-loop (zero think time) saturation throughput.
    pub saturation_ops_per_sec: f64,
    /// Open-loop points, in [`LOAD_MULTIPLIERS`] order.
    pub points: Vec<SweepPoint>,
}

fn sweep_store(kind: StoreKind, scale: &BenchScale) -> Result<StoreSweep> {
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let ops = scale.ycsb_ops.max(CLIENTS as u64);
    let spec = WorkloadSpec::serve_mix();
    let fresh = || -> Result<Store> {
        let mut store = crate::build_store(kind, scale)?;
        workloads::fill_random(&mut store, &gen, records, scale.seed)?;
        Ok(store)
    };

    // Saturation: closed loop, zero think time — the store serves as
    // fast as it can.
    let mut store = fresh()?;
    let closed = ServeConfig::new(
        spec,
        ArrivalProcess::ClosedLoop { think_ns: 0 },
        CLIENTS,
        ops,
        records,
    )
    .with_seed(scale.seed);
    let sat = run_serve(&mut store, &gen, &closed)?;
    let t_sat = sat.throughput_ops_per_sec;

    let mut points = Vec::with_capacity(LOAD_MULTIPLIERS.len());
    for mult in LOAD_MULTIPLIERS {
        let per_client = t_sat * mult / CLIENTS as f64;
        let mut store = fresh()?;
        let cfg = ServeConfig::new(
            spec,
            ArrivalProcess::OpenLoopPoisson {
                ops_per_sec: per_client,
            },
            CLIENTS,
            ops,
            records,
        )
        .with_seed(scale.seed);
        let result = run_serve(&mut store, &gen, &cfg)?;
        points.push(SweepPoint {
            offered_ops_per_sec: per_client * CLIENTS as f64,
            result,
        });
    }
    Ok(StoreSweep {
        store: kind.name(),
        saturation_ops_per_sec: t_sat,
        points,
    })
}

/// Runs the sweep over [`StoreKind::MAIN`], one store per thread, and
/// returns the structured results in presentation order.
pub fn run_sweep(scale: &BenchScale) -> Result<Vec<StoreSweep>> {
    crate::per_store_parallel(&StoreKind::MAIN, |kind| sweep_store(kind, scale))
        .into_iter()
        .collect()
}

/// Serialises a sweep as the `BENCH_pr3.json` artifact.
pub fn sweep_to_json(scale: &BenchScale, sweeps: &[StoreSweep]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{SERVE_SCHEMA}\",\"seed\":{},\"sstable\":{},\"records\":{},\"ops\":{},\"clients\":{},\"workload\":\"S\",\"stores\":[",
        scale.seed,
        scale.sstable,
        scale.load_records().max(1),
        scale.ycsb_ops.max(CLIENTS as u64),
        CLIENTS,
    );
    for (i, sweep) in sweeps.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"store\":\"{}\",\"saturation_ops_per_sec\":{:.3},\"points\":[",
            sweep.store, sweep.saturation_ops_per_sec
        );
        for (j, p) in sweep.points.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&point_json(
                p.offered_ops_per_sec / CLIENTS as f64,
                &p.result,
            ));
        }
        s.push_str("]}");
    }
    s.push_str("]}\n");
    s
}

/// Runs the serving sweep over [`StoreKind::MAIN`] and returns the
/// artifact as a JSON string.
pub fn serve_sweep(scale: &BenchScale) -> Result<String> {
    Ok(sweep_to_json(scale, &run_sweep(scale)?))
}

/// Validates a serving artifact: schema marker, one sweep per main
/// store, every point key present the right number of times, and no
/// NaN/Inf anywhere. Returns the list of problems; empty means valid.
pub fn check_serve_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{SERVE_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    for key in ["\"seed\":", "\"clients\":", "\"ops\":"] {
        if !content.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    let expected_stores = StoreKind::MAIN.len();
    let stores = content.matches("\"store\":").count();
    if stores != expected_stores {
        problems.push(format!(
            "expected {expected_stores} store sweeps, found {stores}"
        ));
    }
    let sat = content.matches("\"saturation_ops_per_sec\":").count();
    if sat != expected_stores {
        problems.push(format!(
            "key \"saturation_ops_per_sec\" appears {sat} times, expected {expected_stores}"
        ));
    }
    let expected_points = expected_stores * LOAD_MULTIPLIERS.len();
    for key in POINT_KEYS {
        let n = content.matches(key).count();
        if n != expected_points {
            problems.push(format!(
                "key {key} appears {n} times, expected {expected_points}"
            ));
        }
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One sweep shared by every test that only reads the artifact (the
    /// sweep preloads 15 stores; running it once keeps the suite fast).
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| serve_sweep(&test_scale()).unwrap())
    }

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        // Clear of the 16 MiB log zone (capacity = 12x load) with room
        // for the deferred-mode L0 buildup the sweep provokes.
        s.load_bytes = 4 << 20;
        s.capacity_ratio = 12;
        s.ycsb_ops = 400;
        s
    }

    /// Pulls `"key":value` numbers out of the artifact in order.
    fn values(content: &str, key: &str) -> Vec<f64> {
        let pat = format!("\"{key}\":");
        content
            .match_indices(&pat)
            .map(|(i, _)| {
                let rest = &content[i + pat.len()..];
                let end = rest
                    .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                    .unwrap_or(rest.len());
                rest[..end].parse::<f64>().unwrap()
            })
            .collect()
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = serve_sweep(&test_scale()).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_serve_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
        for store in ["LevelDB", "SMRDB", "SEALDB"] {
            assert!(a.contains(&format!("\"store\":\"{store}\"")));
        }
    }

    #[test]
    fn latency_rises_with_offered_load() {
        let artifact = artifact();
        let p99 = values(artifact, "p99_ns");
        let n = LOAD_MULTIPLIERS.len();
        assert_eq!(p99.len(), 3 * n);
        for (s, chunk) in p99.chunks(n).enumerate() {
            // Past the knee the tail must inflate: the overload point's
            // p99 strictly exceeds the half-load point's.
            assert!(
                chunk[n - 1] > chunk[0],
                "store {s}: p99 {chunk:?} did not rise with load"
            );
        }
        // Throughput cannot exceed what was offered (open loop serves
        // only what arrived).
        let offered = values(artifact, "offered_ops_per_sec");
        let got = values(artifact, "throughput_ops_per_sec");
        for (o, g) in offered.iter().zip(&got) {
            assert!(g <= &(o * 1.05), "throughput {g} exceeds offered {o}");
        }
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_serve_json("{}").is_empty());
        let doc = format!(
            "{{\"schema\":\"{SERVE_SCHEMA}\",\"seed\":1,\"clients\":4,\"ops\":9,\"stores\":[]}}"
        );
        assert!(check_serve_json(&doc)
            .iter()
            .any(|p| p.contains("store sweeps")));
        let doc = doc.replace("\"seed\":1", "\"seed\":NaN");
        assert!(check_serve_json(&doc)
            .iter()
            .any(|p| p.contains("non-finite")));
    }
}
