//! `seal-bench` — regenerates the paper's tables and figures.
//!
//! ```text
//! seal-bench <experiment> [options]
//!
//! experiments:
//!   fig02 fig03 table2 fig08 ... fig14 ablation hasmr | all
//!
//! options:
//!   --sstable-kb N   SSTable size in KiB        (default 256; paper 4096)
//!   --load-mb N      payload to load in MiB     (default 256; paper 102400)
//!   --value N        value size in bytes        (default 1024; paper 4096)
//!   --read-ops N     point/seq read operations  (default 20000)
//!   --ycsb-ops N     YCSB operations/workload   (default 10000)
//!   --seed N         determinism seed
//!   --out DIR        CSV output directory       (default results/)
//!   --tiny           CI-speed smoke scale
//! ```

use bench::experiments::{self, Report};
use bench::BenchScale;
use std::io::Write as _;

fn parse_args() -> (Vec<String>, BenchScale, String) {
    let mut scale = BenchScale::default();
    let mut out_dir = "results".to_string();
    let mut experiments = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |i: &mut usize, args: &[String]| -> u64 {
        *i += 1;
        args.get(*i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("missing/invalid numeric value for {}", args[*i - 1]);
                std::process::exit(2);
            })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sstable-kb" => scale.sstable = need(&mut i, &args) << 10,
            "--load-mb" => scale.load_bytes = need(&mut i, &args) << 20,
            "--value" => scale.value_size = need(&mut i, &args) as usize,
            "--read-ops" => scale.read_ops = need(&mut i, &args),
            "--ycsb-ops" => scale.ycsb_ops = need(&mut i, &args),
            "--seed" => scale.seed = need(&mut i, &args),
            "--tiny" => scale = BenchScale::tiny(),
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or(out_dir);
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    (experiments, scale, out_dir)
}

fn run_one(name: &str, scale: &BenchScale) -> Option<Report> {
    let started = std::time::Instant::now();
    let report = match name {
        "fig02" => experiments::fig02(scale),
        "fig03" => experiments::fig03(scale),
        "table2" => experiments::table2(scale),
        "fig08" => experiments::fig08(scale),
        "fig09" => experiments::fig09(scale),
        "fig10" => experiments::fig10(scale),
        "fig11" => experiments::fig11(scale),
        "fig12" => experiments::fig12(scale),
        "fig13" => experiments::fig13(scale),
        "fig14" => experiments::fig14(scale),
        "ablation" => experiments::ablation(scale),
        "hasmr" => experiments::hasmr(scale),
        _ => {
            eprintln!("unknown experiment: {name}");
            return None;
        }
    };
    match report {
        Ok(r) => {
            println!("{}", r.render());
            println!("  [wall-clock {:.1} s]\n", started.elapsed().as_secs_f64());
            Some(r)
        }
        Err(e) => {
            eprintln!("experiment {name} failed: {e}");
            None
        }
    }
}

const ALL: [&str; 12] = [
    "fig02", "fig03", "table2", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "ablation", "hasmr",
];

fn main() {
    let (mut wanted, scale, out_dir) = parse_args();
    if wanted.is_empty() {
        eprintln!("usage: seal-bench <fig02|fig03|table2|fig08..fig14|all> [options]");
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "scale: sstable {} KiB, band {} KiB, value {} B, load {} MiB ({} records), capacity {} MiB, linear factor {:.4}\n",
        scale.sstable >> 10,
        scale.band_size() >> 10,
        scale.value_size,
        scale.load_bytes >> 20,
        scale.load_records(),
        scale.disk_capacity() >> 20,
        scale.linear_factor(),
    );
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    for name in &wanted {
        if let Some(report) = run_one(name, &scale) {
            for csv in &report.csvs {
                let path = format!("{out_dir}/{}", csv.name);
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(csv.content.as_bytes()).expect("write csv");
                println!("  wrote {path}");
            }
        }
    }
}
