//! `seal-bench` — regenerates the paper's tables and figures.
//!
//! ```text
//! seal-bench <experiment> [options]
//!
//! experiments:
//!   fig02 fig03 table2 fig08 ... fig14 ablation hasmr | all
//!
//! options:
//!   --sstable-kb N   SSTable size in KiB        (default 256; paper 4096)
//!   --load-mb N      payload to load in MiB     (default 256; paper 102400)
//!   --value N        value size in bytes        (default 1024; paper 4096)
//!   --read-ops N     point/seq read operations  (default 20000)
//!   --ycsb-ops N     YCSB operations/workload   (default 10000)
//!   --seed N         determinism seed
//!   --out DIR        CSV output directory       (default results/)
//!   --tiny           CI-speed smoke scale
//!   --serving        canonical latency-under-load sweep scale
//!   --metrics-out F  run the observability trajectory, write artifact F
//!   --metrics-check F  validate a previously written artifact
//!   --serve-out F    run the latency-under-load sweep, write artifact F
//!   --serve-check F  validate a previously written serve artifact
//!   --scrub-out F    run the durability-under-latent-errors sweep, write artifact F
//!   --scrub-check F  validate a previously written scrub artifact
//!   --replicate-out F    run the replication/failover sweep, write artifact F
//!   --replicate-check F  validate a previously written replication artifact
//!   --shard-out F    run the multi-shard scale-out sweep, write artifact F
//!   --shard-check F  validate a previously written shard artifact
//!   --vlog-out F     run the key-value-separation sweep, write artifact F
//!   --vlog-check F   validate a previously written vlog artifact
//!   --chaos-out F    run the composed-fault chaos sweep, write artifact F
//!   --chaos-check F  validate a previously written chaos artifact
//!   --chaos-schedules N  seeded schedules in the chaos sweep (default 25)
//! ```
//!
//! `serve` as an experiment name runs the sweep and prints the latency
//! table; `--metrics-out` / `--metrics-check` / `--serve-out` /
//! `--serve-check` work without an experiment name.

use bench::experiments::{self, Report};
use bench::BenchScale;
use std::io::Write as _;

#[derive(Default)]
struct MetricsArgs {
    out: Option<String>,
    check: Option<String>,
    serve_out: Option<String>,
    serve_check: Option<String>,
    scrub_out: Option<String>,
    scrub_check: Option<String>,
    replicate_out: Option<String>,
    replicate_check: Option<String>,
    shard_out: Option<String>,
    shard_check: Option<String>,
    vlog_out: Option<String>,
    vlog_check: Option<String>,
    chaos_out: Option<String>,
    chaos_check: Option<String>,
    chaos_schedules: usize,
}

fn parse_args() -> (Vec<String>, BenchScale, String, MetricsArgs) {
    let mut scale = BenchScale::default();
    let mut out_dir = "results".to_string();
    let mut metrics = MetricsArgs {
        chaos_schedules: 25,
        ..MetricsArgs::default()
    };
    let mut experiments = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let need = |i: &mut usize, args: &[String]| -> u64 {
        *i += 1;
        args.get(*i)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("missing/invalid numeric value for {}", args[*i - 1]);
                std::process::exit(2);
            })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sstable-kb" => scale.sstable = need(&mut i, &args) << 10,
            "--load-mb" => scale.load_bytes = need(&mut i, &args) << 20,
            "--value" => scale.value_size = need(&mut i, &args) as usize,
            "--read-ops" => scale.read_ops = need(&mut i, &args),
            "--ycsb-ops" => scale.ycsb_ops = need(&mut i, &args),
            "--seed" => scale.seed = need(&mut i, &args),
            "--tiny" => scale = BenchScale::tiny(),
            "--serving" => scale = BenchScale::serving(),
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or(out_dir);
            }
            "--metrics-out" => {
                i += 1;
                metrics.out = args.get(i).cloned();
            }
            "--metrics-check" => {
                i += 1;
                metrics.check = args.get(i).cloned();
            }
            "--serve-out" => {
                i += 1;
                metrics.serve_out = args.get(i).cloned();
            }
            "--serve-check" => {
                i += 1;
                metrics.serve_check = args.get(i).cloned();
            }
            "--scrub-out" => {
                i += 1;
                metrics.scrub_out = args.get(i).cloned();
            }
            "--scrub-check" => {
                i += 1;
                metrics.scrub_check = args.get(i).cloned();
            }
            "--replicate-out" => {
                i += 1;
                metrics.replicate_out = args.get(i).cloned();
            }
            "--replicate-check" => {
                i += 1;
                metrics.replicate_check = args.get(i).cloned();
            }
            "--shard-out" => {
                i += 1;
                metrics.shard_out = args.get(i).cloned();
            }
            "--shard-check" => {
                i += 1;
                metrics.shard_check = args.get(i).cloned();
            }
            "--vlog-out" => {
                i += 1;
                metrics.vlog_out = args.get(i).cloned();
            }
            "--vlog-check" => {
                i += 1;
                metrics.vlog_check = args.get(i).cloned();
            }
            "--chaos-out" => {
                i += 1;
                metrics.chaos_out = args.get(i).cloned();
            }
            "--chaos-check" => {
                i += 1;
                metrics.chaos_check = args.get(i).cloned();
            }
            "--chaos-schedules" => metrics.chaos_schedules = need(&mut i, &args) as usize,
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    (experiments, scale, out_dir, metrics)
}

fn run_one(name: &str, scale: &BenchScale) -> Option<Report> {
    let started = std::time::Instant::now();
    let report = match name {
        "fig02" => experiments::fig02(scale),
        "fig03" => experiments::fig03(scale),
        "table2" => experiments::table2(scale),
        "fig08" => experiments::fig08(scale),
        "fig09" => experiments::fig09(scale),
        "fig10" => experiments::fig10(scale),
        "fig11" => experiments::fig11(scale),
        "fig12" => experiments::fig12(scale),
        "fig13" => experiments::fig13(scale),
        "fig14" => experiments::fig14(scale),
        "ablation" => experiments::ablation(scale),
        "hasmr" => experiments::hasmr(scale),
        "serve" => experiments::serve(scale),
        _ => {
            eprintln!("unknown experiment: {name}");
            return None;
        }
    };
    match report {
        Ok(r) => {
            println!("{}", r.render());
            println!("  [wall-clock {:.1} s]\n", started.elapsed().as_secs_f64());
            Some(r)
        }
        Err(e) => {
            eprintln!("experiment {name} failed: {e}");
            None
        }
    }
}

const ALL: [&str; 12] = [
    "fig02", "fig03", "table2", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "ablation", "hasmr",
];

fn run_metrics(scale: &BenchScale, metrics: &MetricsArgs) {
    if let Some(path) = &metrics.out {
        let started = std::time::Instant::now();
        match bench::metrics_run::metrics_trajectory(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write metrics artifact");
                println!(
                    "wrote metrics artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("metrics trajectory failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read metrics artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::metrics_run::check_metrics_json(&content);
        if problems.is_empty() {
            println!("metrics artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("metrics artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.serve_out {
        let started = std::time::Instant::now();
        match bench::serve_run::serve_sweep(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write serve artifact");
                println!(
                    "wrote serve artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("serve sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.serve_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read serve artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::serve_run::check_serve_json(&content);
        if problems.is_empty() {
            println!("serve artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("serve artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.scrub_out {
        let started = std::time::Instant::now();
        match bench::scrub_run::scrub_sweep(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write scrub artifact");
                println!(
                    "wrote scrub artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("scrub sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.scrub_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read scrub artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::scrub_run::check_scrub_json(&content);
        if problems.is_empty() {
            println!("scrub artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("scrub artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.replicate_out {
        let started = std::time::Instant::now();
        match bench::replicate_run::replicate_sweep(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write replication artifact");
                println!(
                    "wrote replication artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("replication sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.replicate_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read replication artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::replicate_run::check_replicate_json(&content);
        if problems.is_empty() {
            println!("replication artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("replication artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.shard_out {
        let started = std::time::Instant::now();
        match bench::shard_run::shard_sweep(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write shard artifact");
                println!(
                    "wrote shard artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("shard sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.shard_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read shard artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::shard_run::check_shard_json(&content);
        if problems.is_empty() {
            println!("shard artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("shard artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.vlog_out {
        let started = std::time::Instant::now();
        match bench::vlog_run::vlog_sweep(scale) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write vlog artifact");
                println!(
                    "wrote vlog artifact {path} ({} bytes) [wall-clock {:.1} s]",
                    json.len(),
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("vlog sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.vlog_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read vlog artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::vlog_run::check_vlog_json(&content);
        if problems.is_empty() {
            println!("vlog artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("vlog artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
    if let Some(path) = &metrics.chaos_out {
        let started = std::time::Instant::now();
        match bench::chaos_run::chaos_sweep(scale, metrics.chaos_schedules) {
            Ok(json) => {
                std::fs::write(path, &json).expect("write chaos artifact");
                println!(
                    "wrote chaos artifact {path} ({} bytes, {} schedules) [wall-clock {:.1} s]",
                    json.len(),
                    metrics.chaos_schedules,
                    started.elapsed().as_secs_f64()
                );
            }
            Err(e) => {
                eprintln!("chaos sweep failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &metrics.chaos_check {
        let content = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read chaos artifact {path}: {e}");
            std::process::exit(1);
        });
        let problems = bench::chaos_run::check_chaos_json(&content);
        if problems.is_empty() {
            println!("chaos artifact {path} is valid");
        } else {
            for p in &problems {
                eprintln!("chaos artifact {path}: {p}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let (mut wanted, scale, out_dir, metrics) = parse_args();
    if metrics.out.is_some()
        || metrics.check.is_some()
        || metrics.serve_out.is_some()
        || metrics.serve_check.is_some()
        || metrics.scrub_out.is_some()
        || metrics.scrub_check.is_some()
        || metrics.replicate_out.is_some()
        || metrics.replicate_check.is_some()
        || metrics.shard_out.is_some()
        || metrics.shard_check.is_some()
        || metrics.vlog_out.is_some()
        || metrics.vlog_check.is_some()
        || metrics.chaos_out.is_some()
        || metrics.chaos_check.is_some()
    {
        run_metrics(&scale, &metrics);
        if wanted.is_empty() {
            return;
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: seal-bench <fig02|fig03|table2|fig08..fig14|serve|all> [options]");
        eprintln!("       seal-bench --metrics-out FILE | --metrics-check FILE [options]");
        eprintln!("       seal-bench --serve-out FILE | --serve-check FILE [options]");
        eprintln!("       seal-bench --scrub-out FILE | --scrub-check FILE [options]");
        eprintln!("       seal-bench --replicate-out FILE | --replicate-check FILE [options]");
        eprintln!("       seal-bench --shard-out FILE | --shard-check FILE [options]");
        eprintln!("       seal-bench --vlog-out FILE | --vlog-check FILE [options]");
        eprintln!("       seal-bench --chaos-out FILE | --chaos-check FILE [--chaos-schedules N] [options]");
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "scale: sstable {} KiB, band {} KiB, value {} B, load {} MiB ({} records), capacity {} MiB, linear factor {:.4}\n",
        scale.sstable >> 10,
        scale.band_size() >> 10,
        scale.value_size,
        scale.load_bytes >> 20,
        scale.load_records(),
        scale.disk_capacity() >> 20,
        scale.linear_factor(),
    );
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    for name in &wanted {
        if let Some(report) = run_one(name, &scale) {
            for csv in &report.csvs {
                let path = format!("{out_dir}/{}", csv.name);
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(csv.content.as_bytes()).expect("write csv");
                println!("  wrote {path}");
            }
        }
    }
}
