//! The durability-across-nodes artifact behind `--replicate-out` and
//! `--replicate-check` (`BENCH_pr6.json`).
//!
//! Each cell builds a fresh three-node cluster (one primary, two
//! replicas) on the seeded simulated network, streams writes through
//! the configured ship mode and ack policy, kills the primary at a
//! sweep-chosen point, fails over, lets the old primary rejoin by
//! catch-up streaming, finishes the write stream on the new primary,
//! and audits every acked write. The sweep crosses ship mode (WAL
//! apply vs index-lazy) × ack policy (primary-only vs quorum-1) ×
//! base link latency × kill point.
//!
//! Headline invariants, re-checked by CI:
//!
//! * **RPO** — every quorum-ack cell loses **zero** acked writes, while
//!   at least one primary-only cell loses its unshipped tail (the kill
//!   points are odd, so the async ship buffer is never empty).
//! * **RTO** — every failover completes in finite positive time, and
//!   within each (mode, ack, kill point) group the measured RTO is
//!   strictly monotone in the base link latency: detection is constant,
//!   fencing and client redirect scale with the link, and replay is
//!   latency-independent.
//!
//! Everything runs on the simulated clock with seeded jitter, so two
//! runs at the same seed produce byte-identical artifacts.

use crate::BenchScale;
use lsm_core::Result;
use seal_replica::{AckPolicy, Cluster, ReplicaConfig, ShipMode};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema marker the checker requires at the top of the artifact.
pub const REPLICATE_SCHEMA: &str = "sealdb-replicate-v1";

/// Ship modes swept.
pub const MODES: [ShipMode; 2] = [ShipMode::WalApply, ShipMode::IndexLazy];

/// Ack policies swept.
pub const ACKS: [AckPolicy; 2] = [AckPolicy::PrimaryOnly, AckPolicy::Quorum(1)];

/// Base one-way link latencies swept, ns (≥5× apart so the RTO
/// monotonicity invariant has headroom over the seeded jitter).
pub const LINK_LATENCIES_NS: [u64; 3] = [200_000, 1_000_000, 5_000_000];

/// Replicas per cluster.
pub const REPLICAS: usize = 2;

/// Keys that must appear once per sweep cell in a valid artifact.
const CELL_KEYS: [&str; 17] = [
    "\"mode\":",
    "\"ack\":",
    "\"link_latency_ns\":",
    "\"kill_after\":",
    "\"writes\":",
    "\"acked_writes\":",
    "\"acked_lost\":",
    "\"rto_ns\":",
    "\"detect_ns\":",
    "\"fence_ns\":",
    "\"replay_ns\":",
    "\"redirect_ns\":",
    "\"promoted\":",
    "\"replayed_records\":",
    "\"catchup_frames\":",
    "\"client_retries\":",
    "\"state_hash\":",
];

/// One cell of the replication sweep.
#[derive(Clone, Debug)]
pub struct ReplicateCell {
    /// Ship mode name (`wal` / `index`).
    pub mode: &'static str,
    /// Ack policy name (`primary` / `quorum`).
    pub ack: &'static str,
    /// Base one-way link latency, ns.
    pub link_latency_ns: u64,
    /// Writes issued before the primary kill.
    pub kill_after: u64,
    /// Total writes issued over the episode.
    pub writes: u64,
    /// Writes acknowledged to the client.
    pub acked_writes: u64,
    /// Acked writes the post-failover audit could not read back.
    pub acked_lost: u64,
    /// Measured recovery time objective, ns.
    pub rto_ns: u64,
    /// Detection phase, ns.
    pub detect_ns: u64,
    /// Fencing phase, ns.
    pub fence_ns: u64,
    /// Replay phase, ns.
    pub replay_ns: u64,
    /// Client redirect phase, ns.
    pub redirect_ns: u64,
    /// Node promoted to primary.
    pub promoted: usize,
    /// WAL records replayed at promotion.
    pub replayed_records: u64,
    /// Frames streamed to the rejoining old primary.
    pub catchup_frames: u64,
    /// Bounded-backoff retries the redirected client issued.
    pub client_retries: u64,
    /// Order-independent digest of the final primary's state.
    pub state_hash: u64,
}

/// Writes per cell at this scale.
pub fn writes_per_cell(scale: &BenchScale) -> u64 {
    (scale.ycsb_ops / 4).max(24)
}

/// The two kill points swept: a third and two-thirds into the stream,
/// forced odd so a primary-only cell always has a non-empty async ship
/// buffer to lose.
pub fn kill_points(scale: &BenchScale) -> [u64; 2] {
    let w = writes_per_cell(scale);
    [(w / 3) | 1, (2 * w / 3) | 1]
}

fn run_cell(
    scale: &BenchScale,
    mode: ShipMode,
    ack: AckPolicy,
    link_latency_ns: u64,
    kill_after: u64,
) -> Result<ReplicateCell> {
    let writes = writes_per_cell(scale);
    let mut conf = ReplicaConfig::new(REPLICAS, scale.sstable, scale.disk_capacity());
    conf.mode = mode;
    conf.ack = ack;
    conf.seed = scale.seed;
    conf.link_latency_ns = link_latency_ns;
    let mut cluster = Cluster::new(conf)?;
    let gen = scale.generator();
    for i in 0..kill_after {
        cluster.put(&gen.key(i), &gen.value(i))?;
    }
    let report = cluster.kill_primary()?;
    // Serve half the remaining stream from the new primary, then let
    // the old primary rejoin and catch up while the rest lands.
    let resume = kill_after + (writes - kill_after) / 2;
    for i in kill_after..resume {
        cluster.put(&gen.key(i), &gen.value(i))?;
    }
    let catchup_frames = cluster.rejoin(0)?;
    for i in resume..writes {
        cluster.put(&gen.key(i), &gen.value(i))?;
    }
    let audit = cluster.audit()?;
    let state_hash = cluster.state_hash()?;
    Ok(ReplicateCell {
        mode: mode.name(),
        ack: ack.name(),
        link_latency_ns,
        kill_after,
        writes,
        acked_writes: audit.acked_writes,
        acked_lost: audit.acked_lost,
        rto_ns: report.rto_ns,
        detect_ns: report.detect_ns,
        fence_ns: report.fence_ns,
        replay_ns: report.replay_ns,
        redirect_ns: report.redirect_ns,
        promoted: report.promoted,
        replayed_records: report.replayed_records,
        catchup_frames,
        client_retries: report.client_retries,
        state_hash,
    })
}

/// Runs the full mode × ack × kill-point × link-latency grid.
pub fn run_replicate_sweep(scale: &BenchScale) -> Result<Vec<ReplicateCell>> {
    let mut cells = Vec::new();
    for &mode in &MODES {
        for &ack in &ACKS {
            for &kill_after in &kill_points(scale) {
                for &link in &LINK_LATENCIES_NS {
                    cells.push(run_cell(scale, mode, ack, link, kill_after)?);
                }
            }
        }
    }
    Ok(cells)
}

fn cell_json(c: &ReplicateCell) -> String {
    format!(
        concat!(
            "{{\"mode\":\"{}\",\"ack\":\"{}\",\"link_latency_ns\":{},",
            "\"kill_after\":{},\"writes\":{},\"acked_writes\":{},",
            "\"acked_lost\":{},\"rto_ns\":{},\"detect_ns\":{},",
            "\"fence_ns\":{},\"replay_ns\":{},\"redirect_ns\":{},",
            "\"promoted\":{},\"replayed_records\":{},\"catchup_frames\":{},",
            "\"client_retries\":{},\"state_hash\":{}}}"
        ),
        c.mode,
        c.ack,
        c.link_latency_ns,
        c.kill_after,
        c.writes,
        c.acked_writes,
        c.acked_lost,
        c.rto_ns,
        c.detect_ns,
        c.fence_ns,
        c.replay_ns,
        c.redirect_ns,
        c.promoted,
        c.replayed_records,
        c.catchup_frames,
        c.client_retries,
        c.state_hash,
    )
}

/// Serialises the sweep as the `BENCH_pr6.json` artifact.
pub fn sweep_to_json(scale: &BenchScale, cells: &[ReplicateCell]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{REPLICATE_SCHEMA}\",\"seed\":{},\"sstable\":{},\"replicas\":{},\"writes_per_cell\":{},\"cells\":[",
        scale.seed,
        scale.sstable,
        REPLICAS,
        writes_per_cell(scale),
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&cell_json(c));
    }
    s.push_str("]}\n");
    s
}

/// Runs the replication sweep and returns the artifact as JSON.
pub fn replicate_sweep(scale: &BenchScale) -> Result<String> {
    Ok(sweep_to_json(scale, &run_replicate_sweep(scale)?))
}

/// Pulls the `u64` following `"key":` out of one cell object.
fn cell_value(cell: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = cell.find(&pat)? + pat.len();
    let rest = &cell[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls the string following `"key":"` out of one cell object.
fn cell_str(cell: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let i = cell.find(&pat)? + pat.len();
    let rest = &cell[i..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Validates a replication artifact: schema marker, the full cell grid,
/// no NaN/Inf — and the durability invariants themselves: zero acked
/// loss in every quorum cell (with at least one primary-only cell
/// losing its tail, proving the audit has teeth), and an RTO that is
/// finite, positive, and strictly monotone in the link latency within
/// each (mode, ack, kill point) group. Returns the list of problems;
/// empty means valid.
pub fn check_replicate_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{REPLICATE_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    for key in ["\"seed\":", "\"replicas\":", "\"writes_per_cell\":"] {
        if !content.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    let expected_cells = MODES.len() * ACKS.len() * 2 * LINK_LATENCIES_NS.len();
    for key in CELL_KEYS {
        let n = content.matches(key).count();
        if n != expected_cells {
            problems.push(format!(
                "key {key} appears {n} times, expected {expected_cells}"
            ));
        }
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    let mut saw_quorum = false;
    let mut primary_lost = 0u64;
    let mut groups: BTreeMap<(String, String, u64), Vec<(u64, u64)>> = BTreeMap::new();
    for cell in content.split("{\"mode\":").skip(1) {
        // The split consumed the `"mode":` key; the value opens the
        // fragment.
        let mode = {
            let rest = cell.strip_prefix('"').unwrap_or(cell);
            rest[..rest.find('"').unwrap_or(0)].to_string()
        };
        let ack = cell_str(cell, "ack").unwrap_or_default();
        let link = cell_value(cell, "link_latency_ns").unwrap_or(0);
        let kill = cell_value(cell, "kill_after").unwrap_or(0);
        let lost = cell_value(cell, "acked_lost").unwrap_or(u64::MAX);
        let rto = cell_value(cell, "rto_ns").unwrap_or(0);
        let detect = cell_value(cell, "detect_ns").unwrap_or(0);
        match ack.as_str() {
            "quorum" | "all" => {
                saw_quorum = true;
                if lost != 0 {
                    problems.push(format!(
                        "durability invariant violated: {ack}-ack cell (mode {mode}, link {link}) lost {lost} acked writes"
                    ));
                }
            }
            "primary" => primary_lost += lost,
            other => problems.push(format!("cell has unknown ack policy {other:?}")),
        }
        if rto == 0 || rto < detect {
            problems.push(format!(
                "cell (mode {mode}, ack {ack}, link {link}) has implausible rto {rto}"
            ));
        }
        groups
            .entry((mode, ack, kill))
            .or_default()
            .push((link, rto));
    }
    if !saw_quorum {
        problems.push("artifact contains no quorum-ack cells".to_string());
    }
    if primary_lost == 0 {
        problems.push(
            "primary-only baselines lost no acked writes: the kill points never caught the async ship buffer".to_string(),
        );
    }
    for ((mode, ack, kill), mut series) in groups {
        series.sort_unstable();
        for pair in series.windows(2) {
            if pair[1].1 <= pair[0].1 {
                problems.push(format!(
                    "rto not monotone in link latency for (mode {mode}, ack {ack}, kill {kill}): {} ns @ link {} vs {} ns @ link {}",
                    pair[0].1, pair[0].0, pair[1].1, pair[1].0
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        // Small but clear of the 16 MiB log zone (capacity = 10x load).
        s.load_bytes = 4 << 20;
        s.ycsb_ops = 200;
        s
    }

    /// One sweep shared by the read-only tests (each cell drives a
    /// three-node cluster through a failover; running the 24-cell grid
    /// once keeps the suite fast).
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| replicate_sweep(&test_scale()).unwrap())
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = replicate_sweep(&test_scale()).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_replicate_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
    }

    #[test]
    fn quorum_cells_lose_nothing_and_primary_cells_lose_the_tail() {
        let cells = run_replicate_sweep(&test_scale()).unwrap();
        let mut primary_lost = 0u64;
        for c in &cells {
            assert_eq!(c.acked_writes, c.writes, "every write was acked: {c:?}");
            if c.ack == "quorum" {
                assert_eq!(c.acked_lost, 0, "quorum cell lost acked writes: {c:?}");
            } else {
                // The odd kill point guarantees a non-empty ship buffer.
                assert!(c.acked_lost > 0, "primary-only cell lost nothing: {c:?}");
                primary_lost += c.acked_lost;
            }
            assert!(c.rto_ns >= c.detect_ns && c.rto_ns > 0);
            assert!(c.promoted > 0, "a replica must be promoted: {c:?}");
            assert!(c.catchup_frames > 0, "rejoin streamed nothing: {c:?}");
        }
        assert!(primary_lost > 0);
    }

    #[test]
    fn different_seeds_differ_beyond_the_header() {
        let a = artifact();
        let mut other = test_scale();
        other.seed ^= 0xBAD5EED;
        let b = replicate_sweep(&other).unwrap();
        let tail = |s: &str| s[s.find("\"cells\"").unwrap()..].to_string();
        assert_ne!(
            tail(a),
            tail(&b),
            "jitter and payloads must follow the seed"
        );
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_replicate_json("{}").is_empty());
        let a = artifact();
        // Forge a lost write into a quorum cell: the RPO invariant
        // must trip.
        let forged = a.replacen("\"ack\":\"quorum\"", "\"ack\":\"quorum\",\"x\":0", 1);
        let i = forged.find("\"x\":0").unwrap();
        let j = i + forged[i..].find("\"acked_lost\":").unwrap() + "\"acked_lost\":".len();
        let end = j + forged[j..].find(|c: char| !c.is_ascii_digit()).unwrap();
        let forged = format!("{}7{}", &forged[..j], &forged[end..]);
        assert!(check_replicate_json(&forged)
            .iter()
            .any(|p| p.contains("durability invariant")));
        // Swap every rto to a constant: the monotonicity invariant
        // must trip.
        let flat = {
            let mut s = String::new();
            let mut rest = a;
            while let Some(i) = rest.find("\"rto_ns\":") {
                let j = i + "\"rto_ns\":".len();
                let end = j + rest[j..].find(|c: char| !c.is_ascii_digit()).unwrap();
                s.push_str(&rest[..j]);
                s.push_str("11000000");
                rest = &rest[end..];
            }
            s.push_str(rest);
            s
        };
        assert!(check_replicate_json(&flat)
            .iter()
            .any(|p| p.contains("not monotone")));
    }
}
