//! Minimal wall-clock micro-benchmark runner for the `benches/`
//! binaries: warm-up, fixed-duration measurement, median-of-batches
//! reporting. Dependency-free by design — the build must work without
//! network access, so no external bench harness.

use std::time::{Duration, Instant};

/// Default measurement time per benchmark.
pub const MEASURE: Duration = Duration::from_millis(400);
/// Default warm-up time per benchmark.
pub const WARMUP: Duration = Duration::from_millis(100);

/// Runs `f` repeatedly for ~[`MEASURE`] after a short warm-up and prints
/// the per-iteration time. The closure's return value is passed through
/// [`std::hint::black_box`] so the work is not optimised away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up: also discovers a batch size that keeps clock overhead low.
    let warm_start = Instant::now();
    let mut iters: u64 = 0;
    while warm_start.elapsed() < WARMUP || iters == 0 {
        std::hint::black_box(f());
        iters += 1;
    }
    let batch = iters.max(1);

    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < MEASURE {
        let t0 = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        samples.push(t0.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let total: u64 = batch * samples.len() as u64;
    println!("{name:<40} {:>12}/iter   ({total} iters)", fmt_secs(median));
}

/// Like [`bench`] but rebuilds fresh input state per iteration via
/// `setup`; only the time inside `f` is measured.
pub fn bench_with_setup<S, T>(name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> T) {
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    let mut total = 0u64;
    while start.elapsed() < MEASURE || samples.is_empty() {
        let state = setup();
        let t0 = Instant::now();
        std::hint::black_box(f(state));
        samples.push(t0.elapsed().as_secs_f64());
        total += 1;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    println!("{name:<40} {:>12}/iter   ({total} iters)", fmt_secs(median));
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fmt_covers_ranges() {
        assert!(super::fmt_secs(5e-9).ends_with("ns"));
        assert!(super::fmt_secs(5e-5).ends_with("µs"));
        assert!(super::fmt_secs(5e-2).ends_with("ms"));
        assert!(super::fmt_secs(2.0).ends_with(" s"));
    }
}
