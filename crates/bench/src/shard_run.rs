//! The multi-shard scale-out artifact behind `--shard-out` and
//! `--shard-check` (`BENCH_pr7.json`).
//!
//! One cell per shard count: a cluster of N shards is preloaded through
//! the consistent-hash router, then a closed-loop run at 10× the
//! canonical serving operation count measures aggregate saturation
//! throughput. One SMR drive bounds one shard, so saturation must rise
//! strictly with the shard count — that monotonicity, the bounded key
//! placement imbalance of the router, and the zero-acked-key-loss audit
//! of a mid-run split migration are the gates [`check_shard_json`]
//! (and `scripts/ci.sh`) enforce. Cells run one per OS thread (each
//! cluster owns its own simulated disks) and everything rides the
//! simulated clock: two same-seed sweeps serialize byte-identically.

use crate::BenchScale;
use lsm_core::Result;
use seal_shard::{imbalance, serve, ClusterServeConfig, ShardCluster, ShardConfig};
use std::fmt::Write as _;
use workloads::{ArrivalProcess, WorkloadSpec};

/// Schema marker the checker requires at the top of the artifact.
pub const SHARD_SCHEMA: &str = "sealdb-shard-v1";

/// Virtual clients per cluster run (cluster-wide, not per shard).
pub const CLIENTS: usize = 16;

/// Shard counts swept, ascending; saturation must rise strictly.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Scale-out factor over the canonical serving operation count.
pub const OPS_SCALE: u64 = 10;

/// One shard count's saturation cell.
#[derive(Clone, Debug)]
pub struct ShardCell {
    /// Active shards serving this cell.
    pub shards: usize,
    /// Aggregate closed-loop saturation, ops per simulated second.
    pub saturation_ops_per_sec: f64,
    /// End-to-end latency summary of the saturation run.
    pub latency: seal_front::LatencySummary,
    /// `Store::write` calls across all shards.
    pub write_calls: u64,
    /// Write operations those calls carried.
    pub write_ops: u64,
    /// Largest committed group in wire bytes.
    pub max_group_wire: usize,
    /// Deepest per-shard queue at any service start.
    pub queue_depth_max: usize,
    /// Operations served by each shard.
    pub per_shard_ops: Vec<u64>,
    /// Preload keys placed on each shard by the router.
    pub per_shard_keys: Vec<u64>,
    /// Max-over-mean of the preload key placement (the routing gate).
    pub key_imbalance: f64,
    /// Max-over-mean of served operations (zipfian skew; reported, not
    /// gated — the hot key concentrates reads no router can spread).
    pub ops_imbalance: f64,
    /// Per-shard state fingerprints after the run, ascending index.
    pub state_hashes: Vec<u64>,
}

/// What the migration cell measured: a 4-shard cluster split to 5 mid-
/// run, with a full acked-key audit afterwards.
#[derive(Clone, Debug)]
pub struct MigrationCell {
    /// Active shards before the split.
    pub shards_before: usize,
    /// Active shards after the split.
    pub shards_after: usize,
    /// Keys the split moved to the new shard.
    pub moved_keys: u64,
    /// Payload bytes moved.
    pub moved_bytes: u64,
    /// Band-sized batches the move took.
    pub batches: u64,
    /// Simulated time the migration occupied, ns.
    pub duration_ns: u64,
    /// Keys audited after the second serving phase.
    pub checked_keys: u64,
    /// Audited keys whose routed shard lost the acked value (gate: 0).
    pub lost_keys: u64,
    /// Per-shard state fingerprints after the audit.
    pub state_hashes: Vec<u64>,
}

/// The full artifact, structured.
#[derive(Clone, Debug)]
pub struct ShardSweep {
    /// One cell per [`SHARD_COUNTS`] entry, in order.
    pub cells: Vec<ShardCell>,
    /// The mid-run split migration cell.
    pub migration: MigrationCell,
}

fn cluster_at(shards: usize, scale: &BenchScale) -> Result<ShardCluster> {
    let cfg = ShardConfig::new(shards, scale.sstable, scale.disk_capacity()).with_seed(scale.seed);
    ShardCluster::new(cfg)
}

fn serve_cfg(scale: &BenchScale, ops: u64, records: u64) -> ClusterServeConfig {
    ClusterServeConfig::new(
        WorkloadSpec::serve_mix(),
        ArrivalProcess::ClosedLoop { think_ns: 0 },
        CLIENTS,
        ops,
        records,
    )
    .with_seed(scale.seed)
}

/// Total operations of one cell at this scale (10× the canonical
/// serving count, floored at one per client).
pub fn cell_ops(scale: &BenchScale) -> u64 {
    (scale.ycsb_ops * OPS_SCALE).max(CLIENTS as u64)
}

fn run_cell(shards: usize, scale: &BenchScale) -> Result<ShardCell> {
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let mut cluster = cluster_at(shards, scale)?;
    let placed = cluster.load(&gen, records)?;
    let r = serve(
        &mut cluster,
        &gen,
        &serve_cfg(scale, cell_ops(scale), records),
    )?;
    Ok(ShardCell {
        shards,
        saturation_ops_per_sec: r.throughput_ops_per_sec,
        latency: r.latency,
        write_calls: r.write_calls,
        write_ops: r.write_ops,
        max_group_wire: r.max_group_wire,
        queue_depth_max: r.queue_depth_max,
        key_imbalance: imbalance(&placed),
        ops_imbalance: r.ops_imbalance(),
        per_shard_ops: r.per_shard_ops,
        per_shard_keys: placed,
        state_hashes: cluster.state_hashes()?,
    })
}

fn run_migration(scale: &BenchScale) -> Result<MigrationCell> {
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let ops = cell_ops(scale);
    let mut cluster = cluster_at(4, scale)?;
    cluster.load(&gen, records)?;
    // First serving phase, then split the hottest shard, then keep
    // serving the grown keyspace — the router must lose nothing.
    let first = serve(&mut cluster, &gen, &serve_cfg(scale, ops / 2, records))?;
    let report = cluster.split_hottest()?;
    let second = serve(
        &mut cluster,
        &gen,
        &serve_cfg(scale, ops - ops / 2, first.records_after).with_seed(scale.seed ^ 0x517),
    )?;
    let audit = cluster.audit(&gen, second.records_after)?;
    Ok(MigrationCell {
        shards_before: 4,
        shards_after: cluster.active_shards().len(),
        moved_keys: report.moved_keys,
        moved_bytes: report.moved_bytes,
        batches: report.batches,
        duration_ns: report.duration_ns,
        checked_keys: audit.checked,
        lost_keys: audit.lost,
        state_hashes: cluster.state_hashes()?,
    })
}

/// Runs every cell (one per OS thread; each cluster owns independent
/// simulated disks) plus the migration cell, in presentation order.
pub fn run_sweep(scale: &BenchScale) -> Result<ShardSweep> {
    let mut cells: Vec<Option<Result<ShardCell>>> = SHARD_COUNTS.iter().map(|_| None).collect();
    let mut migration: Option<Result<MigrationCell>> = None;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for &n in &SHARD_COUNTS {
            handles.push(s.spawn(move || run_cell(n, scale)));
        }
        let mig = s.spawn(move || run_migration(scale));
        for (slot, h) in cells.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("shard cell thread panicked"));
        }
        migration = Some(mig.join().expect("migration thread panicked"));
    });
    let cells = cells
        .into_iter()
        .map(|c| c.expect("joined"))
        .collect::<Result<Vec<_>>>()?;
    Ok(ShardSweep {
        cells,
        migration: migration.expect("joined")?,
    })
}

fn hashes_json(hashes: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, h) in hashes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{h:016x}\"");
    }
    s.push(']');
    s
}

fn counts_json(counts: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, c) in counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{c}");
    }
    s.push(']');
    s
}

/// Serialises a sweep as the `BENCH_pr7.json` artifact.
pub fn sweep_to_json(scale: &BenchScale, sweep: &ShardSweep) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{SHARD_SCHEMA}\",\"seed\":{},\"sstable\":{},\"records\":{},\"ops\":{},\"clients\":{},\"workload\":\"S\",\"cells\":[",
        scale.seed,
        scale.sstable,
        scale.load_records().max(1),
        cell_ops(scale),
        CLIENTS,
    );
    for (i, c) in sweep.cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            concat!(
                "{{\"shards\":{},\"saturation_ops_per_sec\":{:.3},",
                "\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},",
                "\"write_calls\":{},\"write_ops\":{},\"max_group_wire\":{},\"queue_depth_max\":{},",
                "\"per_shard_ops\":{},\"per_shard_keys\":{},",
                "\"key_imbalance\":{:.4},\"ops_imbalance\":{:.4},\"state_hashes\":{}}}"
            ),
            c.shards,
            c.saturation_ops_per_sec,
            c.latency.p50_ns,
            c.latency.p99_ns,
            c.latency.max_ns,
            c.write_calls,
            c.write_ops,
            c.max_group_wire,
            c.queue_depth_max,
            counts_json(&c.per_shard_ops),
            counts_json(&c.per_shard_keys),
            c.key_imbalance,
            c.ops_imbalance,
            hashes_json(&c.state_hashes),
        );
    }
    let m = &sweep.migration;
    let _ = write!(
        s,
        concat!(
            "],\"migration\":{{\"shards_before\":{},\"shards_after\":{},",
            "\"moved_keys\":{},\"moved_bytes\":{},\"batches\":{},\"duration_ns\":{},",
            "\"checked_keys\":{},\"lost_keys\":{},\"state_hashes\":{}}}}}\n"
        ),
        m.shards_before,
        m.shards_after,
        m.moved_keys,
        m.moved_bytes,
        m.batches,
        m.duration_ns,
        m.checked_keys,
        m.lost_keys,
        hashes_json(&m.state_hashes),
    );
    s
}

/// Runs the shard sweep and returns the artifact as a JSON string.
pub fn shard_sweep(scale: &BenchScale) -> Result<String> {
    Ok(sweep_to_json(scale, &run_sweep(scale)?))
}

/// Pulls `"key":value` numbers out of flat JSON in order of appearance.
fn num_values(content: &str, key: &str) -> Vec<f64> {
    let pat = format!("\"{key}\":");
    content
        .match_indices(&pat)
        .filter_map(|(i, _)| {
            let rest = &content[i + pat.len()..];
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse::<f64>().ok()
        })
        .collect()
}

/// Validates a shard artifact: schema marker, one cell per
/// [`SHARD_COUNTS`] entry, saturation strictly increasing with shard
/// count, key placement imbalance within the routing bound, the
/// migration audit losing zero acked keys, and no NaN/Inf anywhere.
/// Returns the list of problems; empty means valid.
pub fn check_shard_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{SHARD_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    let shards = num_values(content, "shards");
    let expected: Vec<f64> = SHARD_COUNTS.iter().map(|&n| n as f64).collect();
    if shards != expected {
        problems.push(format!(
            "expected cells for shard counts {expected:?}, found {shards:?}"
        ));
    }
    let sat = num_values(content, "saturation_ops_per_sec");
    if sat.len() != SHARD_COUNTS.len() {
        problems.push(format!(
            "expected {} saturation values, found {}",
            SHARD_COUNTS.len(),
            sat.len()
        ));
    }
    for w in sat.windows(2) {
        if w[1] <= w[0] {
            problems.push(format!(
                "saturation must rise strictly with shard count: {:.3} !> {:.3}",
                w[1], w[0]
            ));
        }
    }
    for (i, ki) in num_values(content, "key_imbalance").iter().enumerate() {
        if *ki > 1.25 {
            problems.push(format!(
                "cell {i}: key placement imbalance {ki:.4} exceeds the 1.25 routing bound"
            ));
        }
    }
    match num_values(content, "lost_keys").first() {
        Some(&0.0) => {}
        Some(&lost) => problems.push(format!("migration lost {lost} acked keys")),
        None => problems.push("missing migration \"lost_keys\"".to_string()),
    }
    match num_values(content, "moved_keys").first() {
        Some(&moved) if moved > 0.0 => {}
        _ => problems.push("migration moved no keys".to_string()),
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One sweep shared by every test that only reads the artifact.
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| shard_sweep(&test_scale()).unwrap())
    }

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        s.load_bytes = 4 << 20;
        s.capacity_ratio = 12;
        s.ycsb_ops = 120;
        s
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = shard_sweep(&test_scale()).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_shard_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
    }

    #[test]
    fn saturation_scales_out_with_shards() {
        let sat = num_values(artifact(), "saturation_ops_per_sec");
        assert_eq!(sat.len(), SHARD_COUNTS.len());
        for w in sat.windows(2) {
            assert!(w[1] > w[0], "saturation not monotone: {sat:?}");
        }
    }

    #[test]
    fn migration_cell_loses_nothing_and_moves_bands() {
        let a = artifact();
        assert_eq!(num_values(a, "lost_keys"), vec![0.0]);
        assert!(num_values(a, "moved_keys")[0] > 0.0);
        assert!(num_values(a, "shards_after")[0] == 5.0);
        assert!(num_values(a, "batches")[0] >= 1.0);
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_shard_json("{}").is_empty());
        let a = artifact();
        // Break monotonicity: swap the first saturation value to huge.
        let sat = num_values(a, "saturation_ops_per_sec");
        let broken = a.replacen(
            &format!("\"saturation_ops_per_sec\":{:.3}", sat[0]),
            "\"saturation_ops_per_sec\":999999999.000",
            1,
        );
        assert!(check_shard_json(&broken)
            .iter()
            .any(|p| p.contains("strictly")));
        let lossy = a.replace("\"lost_keys\":0", "\"lost_keys\":3");
        assert!(check_shard_json(&lossy).iter().any(|p| p.contains("lost")));
    }
}
