//! The observability trajectory artifact behind `--metrics-out` and
//! `--metrics-check` (`BENCH_pr2.json`).
//!
//! A fixed workload — random load, random point reads, one scan — drives
//! each of the three main stores; every store then exports its full
//! metrics snapshot (counters, gauges, latency histograms, trace tail).
//! Everything runs on the simulated clock with seeded randomness, so two
//! runs at the same seed produce byte-identical artifacts; CI checks the
//! schema and rejects any NaN/Inf leak.

use crate::BenchScale;
use lsm_core::Result;
use sealdb::StoreKind;
use std::fmt::Write as _;

/// Schema marker the checker requires at the top of the artifact.
pub const METRICS_SCHEMA: &str = "sealdb-metrics-v1";

/// Trace events inlined per store (the ring itself retains more).
const TRACE_TAIL: usize = 64;

/// Metric keys that must appear once per store in a valid artifact.
const REQUIRED_KEYS: [&str; 9] = [
    "\"store.write_ns\"",
    "\"store.get_ns\"",
    "\"store.scan_ns\"",
    "\"store.wa\"",
    "\"store.awa\"",
    "\"store.mwa\"",
    "\"cache.block_hit_ratio\"",
    "\"lsm.flush_bytes\"",
    "\"device.write_ns\"",
];

/// Runs the trajectory over [`StoreKind::MAIN`] and returns the artifact
/// as a JSON string.
pub fn metrics_trajectory(scale: &BenchScale) -> Result<String> {
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let results = crate::per_store_parallel(&StoreKind::MAIN, |kind| -> Result<_> {
        let mut store = crate::build_store(kind, scale)?;
        workloads::fill_random(&mut store, &gen, records, scale.seed)?;
        workloads::read_random(
            &mut store,
            &gen,
            records,
            scale.read_ops.min(records),
            scale.seed ^ 0x9E37_79B9,
        )?;
        store.scan(&gen.key(0), 64)?;
        Ok(store.metrics_snapshot())
    });
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{METRICS_SCHEMA}\",\"seed\":{},\"sstable\":{},\"records\":{},\"stores\":[",
        scale.seed, scale.sstable, records
    );
    for (i, r) in results.into_iter().enumerate() {
        let snap = r?;
        if i > 0 {
            s.push(',');
        }
        s.push_str(&snap.to_json(TRACE_TAIL));
    }
    s.push_str("]}\n");
    Ok(s)
}

/// Validates a metrics artifact: schema marker, one snapshot per main
/// store, every required metric key present per store, and no NaN/Inf
/// anywhere. Returns the list of problems; empty means valid.
pub fn check_metrics_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{METRICS_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    if !content.contains("\"seed\":") {
        problems.push("missing key \"seed\"".to_string());
    }
    let stores = content.matches("\"store\":").count();
    let expected = StoreKind::MAIN.len();
    if stores != expected {
        problems.push(format!(
            "expected {expected} store snapshots, found {stores}"
        ));
    }
    for key in REQUIRED_KEYS {
        let n = content.matches(key).count();
        if n != expected {
            problems.push(format!("key {key} appears {n} times, expected {expected}"));
        }
    }
    // The registry clamps non-finite values and the formatter renders
    // fixed precision, so any of these tokens means a regression.
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        // Small but still clear of the 16 MiB log zone (capacity = 10x).
        s.load_bytes = 4 << 20;
        s.read_ops = 200;
        s
    }

    #[test]
    fn trajectory_is_valid_and_deterministic() {
        let scale = test_scale();
        let a = metrics_trajectory(&scale).unwrap();
        let b = metrics_trajectory(&scale).unwrap();
        assert_eq!(a, b, "same-seed artifacts must be byte-identical");
        let problems = check_metrics_json(&a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
        assert!(a.contains("\"store\":\"SEALDB\""));
        assert!(a.contains("\"store\":\"SMRDB\""));
        assert!(a.contains("\"store\":\"LevelDB\""));
    }

    #[test]
    fn different_seeds_differ() {
        let scale = test_scale();
        let mut other = test_scale();
        other.seed ^= 1;
        let a = metrics_trajectory(&scale).unwrap();
        let b = metrics_trajectory(&other).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn checker_rejects_missing_keys_and_nan() {
        assert!(!check_metrics_json("{}").is_empty());
        let mut doc = format!("{{\"schema\":\"{METRICS_SCHEMA}\",\"seed\":1,\"stores\":[]}}");
        assert!(check_metrics_json(&doc)
            .iter()
            .any(|p| p.contains("store snapshots")));
        doc = doc.replace("\"seed\":1", "\"seed\":NaN");
        assert!(check_metrics_json(&doc)
            .iter()
            .any(|p| p.contains("non-finite")));
    }
}
