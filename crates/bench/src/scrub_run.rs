//! The durability-under-latent-errors artifact behind `--scrub-out` and
//! `--scrub-check` (`BENCH_pr5.json`).
//!
//! SEALDB is loaded, then latent sector errors are planted in its live
//! tables (every read through a planted region returns flipped bits —
//! the fault is on the platter, so re-reads do not help). The sweep
//! crosses the number of planted regions with the scrubber's per-step
//! byte budget, plus a scrub-off baseline per fault count; every cell
//! then audits the full keyspace. The artifact's headline invariant,
//! re-checked by CI: with scrubbing on, **zero keys are lost** — every
//! planted region is found, corrected and the table rewritten onto
//! clean space — while the scrub-off baseline loses a deterministic,
//! quantified set of keys. A fail-slow region rides along so the
//! artifact also exercises the latency-fault counters.
//!
//! Everything runs on the simulated clock with seeded fault placement,
//! so two runs at the same seed produce byte-identical artifacts.

use crate::BenchScale;
use lsm_core::{Result, ScrubConfig};
use sealdb::{Store, StoreKind};
use smr_sim::Extent;
use std::fmt::Write as _;

/// Schema marker the checker requires at the top of the artifact.
pub const SCRUB_SCHEMA: &str = "sealdb-scrub-v1";

/// Scrub per-step byte budgets swept (0 = scrub disabled is implicit:
/// one baseline cell per fault count).
pub const SCRUB_BUDGETS: [u64; 2] = [64 << 10, 1 << 20];

/// Latent-error regions planted, one per distinct table.
pub const FAULT_COUNTS: [usize; 2] = [1, 4];

/// Bytes per planted latent-error region. Under a block it guarantees a
/// single bit flip per block read — detectable by the block CRC and
/// within reach of the scrubber's single-bit corrector, which is what
/// makes the zero-loss invariant achievable at all.
pub const FAULT_REGION_BYTES: u64 = 64;

/// Keys that must appear once per sweep cell in a valid artifact.
const CELL_KEYS: [&str; 10] = [
    "\"scrub\":",
    "\"scrub_budget\":",
    "\"fault_regions\":",
    "\"lost_keys\":",
    "\"read_errors\":",
    "\"files_repaired\":",
    "\"blocks_corrected\":",
    "\"blocks_lost\":",
    "\"bytes_fenced\":",
    "\"fail_slow_reads\":",
];

/// One cell of the scrub sweep.
#[derive(Clone, Debug)]
pub struct ScrubCell {
    /// Scrubber byte budget per step; 0 means scrubbing was off.
    pub scrub_budget: u64,
    /// Latent-error regions actually planted.
    pub fault_regions: usize,
    /// Keys that no longer read back correctly after the episode.
    pub lost_keys: u64,
    /// Keyspace-audit reads that returned an error (scrub-off: the
    /// planted damage surfaces as checksum failures on every read).
    pub read_errors: u64,
    /// Tables the scrubber rewrote onto clean space.
    pub files_repaired: u64,
    /// Blocks recovered by single-bit correction.
    pub blocks_corrected: u64,
    /// Blocks beyond correction whose entries were dropped.
    pub blocks_lost: u64,
    /// Bytes fenced out of the allocator's free pool.
    pub bytes_fenced: u64,
    /// Reads slowed by the planted fail-slow region.
    pub fail_slow_reads: u64,
}

/// Extents of the `k` largest live tables, largest first — deterministic
/// targets that are guaranteed to hold several data blocks.
fn target_extents(store: &Store, k: usize) -> Vec<Extent> {
    let v = store.db.current_version();
    let mut files: Vec<_> = v.files.iter().flatten().cloned().collect();
    files.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));
    files
        .iter()
        .take(k)
        .map(|f| {
            store
                .db
                .ctx()
                .lock()
                .fs
                .file_extent(f.id)
                .expect("live file")
        })
        .collect()
}

fn run_cell(scale: &BenchScale, budget: u64, fault_regions: usize) -> Result<ScrubCell> {
    let (mut store, _) = crate::loaded_store(StoreKind::SealDb, scale)?;
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let targets = target_extents(&store, fault_regions);
    let planted = targets.len();
    {
        let ctx = store.db.ctx();
        let mut guard = ctx.lock();
        let faults = guard.fs.disk_mut().faults_mut();
        for ext in &targets {
            // A quarter into the file: inside the data-block region, well
            // clear of the filter/index/footer at the tail.
            faults.corrupt_extent(Extent::new(ext.offset + ext.len / 4, FAULT_REGION_BYTES));
        }
        if let Some(first) = targets.first() {
            faults.slow_reads(*first, 4);
        }
    }
    if budget > 0 {
        store.scrub_full(&ScrubConfig {
            bytes_per_step: budget,
            repair: true,
        })?;
    }
    // Full-keyspace audit: a key is lost if it errors, vanished, or
    // reads back with the wrong bytes.
    let mut lost_keys = 0u64;
    let mut read_errors = 0u64;
    for i in 0..records {
        match store.get(&gen.key(i)) {
            Ok(Some(v)) if v == gen.value(i) => {}
            Ok(_) => lost_keys += 1,
            Err(_) => {
                lost_keys += 1;
                read_errors += 1;
            }
        }
    }
    let report = *store.scrub_report();
    let faults = store.snapshot().io.faults;
    Ok(ScrubCell {
        scrub_budget: budget,
        fault_regions: planted,
        lost_keys,
        read_errors,
        files_repaired: report.files_repaired,
        blocks_corrected: report.blocks_corrected,
        blocks_lost: report.blocks_lost,
        bytes_fenced: report.bytes_fenced,
        fail_slow_reads: faults.fail_slow_reads,
    })
}

/// Runs the full sweep: per fault count, a scrub-off baseline followed
/// by one cell per budget in [`SCRUB_BUDGETS`].
pub fn run_scrub_sweep(scale: &BenchScale) -> Result<Vec<ScrubCell>> {
    let mut cells = Vec::new();
    for &k in &FAULT_COUNTS {
        cells.push(run_cell(scale, 0, k)?);
        for &budget in &SCRUB_BUDGETS {
            cells.push(run_cell(scale, budget, k)?);
        }
    }
    Ok(cells)
}

fn cell_json(c: &ScrubCell) -> String {
    format!(
        concat!(
            "{{\"scrub\":{},\"scrub_budget\":{},\"fault_regions\":{},",
            "\"lost_keys\":{},\"read_errors\":{},\"files_repaired\":{},",
            "\"blocks_corrected\":{},\"blocks_lost\":{},\"bytes_fenced\":{},",
            "\"fail_slow_reads\":{}}}"
        ),
        c.scrub_budget > 0,
        c.scrub_budget,
        c.fault_regions,
        c.lost_keys,
        c.read_errors,
        c.files_repaired,
        c.blocks_corrected,
        c.blocks_lost,
        c.bytes_fenced,
        c.fail_slow_reads,
    )
}

/// Serialises the sweep as the `BENCH_pr5.json` artifact.
pub fn sweep_to_json(scale: &BenchScale, cells: &[ScrubCell]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{SCRUB_SCHEMA}\",\"seed\":{},\"sstable\":{},\"records\":{},\"region_bytes\":{},\"cells\":[",
        scale.seed,
        scale.sstable,
        scale.load_records().max(1),
        FAULT_REGION_BYTES,
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&cell_json(c));
    }
    s.push_str("]}\n");
    s
}

/// Runs the scrub sweep and returns the artifact as a JSON string.
pub fn scrub_sweep(scale: &BenchScale) -> Result<String> {
    Ok(sweep_to_json(scale, &run_scrub_sweep(scale)?))
}

/// Pulls the `u64` following `"key":` out of one cell object.
fn cell_value(cell: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = cell.find(&pat)? + pat.len();
    let rest = &cell[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Validates a scrub artifact: schema marker, the full cell grid, no
/// NaN/Inf — and the durability invariant itself: every scrub-on cell
/// lost zero keys, and at least one scrub-off baseline lost some.
/// Returns the list of problems; empty means valid.
pub fn check_scrub_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{SCRUB_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    for key in ["\"seed\":", "\"records\":", "\"region_bytes\":"] {
        if !content.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    let expected_cells = FAULT_COUNTS.len() * (1 + SCRUB_BUDGETS.len());
    for key in CELL_KEYS {
        let n = content.matches(key).count();
        if n != expected_cells {
            problems.push(format!(
                "key {key} appears {n} times, expected {expected_cells}"
            ));
        }
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    let mut baseline_lost = 0u64;
    let mut saw_on = false;
    let mut saw_off = false;
    for cell in content.split("{\"scrub\":").skip(1) {
        let on = cell.starts_with("true");
        let lost = cell_value(cell, "lost_keys").unwrap_or(u64::MAX);
        if on {
            saw_on = true;
            if lost != 0 {
                problems.push(format!(
                    "durability invariant violated: scrub-on cell lost {lost} keys"
                ));
            }
            if cell_value(cell, "files_repaired") == Some(0) {
                problems.push("scrub-on cell repaired no files".to_string());
            }
        } else {
            saw_off = true;
            baseline_lost += lost;
        }
    }
    if !saw_on || !saw_off {
        problems.push("artifact must contain both scrub-on and scrub-off cells".to_string());
    } else if baseline_lost == 0 {
        problems
            .push("scrub-off baselines lost no keys: the planted faults did not bite".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        // Small but clear of the 16 MiB log zone (capacity = 10x load).
        s.load_bytes = 4 << 20;
        s
    }

    /// One sweep shared by the read-only tests (each cell preloads a
    /// full store; running the grid once keeps the suite fast).
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| scrub_sweep(&test_scale()).unwrap())
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = scrub_sweep(&test_scale()).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_scrub_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
    }

    #[test]
    fn scrub_on_loses_nothing_and_baseline_loses_something() {
        let cells = run_scrub_sweep(&test_scale()).unwrap();
        for c in &cells {
            if c.scrub_budget > 0 {
                assert_eq!(c.lost_keys, 0, "scrub-on cell lost keys: {c:?}");
                assert!(c.files_repaired >= 1, "nothing repaired: {c:?}");
                assert!(c.blocks_corrected >= 1, "nothing corrected: {c:?}");
                assert!(c.bytes_fenced > 0, "nothing fenced: {c:?}");
            } else {
                assert!(c.lost_keys > 0, "baseline fault did not bite: {c:?}");
                assert_eq!(c.read_errors, c.lost_keys);
            }
            assert!(c.fail_slow_reads > 0, "fail-slow region never read: {c:?}");
        }
    }

    #[test]
    fn different_seeds_differ_beyond_the_header() {
        let a = artifact();
        let mut other = test_scale();
        other.seed ^= 1;
        let b = scrub_sweep(&other).unwrap();
        let tail = |s: &str| s[s.find("\"cells\"").unwrap()..].to_string();
        assert_ne!(tail(a), tail(&b), "fault placement must follow the seed");
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_scrub_json("{}").is_empty());
        let a = artifact();
        // Forge a lost key into a scrub-on cell: the durability invariant
        // must trip.
        let forged = a.replacen("{\"scrub\":true,", "{\"scrub\":true,\"x\":0,", 1);
        let forged = {
            // Rewrite the first scrub-on cell's lost_keys to 7.
            let i = forged.find("\"x\":0,").unwrap();
            let cell_rest = &forged[i..];
            let j = cell_rest.find("\"lost_keys\":").unwrap() + "\"lost_keys\":".len();
            let end = i + j + cell_rest[j..].find(|c: char| !c.is_ascii_digit()).unwrap();
            format!("{}7{}", &forged[..i + j], &forged[end..])
        };
        assert!(check_scrub_json(&forged)
            .iter()
            .any(|p| p.contains("durability invariant")));
    }
}
