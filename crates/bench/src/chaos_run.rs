//! The composed-fault torture artifact behind `--chaos-out` and
//! `--chaos-check` (`BENCH_pr10.json`).
//!
//! Each cell seeds a [`seal_chaos`] schedule — serving traffic
//! interleaved with device faults (torn writes, corruption, latent
//! sector errors, band failures, fail-slow), cluster faults
//! (partitions, kills, failovers, revives, primary restarts) and
//! maintenance chaos (GC drains, scrub passes, shard migrations) —
//! replays it on a fresh two-group replicated deployment, and records
//! the oracle verdict plus which fault classes were injected.
//!
//! Headline invariants, re-checked by CI:
//!
//! * **Zero oracle violations** — every schedule ends with all acked
//!   writes durable cluster-wide, every promised value served on its
//!   routed group, survivor state hashes agreeing, and scrub
//!   remediation accounting balanced.
//! * **Coverage with teeth** — across the sweep at least four device
//!   fault classes and three cluster fault classes were actually
//!   injected, so a green artifact can never mean the chaos did
//!   nothing.
//!
//! Everything runs on the simulated clock with seeded schedules, so
//! two runs at the same seed produce byte-identical artifacts. CI runs
//! this sweep in the **debug** profile: the ordering auditors'
//! `debug_assert!`s are live, so a violated ack/durability/recycle
//! edge fails the run even if every value still reads back.

use crate::BenchScale;
use lsm_core::Result;
use seal_chaos::{generate, ChaosConfig, ChaosHarness, Coverage, SplitMix};
use std::fmt::Write as _;

/// Schema marker the checker requires at the top of the artifact.
pub const CHAOS_SCHEMA: &str = "sealdb-chaos-v1";

/// Replication groups per schedule.
pub const GROUPS: usize = 2;

/// Replicas per group (each group runs `REPLICAS + 1` nodes).
pub const REPLICAS: usize = 2;

/// Distinct device fault classes a valid artifact must have injected.
pub const MIN_DEVICE_CLASSES: usize = 4;

/// Distinct cluster fault classes a valid artifact must have injected.
pub const MIN_CLUSTER_CLASSES: usize = 3;

/// Keys that must appear once per cell in a valid artifact.
const CELL_KEYS: [&str; 13] = [
    "{\"seed\":",
    "\"events_applied\":",
    "\"events_skipped\":",
    "\"acked_writes\":",
    "\"acked_lost\":",
    "\"primary_misses\":",
    "\"promised_checked\":",
    "\"promised_lost\":",
    "\"hash_groups_checked\":",
    "\"failovers\":",
    "\"scrub_blocks_corrupt\":",
    "\"scrub_remediated\":",
    "\"violations\":",
];

/// One chaos schedule's oracle verdict.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Schedule/harness seed.
    pub seed: u64,
    /// Events applied.
    pub events_applied: u64,
    /// Events skipped as inapplicable.
    pub events_skipped: u64,
    /// Acked client writes audited.
    pub acked_writes: u64,
    /// Acked writes lost on every survivor (must be zero).
    pub acked_lost: u64,
    /// Acked keys a primary misserved but a survivor held.
    pub primary_misses: u64,
    /// Promised keys checked through the routing layer.
    pub promised_checked: u64,
    /// Promised keys unreadable on their routed group (must be zero).
    pub promised_lost: u64,
    /// Groups with ≥2 undamaged survivors compared for hash agreement.
    pub hash_groups_checked: u64,
    /// Failovers performed.
    pub failovers: u64,
    /// Corrupt blocks scrub detected.
    pub scrub_blocks_corrupt: u64,
    /// Remediations: corrected + lost + quarantined files/segments.
    pub scrub_remediated: u64,
    /// Oracle violations (must be zero).
    pub violations: u64,
}

/// Events per generated schedule at this scale.
pub fn events_per_schedule(scale: &BenchScale) -> usize {
    (scale.ycsb_ops / 25).clamp(12, 40) as usize
}

fn chaos_config(scale: &BenchScale) -> ChaosConfig {
    ChaosConfig {
        groups: GROUPS,
        replicas: REPLICAS,
        events: events_per_schedule(scale),
        sstable_size: scale.sstable,
        disk_capacity: scale.disk_capacity(),
        buggy_gc: false,
    }
}

/// Runs `schedules` seeded chaos schedules and returns the cells plus
/// the merged fault-class coverage tally.
pub fn run_chaos_sweep(scale: &BenchScale, schedules: usize) -> Result<(Vec<ChaosCell>, Coverage)> {
    let cfg = chaos_config(scale);
    let mut seeds = SplitMix::new(scale.seed ^ 0xC4A0_5EED_0BEA_7E11);
    let mut cells = Vec::with_capacity(schedules);
    let mut coverage = Coverage::default();
    for _ in 0..schedules {
        let seed = seeds.next_u64();
        let events = generate(seed, &cfg);
        let mut harness = ChaosHarness::new(cfg.clone(), seed)?;
        let report = harness.run(&events)?;
        for v in &report.violations {
            eprintln!("chaos seed {seed}: {v}");
        }
        coverage.merge(&report.coverage);
        cells.push(ChaosCell {
            seed,
            events_applied: report.events_applied,
            events_skipped: report.events_skipped,
            acked_writes: report.acked_writes,
            acked_lost: report.acked_lost,
            primary_misses: report.primary_misses,
            promised_checked: report.promised_checked,
            promised_lost: report.promised_lost,
            hash_groups_checked: report.hash_groups_checked,
            failovers: report.failovers,
            scrub_blocks_corrupt: report.scrub_blocks_corrupt,
            scrub_remediated: report.scrub_blocks_corrected
                + report.scrub_blocks_lost
                + report.scrub_files_quarantined,
            violations: report.violations.len() as u64,
        });
    }
    Ok((cells, coverage))
}

fn cell_json(c: &ChaosCell) -> String {
    format!(
        concat!(
            "{{\"seed\":{},\"events_applied\":{},\"events_skipped\":{},",
            "\"acked_writes\":{},\"acked_lost\":{},\"primary_misses\":{},",
            "\"promised_checked\":{},\"promised_lost\":{},",
            "\"hash_groups_checked\":{},\"failovers\":{},",
            "\"scrub_blocks_corrupt\":{},\"scrub_remediated\":{},",
            "\"violations\":{}}}"
        ),
        c.seed,
        c.events_applied,
        c.events_skipped,
        c.acked_writes,
        c.acked_lost,
        c.primary_misses,
        c.promised_checked,
        c.promised_lost,
        c.hash_groups_checked,
        c.failovers,
        c.scrub_blocks_corrupt,
        c.scrub_remediated,
        c.violations,
    )
}

fn coverage_json(tag: &str, map: &std::collections::BTreeMap<&'static str, u64>) -> String {
    let mut s = format!("\"{tag}\":{{");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{k}\":{v}");
    }
    s.push('}');
    s
}

/// Serialises the sweep as the `BENCH_pr10.json` artifact.
pub fn sweep_to_json(
    scale: &BenchScale,
    schedules: usize,
    cells: &[ChaosCell],
    coverage: &Coverage,
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        concat!(
            "{{\"schema\":\"{}\",\"base_seed\":{},\"schedules\":{},",
            "\"groups\":{},\"replicas\":{},\"events_per_schedule\":{},",
            "\"coverage\":{{{},{}}},\"violations_total\":{},\"cells\":["
        ),
        CHAOS_SCHEMA,
        scale.seed,
        schedules,
        GROUPS,
        REPLICAS,
        events_per_schedule(scale),
        coverage_json("device", &coverage.device),
        coverage_json("cluster", &coverage.cluster),
        cells.iter().map(|c| c.violations).sum::<u64>(),
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&cell_json(c));
    }
    s.push_str("]}\n");
    s
}

/// Runs the chaos sweep and returns the artifact as JSON.
pub fn chaos_sweep(scale: &BenchScale, schedules: usize) -> Result<String> {
    let (cells, coverage) = run_chaos_sweep(scale, schedules)?;
    Ok(sweep_to_json(scale, schedules, &cells, &coverage))
}

/// Pulls the `u64` following `"key":` out of one fragment.
fn frag_value(frag: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let i = frag.find(&pat)? + pat.len();
    let rest = &frag[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Counts the entries of the `"tag":{..}` coverage object.
fn coverage_entries(content: &str, tag: &str) -> usize {
    let pat = format!("\"{tag}\":{{");
    let Some(i) = content.find(&pat) else {
        return 0;
    };
    let rest = &content[i + pat.len()..];
    let Some(end) = rest.find('}') else { return 0 };
    let body = &rest[..end];
    if body.trim().is_empty() {
        0
    } else {
        body.matches(':').count()
    }
}

/// Validates a chaos artifact: schema marker, the declared cell count,
/// no NaN/Inf — and the torture invariants themselves: zero oracle
/// violations anywhere, zero acked/promised loss, real traffic and
/// hash comparisons in every cell, and injected coverage spanning at
/// least [`MIN_DEVICE_CLASSES`] device and [`MIN_CLUSTER_CLASSES`]
/// cluster fault classes. Returns the list of problems; empty means
/// valid.
pub fn check_chaos_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{CHAOS_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    for key in ["\"base_seed\":", "\"schedules\":", "\"coverage\":"] {
        if !content.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    let declared = frag_value(content, "schedules").unwrap_or(0) as usize;
    if declared == 0 {
        problems.push("artifact declares zero schedules".to_string());
    }
    for key in CELL_KEYS {
        let n = content.matches(key).count();
        if n != declared {
            problems.push(format!("key {key} appears {n} times, expected {declared}"));
        }
    }
    if frag_value(content, "violations_total") != Some(0) {
        problems.push("oracle violations recorded: violations_total != 0".to_string());
    }
    let mut acked_total = 0u64;
    for cell in content.split("{\"seed\":").skip(1) {
        let seed = {
            let end = cell.find(|c: char| !c.is_ascii_digit()).unwrap_or(0);
            cell[..end].to_string()
        };
        for must_be_zero in ["acked_lost", "promised_lost", "violations"] {
            if frag_value(cell, must_be_zero) != Some(0) {
                problems.push(format!("cell seed {seed}: {must_be_zero} != 0"));
            }
        }
        let acked = frag_value(cell, "acked_writes").unwrap_or(0);
        if acked == 0 {
            problems.push(format!("cell seed {seed}: served no traffic"));
        }
        acked_total += acked;
        if frag_value(cell, "hash_groups_checked") == Some(0) {
            problems.push(format!(
                "cell seed {seed}: no group had two survivors to compare"
            ));
        }
        if frag_value(cell, "scrub_remediated").unwrap_or(0)
            < frag_value(cell, "scrub_blocks_corrupt").unwrap_or(u64::MAX)
        {
            problems.push(format!("cell seed {seed}: scrub accounting leaks"));
        }
    }
    if acked_total == 0 {
        problems.push("sweep served no traffic at all".to_string());
    }
    let dev = coverage_entries(content, "device");
    if dev < MIN_DEVICE_CLASSES {
        problems.push(format!(
            "only {dev} device fault classes injected, need {MIN_DEVICE_CLASSES}"
        ));
    }
    let clu = coverage_entries(content, "cluster");
    if clu < MIN_CLUSTER_CLASSES {
        problems.push(format!(
            "only {clu} cluster fault classes injected, need {MIN_CLUSTER_CLASSES}"
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    const TEST_SCHEDULES: usize = 8;

    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        s.load_bytes = 4 << 20;
        s
    }

    /// One sweep shared by the read-only tests (each schedule drives
    /// two three-node groups through a generated fault sequence;
    /// running it once keeps the suite fast).
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| chaos_sweep(&test_scale(), TEST_SCHEDULES).unwrap())
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = chaos_sweep(&test_scale(), TEST_SCHEDULES).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_chaos_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
    }

    #[test]
    fn different_seeds_differ_beyond_the_header() {
        let a = artifact();
        let mut other = test_scale();
        other.seed ^= 0xBAD5EED;
        let b = chaos_sweep(&other, TEST_SCHEDULES).unwrap();
        let tail = |s: &str| s[s.find("\"cells\"").unwrap()..].to_string();
        assert_ne!(tail(a), tail(&b), "schedules must follow the seed");
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_chaos_json("{}").is_empty());
        let a = artifact();
        // Forge a violation total: the zero-violations gate must trip.
        let forged = a.replacen("\"violations_total\":0", "\"violations_total\":3", 1);
        assert!(check_chaos_json(&forged)
            .iter()
            .any(|p| p.contains("violations_total")));
        // Forge an acked loss into one cell.
        let forged = a.replacen("\"acked_lost\":0", "\"acked_lost\":2", 1);
        assert!(check_chaos_json(&forged)
            .iter()
            .any(|p| p.contains("acked_lost")));
        // Strip the device coverage: the coverage gate must trip.
        let i = a.find("\"device\":{").unwrap();
        let j = i + a[i..].find('}').unwrap() + 1;
        let gutted = format!("{}\"device\":{{}}{}", &a[..i], &a[j..]);
        assert!(check_chaos_json(&gutted)
            .iter()
            .any(|p| p.contains("device fault classes")));
    }
}
