//! The key-value-separation artifact behind `--vlog-out` and
//! `--vlog-check` (`BENCH_pr8.json`).
//!
//! Update-heavy YCSB traffic (A: 50% updates, F: 50% read-modify-writes)
//! is served closed-loop at saturation against two SEALDB builds that
//! differ only in key-value separation: values inline in the LSM (the
//! baseline every prior PR measured) versus values in the band-aligned
//! value log with pointers in the LSM. After the serve phase each store
//! pays its deferred debt — the inline store drains compaction, the vlog
//! store drains compaction plus one garbage-collection lap — so the
//! update write-amplification each cell reports covers the *whole* cost
//! of the traffic, not just the foreground slice. The invariants the CI
//! gate enforces: vlog-on update-WA strictly below inline at every cell,
//! at least 2× lower on workload A, a higher sustained op/s knee, and
//! zero lost keys anywhere.

use crate::BenchScale;
use lsm_core::Result;
use seal_front::{run_serve, ServeConfig};
use sealdb::{Store, StoreConfig, StoreKind, VlogParams};
use smr_sim::IoStats;
use std::fmt::Write as _;
use workloads::{ArrivalProcess, WorkloadSpec};

/// Schema marker the checker requires at the top of the artifact.
pub const VLOG_SCHEMA: &str = "sealdb-vlog-v1";

/// Virtual clients per serving run.
pub const CLIENTS: usize = 4;

/// The update-heavy workloads of the sweep, in artifact order.
pub const WORKLOADS: [&str; 2] = ["A", "F"];

/// Keys that must appear once per sweep cell in a valid artifact.
const CELL_KEYS: [&str; 10] = [
    "\"workload\"",
    "\"vlog\"",
    "\"update_wa\"",
    "\"wa_compaction\"",
    "\"wa_vlog_gc\"",
    "\"saturation_ops_per_sec\"",
    "\"serve_ops_per_sec\"",
    "\"p99_ns\"",
    "\"drain_ns\"",
    "\"lost_keys\"",
];

/// One (workload × store build) cell of the sweep.
#[derive(Clone, Debug)]
pub struct VlogCell {
    /// Workload tag ("A" or "F").
    pub workload: &'static str,
    /// Whether key-value separation was on.
    pub vlog: bool,
    /// Store-internal write bytes per user payload byte over the serve
    /// phase plus its deferred-debt drain: flush + compaction, and for
    /// the vlog build also value-log appends and GC relocations.
    pub update_wa: f64,
    /// Compaction-attributable component of `update_wa`.
    pub wa_compaction: f64,
    /// Value-log-attributable component of `update_wa` (0 for inline).
    pub wa_vlog_gc: f64,
    /// Sustained throughput: served ops over serve *plus* drain time —
    /// the op/s knee a store holds once its deferred debt is charged.
    pub saturation_ops_per_sec: f64,
    /// Foreground-only throughput of the closed-loop serve phase.
    pub serve_ops_per_sec: f64,
    /// p99 end-to-end latency of the serve phase, ns.
    pub p99_ns: u64,
    /// Simulated time spent paying deferred debt after the serve, ns.
    pub drain_ns: u64,
    /// Preloaded keys unreadable after serve + drain (must be 0).
    pub lost_keys: u64,
    /// Value-log bytes appended on behalf of user writes.
    pub vlog_appended_bytes: u64,
    /// Value-log bytes rewritten by GC relocation.
    pub vlog_relocated_bytes: u64,
    /// Segment bytes returned to the allocator by GC.
    pub vlog_reclaimed_bytes: u64,
    /// Segments GC retired during the drain lap.
    pub vlog_segments_retired: u64,
}

fn spec_for(workload: &str) -> WorkloadSpec {
    match workload {
        "A" => WorkloadSpec::a(),
        _ => WorkloadSpec::f(),
    }
}

/// The vlog parameters of the sweep's separated build: segments sized
/// to one whole band, and a threshold of 1 so every benchmark value is
/// separated (the WiscKey-style full-separation configuration).
fn sweep_params(scale: &BenchScale) -> VlogParams {
    VlogParams {
        segment_bytes: scale.band_size(),
        value_threshold: 1,
        ..VlogParams::default()
    }
}

fn io_snapshot(store: &Store) -> IoStats {
    store.db.ctx().lock().fs.disk().stats().clone()
}

/// WA ratio of a counter delta; 0/0 reports 0 (nothing moved).
fn delta_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn run_cell(workload: &'static str, with_vlog: bool, scale: &BenchScale) -> Result<VlogCell> {
    let gen = scale.generator();
    let records = scale.load_records().max(1);
    let ops = scale.ycsb_ops.max(CLIENTS as u64);
    // The sweep favours small keyspaces hammered by many updates (so
    // steady-state garbage, not the preload, dominates GC); floor the
    // capacity clear of the log zone plus working room either way.
    let capacity = scale.disk_capacity().max(48 << 20);
    let mut cfg = StoreConfig::new(StoreKind::SealDb, scale.sstable, capacity);
    cfg.seed = scale.seed;
    if with_vlog {
        cfg = cfg.with_vlog(sweep_params(scale));
    }
    let mut store = cfg.build()?;
    workloads::fill_random(&mut store, &gen, records, scale.seed)?;
    store.flush()?;

    let base = io_snapshot(&store);
    let serve_cfg = ServeConfig::new(
        spec_for(workload),
        ArrivalProcess::ClosedLoop { think_ns: 0 },
        CLIENTS,
        ops,
        records,
    )
    .with_seed(scale.seed);
    let served = run_serve(&mut store, &gen, &serve_cfg)?;

    // Pay the deferred debt the closed-loop phase left behind, on the
    // simulated clock: the inline build drains its compaction backlog;
    // the vlog build drains compaction plus one GC lap over the
    // segments sealed so far (bounded — endless laps would churn live
    // data forever, which no real collector does).
    let drain_start = store.clock_ns();
    while store.needs_compaction() && store.compact_step()? {}
    let gc_budget = scale.band_size();
    let lap = store.vlog.as_ref().map_or(0, |v| v.segment_count() as u64);
    let retired_before = store
        .vlog
        .as_ref()
        .map_or(0, |v| v.stats().segments_retired);
    while store.vlog_gc_pending()
        && store
            .vlog
            .as_ref()
            .map_or(0, |v| v.stats().segments_retired)
            - retired_before
            < lap
    {
        store.vlog_gc_step(gc_budget)?;
        while store.needs_compaction() && store.compact_step()? {}
    }
    let drain_ns = store.clock_ns() - drain_start;

    let end = io_snapshot(&store);
    let payload = end.user_payload - base.user_payload;
    let lsm = end.lsm_written() - base.lsm_written();
    let vlog_bytes = end.vlog_written() - base.vlog_written();

    let mut lost_keys = 0u64;
    for i in 0..records {
        if !matches!(store.get(&gen.key(i)), Ok(Some(_))) {
            lost_keys += 1;
        }
    }

    let vstats = store.vlog.as_ref().map(|v| v.stats()).unwrap_or_default();
    let total_ns = served.sim_ns + drain_ns;
    Ok(VlogCell {
        workload,
        vlog: with_vlog,
        update_wa: delta_ratio(lsm + vlog_bytes, payload),
        wa_compaction: delta_ratio(lsm, payload),
        wa_vlog_gc: delta_ratio(vlog_bytes, payload),
        saturation_ops_per_sec: if total_ns == 0 {
            0.0
        } else {
            served.ops as f64 * 1e9 / total_ns as f64
        },
        serve_ops_per_sec: served.throughput_ops_per_sec,
        p99_ns: served.latency.p99_ns,
        drain_ns,
        lost_keys,
        vlog_appended_bytes: vstats.appended_bytes,
        vlog_relocated_bytes: vstats.relocated_bytes,
        vlog_reclaimed_bytes: vstats.reclaimed_bytes,
        vlog_segments_retired: vstats.segments_retired,
    })
}

/// Runs the four-cell sweep (two workloads × inline/vlog), cells in
/// parallel (each owns an independent simulated disk).
pub fn run_sweep(scale: &BenchScale) -> Result<Vec<VlogCell>> {
    let cells: [(&'static str, bool); 4] = [("A", false), ("A", true), ("F", false), ("F", true)];
    let mut out: Vec<Option<Result<VlogCell>>> = cells.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for &(w, v) in &cells {
            handles.push(s.spawn(move || run_cell(w, v, scale)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("sweep cell thread panicked"));
        }
    });
    out.into_iter().map(|o| o.expect("joined")).collect()
}

/// Serialises the sweep as the `BENCH_pr8.json` artifact — one cell per
/// line so the CI awk gate can scan it without a JSON parser.
pub fn sweep_to_json(scale: &BenchScale, cells: &[VlogCell]) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{VLOG_SCHEMA}\",\"seed\":{},\"sstable\":{},\"records\":{},\"ops\":{},\"clients\":{},\"value_bytes\":{},\"segment_bytes\":{},\"cells\":[",
        scale.seed,
        scale.sstable,
        scale.load_records().max(1),
        scale.ycsb_ops.max(CLIENTS as u64),
        CLIENTS,
        scale.value_size,
        scale.band_size(),
    );
    for (i, c) in cells.iter().enumerate() {
        s.push_str(if i > 0 { ",\n" } else { "\n" });
        let _ = write!(
            s,
            concat!(
                "{{\"workload\":\"{}\",\"vlog\":{},\"update_wa\":{:.4},",
                "\"wa_compaction\":{:.4},\"wa_vlog_gc\":{:.4},",
                "\"saturation_ops_per_sec\":{:.3},\"serve_ops_per_sec\":{:.3},",
                "\"p99_ns\":{},\"drain_ns\":{},\"lost_keys\":{},",
                "\"vlog_appended_bytes\":{},\"vlog_relocated_bytes\":{},",
                "\"vlog_reclaimed_bytes\":{},\"vlog_segments_retired\":{}}}"
            ),
            c.workload,
            c.vlog,
            c.update_wa,
            c.wa_compaction,
            c.wa_vlog_gc,
            c.saturation_ops_per_sec,
            c.serve_ops_per_sec,
            c.p99_ns,
            c.drain_ns,
            c.lost_keys,
            c.vlog_appended_bytes,
            c.vlog_relocated_bytes,
            c.vlog_reclaimed_bytes,
            c.vlog_segments_retired,
        );
    }
    s.push_str("\n]}\n");
    s
}

/// Runs the sweep and returns the artifact as a JSON string.
pub fn vlog_sweep(scale: &BenchScale) -> Result<String> {
    Ok(sweep_to_json(scale, &run_sweep(scale)?))
}

/// Validates a key-value-separation artifact: schema marker, all four
/// cells, every cell key present the right number of times, no NaN/Inf,
/// and the headline invariants (vlog update-WA strictly below inline
/// per workload; zero lost keys). Returns the problems; empty = valid.
pub fn check_vlog_json(content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let marker = format!("\"schema\":\"{VLOG_SCHEMA}\"");
    if !content.contains(&marker) {
        problems.push(format!("missing schema marker {marker}"));
    }
    for key in [
        "\"seed\":",
        "\"clients\":",
        "\"ops\":",
        "\"segment_bytes\":",
    ] {
        if !content.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    let expected_cells = WORKLOADS.len() * 2;
    for key in CELL_KEYS {
        let n = content.matches(&format!("{key}:")).count();
        if n != expected_cells {
            problems.push(format!(
                "key {key} appears {n} times, expected {expected_cells}"
            ));
        }
    }
    for bad in ["NaN", "nan\"", ":inf", ":-inf", "Infinity"] {
        if content.contains(bad) {
            problems.push(format!("artifact contains non-finite token {bad:?}"));
        }
    }
    // Headline invariants, mirrored by the CI awk gate.
    for w in WORKLOADS {
        let wa = |v: bool| cell_value(content, w, v, "update_wa");
        match (wa(false), wa(true)) {
            (Some(inline), Some(vlog)) => {
                if vlog >= inline {
                    problems.push(format!(
                        "workload {w}: vlog update_wa {vlog} not below inline {inline}"
                    ));
                }
            }
            _ => problems.push(format!("workload {w}: missing inline/vlog update_wa pair")),
        }
    }
    for (i, _) in content.match_indices("\"lost_keys\":") {
        let rest = &content[i + "\"lost_keys\":".len()..];
        if !rest.starts_with('0') {
            problems.push("artifact reports lost keys".to_string());
        }
    }
    problems
}

/// Pulls one numeric field out of the `(workload, vlog)` cell of a
/// one-cell-per-line artifact.
pub fn cell_value(content: &str, workload: &str, vlog: bool, key: &str) -> Option<f64> {
    let tag = format!("\"workload\":\"{workload}\",\"vlog\":{vlog},");
    let line = content.lines().find(|l| l.contains(&tag))?;
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)?;
    let rest = &line[i + pat.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One sweep shared by every test that only reads the artifact.
    fn artifact() -> &'static str {
        static ARTIFACT: OnceLock<String> = OnceLock::new();
        ARTIFACT.get_or_init(|| vlog_sweep(&test_scale()).unwrap())
    }

    /// The committed `BENCH_pr8.json` flags: `--tiny --value 4096
    /// --load-mb 4 --ycsb-ops 4000`. Key-value separation pays off in
    /// the large-value regime, where compaction bandwidth (not head
    /// seeks) dominates the update cost — the same regime the paper's
    /// set-aware stores target with whole-band payloads.
    fn test_scale() -> BenchScale {
        let mut s = BenchScale::tiny();
        s.value_size = 4096;
        s.load_bytes = 4 << 20;
        s.ycsb_ops = 4000;
        s
    }

    #[test]
    fn sweep_is_valid_and_deterministic() {
        let a = artifact();
        let b = vlog_sweep(&test_scale()).unwrap();
        assert_eq!(a, &b, "same-seed artifacts must be byte-identical");
        let problems = check_vlog_json(a);
        assert!(problems.is_empty(), "artifact invalid: {problems:?}");
    }

    #[test]
    fn vlog_halves_update_wa_on_workload_a() {
        let a = artifact();
        let inline = cell_value(a, "A", false, "update_wa").unwrap();
        let vlog = cell_value(a, "A", true, "update_wa").unwrap();
        assert!(
            vlog * 2.0 <= inline,
            "vlog update-WA {vlog} not ≥2× below inline {inline}"
        );
    }

    #[test]
    fn vlog_sustains_a_higher_knee_on_workload_a() {
        let a = artifact();
        let inline = cell_value(a, "A", false, "saturation_ops_per_sec").unwrap();
        let vlog = cell_value(a, "A", true, "saturation_ops_per_sec").unwrap();
        assert!(
            vlog > inline,
            "vlog sustained {vlog} ops/s not above inline {inline}"
        );
    }

    #[test]
    fn checker_rejects_bad_artifacts() {
        assert!(!check_vlog_json("{}").is_empty());
        let good = artifact();
        // Flipping the invariant must trip the checker: swap the two
        // update_wa values of workload A.
        let inline = cell_value(good, "A", false, "update_wa").unwrap();
        let vlog = cell_value(good, "A", true, "update_wa").unwrap();
        let bad = good
            .replace(
                &format!("\"update_wa\":{inline:.4}"),
                "\"update_wa\":__TMP__",
            )
            .replace(
                &format!("\"update_wa\":{vlog:.4}"),
                &format!("\"update_wa\":{inline:.4}"),
            )
            .replace("\"update_wa\":__TMP__", &format!("\"update_wa\":{vlog:.4}"));
        assert!(check_vlog_json(&bad)
            .iter()
            .any(|p| p.contains("not below inline")));
        let lost = good.replace("\"lost_keys\":0", "\"lost_keys\":3");
        assert!(check_vlog_json(&lost)
            .iter()
            .any(|p| p.contains("lost keys")));
    }
}
