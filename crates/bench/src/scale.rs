//! Benchmark scale: one knob family mapping the paper's full-size
//! experiments onto tractable simulated runs with every ratio intact.
//!
//! Paper configuration: 16 B keys, 4 KB values, 4 MB SSTables, 40 MB
//! bands, 100 GB loads on a 1 TB drive. Default bench scale: 1/16 linear
//! (256 KiB SSTables, 2.5 MiB bands) with 256 MiB loads — large enough
//! to populate four levels and drive hundreds of compactions.

use workloads::RecordGenerator;

/// Scaling parameters shared by every experiment.
#[derive(Clone, Copy, Debug)]
pub struct BenchScale {
    /// SSTable size (paper: 4 MiB).
    pub sstable: u64,
    /// Key size in bytes (paper: 16).
    pub key_size: usize,
    /// Value size in bytes (paper: 4096).
    pub value_size: usize,
    /// Total payload to load (paper: 100 GB).
    pub load_bytes: u64,
    /// Point-read operations per read phase (paper: 100 K).
    pub read_ops: u64,
    /// YCSB operations per workload (paper: 100 K).
    pub ycsb_ops: u64,
    /// Disk capacity as a multiple of `load_bytes` (paper: 10×).
    pub capacity_ratio: u64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for BenchScale {
    fn default() -> Self {
        BenchScale {
            sstable: 1 << 20,
            key_size: 16,
            value_size: 4096,
            load_bytes: 512 << 20,
            read_ops: 20_000,
            ycsb_ops: 10_000,
            capacity_ratio: 10,
            seed: 0x5EA1DB,
        }
    }
}

impl BenchScale {
    /// A fast scale for smoke tests and CI.
    pub fn tiny() -> Self {
        BenchScale {
            sstable: 64 << 10,
            value_size: 256,
            load_bytes: 8 << 20,
            read_ops: 1000,
            ycsb_ops: 500,
            ..Default::default()
        }
    }

    /// The canonical scale of the latency-under-load serving sweep
    /// (`BENCH_pr3.json`): small enough for CI, large enough that the
    /// ingest keeps level 0 populated — on a fully-quiesced smaller
    /// store SMRDB's two-level reads cost one block and its saturation
    /// is a small-scale artefact rather than a property of the design.
    pub fn serving() -> Self {
        BenchScale {
            sstable: 256 << 10,
            value_size: 1024,
            load_bytes: 32 << 20,
            read_ops: 1000,
            // Long enough that the ingest climbs the L0 ladder: the
            // knee and overload points must reach the slowdown and stop
            // triggers, not just memtable-flush waits.
            ycsb_ops: 8000,
            ..Default::default()
        }
    }

    /// The paper's full-size parameters (hours of simulation; provided
    /// for completeness).
    pub fn paper() -> Self {
        BenchScale {
            sstable: 4 << 20,
            key_size: 16,
            value_size: 4096,
            load_bytes: 100 << 30,
            read_ops: 100_000,
            ycsb_ops: 100_000,
            capacity_ratio: 10,
            seed: 0x5EA1DB,
        }
    }

    /// Record generator for this scale.
    pub fn generator(&self) -> RecordGenerator {
        RecordGenerator::new(self.key_size, self.value_size, self.seed ^ 0x5EED)
    }

    /// Number of records amounting to `load_bytes`.
    pub fn load_records(&self) -> u64 {
        self.load_bytes / (self.key_size + self.value_size) as u64
    }

    /// Disk capacity in bytes.
    pub fn disk_capacity(&self) -> u64 {
        self.load_bytes * self.capacity_ratio
    }

    /// Band size at the paper's default ratio (10 × SSTable).
    pub fn band_size(&self) -> u64 {
        self.sstable * 10
    }

    /// Linear scale factor relative to the paper (1.0 = full size).
    pub fn linear_factor(&self) -> f64 {
        self.sstable as f64 / (4 << 20) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_match_paper() {
        let s = BenchScale::default();
        assert_eq!(s.band_size() / s.sstable, 10);
        assert_eq!(s.disk_capacity() / s.load_bytes, 10);
        assert_eq!(s.linear_factor(), 1.0 / 4.0);
    }

    #[test]
    fn paper_scale_is_full_size() {
        let p = BenchScale::paper();
        assert_eq!(p.linear_factor(), 1.0);
        assert_eq!(p.load_records(), (100u64 << 30) / 4112);
    }

    #[test]
    fn record_math() {
        let s = BenchScale::tiny();
        let g = s.generator();
        assert_eq!(g.record_size(), 16 + 256);
        assert_eq!(s.load_records(), (8 << 20) / 272);
    }
}
