//! # placement — disk-space placement policies
//!
//! The SEALDB paper contrasts three ways of deciding *where* on the disk a
//! key-value store's files land:
//!
//! * [`Ext4Sim`] — an Ext4-like block-group allocator. Files are spread
//!   across block groups and freed holes are reused first-fit, which is
//!   exactly the behaviour that scatters the SSTables of one compaction
//!   across the used disk span (the paper's Fig. 2) and provokes band
//!   read-modify-writes on SMR (§II-C).
//! * [`FixedBandAlloc`] — one allocation per dedicated fixed band, the
//!   placement SMRDB \[24\] uses for its band-sized SSTables.
//! * [`DynamicBandAlloc`] — the paper's contribution at the device level
//!   (§III-B): a free-space list organised as a sorted array of
//!   SSTable-aligned size classes, each holding a doubly-linked list of
//!   free regions; allocation satisfies `S_free ≥ S_req + S_guard`
//!   (Eq. 1) with split/coalesce/append-at-the-frontier semantics.
//!
//! All allocators speak the same [`Allocator`] trait so the LSM engine's
//! file store can be parameterised over them.

/// The paper's dynamic-band free-space management.
pub mod dynamicband;
/// Ext4-like scatter allocation (block groups, goal search).
pub mod ext4sim;
/// Fixed-size band allocation for conventional SMR drives.
pub mod fixedband;
/// Address-ordered free-space list shared by the allocators.
pub mod freelist;

pub use dynamicband::DynamicBandAlloc;
pub use ext4sim::Ext4Sim;
pub use fixedband::FixedBandAlloc;
pub use freelist::FreeSpaceList;

use smr_sim::Extent;
use std::fmt;

/// Why an allocation could not be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No region of the requested size is available.
    OutOfSpace {
        /// Bytes requested.
        requested: u64,
        /// Total free bytes remaining (possibly fragmented).
        free: u64,
    },
    /// The request is invalid for this allocator (e.g. larger than a band).
    Unsupported(String),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfSpace { requested, free } => {
                write!(f, "out of space: requested {requested}, free {free}")
            }
            AllocError::Unsupported(msg) => write!(f, "unsupported allocation: {msg}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A disk-space allocator: hands out extents for file data and recycles
/// them on delete.
pub trait Allocator: Send {
    /// Allocates `size` bytes, returning the extent the caller may write.
    fn allocate(&mut self, size: u64) -> Result<Extent, AllocError>;

    /// Returns a previously allocated extent to the allocator. `ext` must
    /// be exactly an extent returned by [`Allocator::allocate`].
    fn free(&mut self, ext: Extent);

    /// One past the highest byte ever handed out (the used disk span).
    fn high_water(&self) -> u64;

    /// Bytes currently allocated to live files.
    fn allocated_bytes(&self) -> u64;

    /// Snapshot of recyclable free regions (for the layout figures). The
    /// untouched space past the high-water mark is not included.
    fn free_regions(&self) -> Vec<Extent>;

    /// Human-readable allocator name for reports.
    fn name(&self) -> &'static str;

    /// Resets the allocator so that exactly `live` extents are allocated —
    /// crash recovery re-learning the disk from the file store's surviving
    /// metadata. Every extent in `live` must be one this allocator handed
    /// out earlier (band-aligned for banded allocators); after the call,
    /// each may be passed to [`Allocator::free`] without panicking.
    /// Reservation bytes (guards) attached to allocations *not* in `live`
    /// may be forgotten rather than recycled: the space is simply never
    /// handed out again, which is safe, merely conservative.
    fn rebuild(&mut self, live: &[Extent]);

    /// Fences `ext` off the allocation path: a latent sector error or
    /// failed band discovered by the scrubber. Fenced space is removed
    /// from the free pool and never handed out again; space currently
    /// allocated inside the fence stays with its owner until freed, at
    /// which point the fenced part is dropped instead of recycled.
    /// Returns the bytes *newly* fenced (0 when the range was already
    /// fenced, or for allocators without fencing support).
    fn quarantine(&mut self, ext: Extent) -> u64 {
        let _ = ext;
        0
    }

    /// Total bytes currently fenced by [`Allocator::quarantine`].
    fn quarantined_bytes(&self) -> u64 {
        0
    }

    /// Dynamic-band snapshot: (band extent, live allocations inside), for
    /// allocators that track bands (Fig. 13). Default: none.
    fn band_snapshot(&self) -> Vec<(Extent, usize)> {
        Vec::new()
    }

    /// Drains queued band-lifecycle events (allocate/append/recycle) for
    /// the observability layer. Allocators have no disk access, so they
    /// queue events and the placement policy above drains them into the
    /// disk's `Obs` with a timestamp. Default: no events.
    fn take_events(&mut self) -> Vec<smr_sim::AllocEvent> {
        Vec::new()
    }
}
