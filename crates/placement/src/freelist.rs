//! The paper's free-space list (§III-B2).
//!
//! > "The free space from faded sets is organized by a sorted array of
//! > double linked list, named *free space list*, and each array element
//! > is aligned with an SSTable size (4 MB). Free space regions with
//! > similar sizes are tracked on an array element by a double linked
//! > list. [...] SEALDB first searches in the free space list by binary
//! > searching the sorted array and picking the first free space in its
//! > linked list with the complexity of O(log n)."
//!
//! Implementation: free regions live in a slab (`Vec<Node>`) and are
//! threaded onto one intrusive doubly-linked list per *size class*
//! (`class = len / align`). The classes themselves form a sorted array
//! (`Vec<(class, head)>`) that is binary-searched on allocation. A
//! by-offset index (`BTreeMap`) supports neighbour lookup for coalescing.

use smr_sim::Extent;
use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    offset: u64,
    len: u64,
    prev: usize,
    next: usize,
    /// Slab slot liveness (dead slots are chained through `next`).
    live: bool,
}

/// The sorted-array-of-doubly-linked-lists free-space structure.
#[derive(Debug)]
pub struct FreeSpaceList {
    /// Size-class granularity (one SSTable in the paper: 4 MB).
    align: u64,
    /// Sorted array of (size class, head slab index) pairs; classes with
    /// no regions are removed, keeping the binary search tight.
    classes: Vec<(u64, usize)>,
    /// Region storage.
    slab: Vec<Node>,
    /// Head of the dead-slot chain inside the slab.
    free_slot: usize,
    /// Offset -> slab index, for coalescing with address neighbours.
    by_offset: BTreeMap<u64, usize>,
    /// Total free bytes tracked.
    total: u64,
}

impl FreeSpaceList {
    /// Creates an empty list with the given size-class alignment
    /// (the SSTable size in the paper).
    pub fn new(align: u64) -> Self {
        assert!(align > 0, "alignment must be positive");
        FreeSpaceList {
            align,
            classes: Vec::new(),
            slab: Vec::new(),
            free_slot: NIL,
            by_offset: BTreeMap::new(),
            total: 0,
        }
    }

    /// Size-class granularity.
    pub fn align(&self) -> u64 {
        self.align
    }

    /// Total free bytes tracked by the list.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Number of free regions tracked.
    pub fn region_count(&self) -> usize {
        self.by_offset.len()
    }

    /// Number of non-empty size classes (length of the sorted array).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    fn class_of(&self, len: u64) -> u64 {
        len / self.align
    }

    fn alloc_slot(&mut self, node: Node) -> usize {
        if self.free_slot != NIL {
            let idx = self.free_slot;
            self.free_slot = self.slab[idx].next;
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        }
    }

    fn release_slot(&mut self, idx: usize) {
        self.slab[idx].live = false;
        self.slab[idx].next = self.free_slot;
        self.free_slot = idx;
    }

    /// Links a region (already in the slab) at the head of its class list.
    fn link(&mut self, idx: usize) {
        let class = self.class_of(self.slab[idx].len);
        match self.classes.binary_search_by_key(&class, |&(c, _)| c) {
            Ok(pos) => {
                let head = self.classes[pos].1;
                self.slab[idx].next = head;
                self.slab[idx].prev = NIL;
                self.slab[head].prev = idx;
                self.classes[pos].1 = idx;
            }
            Err(pos) => {
                self.slab[idx].next = NIL;
                self.slab[idx].prev = NIL;
                self.classes.insert(pos, (class, idx));
            }
        }
    }

    /// Unlinks a region from its class list (it stays in the slab).
    fn unlink(&mut self, idx: usize) {
        let class = self.class_of(self.slab[idx].len);
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        }
        if prev == NIL {
            // It was the class head.
            let pos = self
                .classes
                .binary_search_by_key(&class, |&(c, _)| c)
                .expect("class of a linked region must exist");
            if next == NIL {
                self.classes.remove(pos);
            } else {
                self.classes[pos].1 = next;
            }
        }
    }

    /// Inserts a free region, coalescing with address-adjacent regions.
    pub fn insert(&mut self, ext: Extent) {
        if ext.is_empty() {
            return;
        }
        let mut lo = ext.offset;
        let mut hi = ext.end();
        debug_assert!(
            !self.overlaps_existing(ext),
            "double free / overlapping free of {ext:?}"
        );
        // Coalesce with the predecessor if it ends exactly at `lo`.
        if let Some((&poff, &pidx)) = self.by_offset.range(..lo).next_back() {
            let p = self.slab[pidx];
            if poff + p.len == lo {
                self.unlink(pidx);
                self.by_offset.remove(&poff);
                self.release_slot(pidx);
                self.total -= p.len;
                lo = poff;
            }
        }
        // Coalesce with the successor starting exactly at `hi`.
        if let Some(&sidx) = self.by_offset.get(&hi) {
            let s = self.slab[sidx];
            self.unlink(sidx);
            self.by_offset.remove(&hi);
            self.release_slot(sidx);
            self.total -= s.len;
            hi += s.len;
        }
        let node = Node {
            offset: lo,
            len: hi - lo,
            prev: NIL,
            next: NIL,
            live: true,
        };
        let idx = self.alloc_slot(node);
        self.by_offset.insert(lo, idx);
        self.total += hi - lo;
        self.link(idx);
    }

    fn overlaps_existing(&self, ext: Extent) -> bool {
        if let Some((&poff, &pidx)) = self.by_offset.range(..ext.end()).next_back() {
            let p = self.slab[pidx];
            if Extent::new(poff, p.len).overlaps(&ext) {
                return true;
            }
        }
        false
    }

    /// Takes (removes and returns) the first free region of at least
    /// `need` bytes, per the paper's policy: binary-search to the size
    /// class of `need`, scan that class's list first-fit, then fall back
    /// to the head of the next non-empty class (whose every region is
    /// guaranteed large enough). Returns `None` when nothing fits.
    pub fn take(&mut self, need: u64) -> Option<Extent> {
        if need == 0 {
            return Some(Extent::new(0, 0));
        }
        let c0 = self.class_of(need);
        let start = match self.classes.binary_search_by_key(&c0, |&(c, _)| c) {
            Ok(pos) => {
                // Scan the exact class: its regions have len in
                // [c0*align, (c0+1)*align), so a first-fit scan is needed.
                let mut idx = self.classes[pos].1;
                while idx != NIL {
                    if self.slab[idx].len >= need {
                        return Some(self.take_region(idx));
                    }
                    idx = self.slab[idx].next;
                }
                pos + 1
            }
            Err(pos) => pos,
        };
        // Any region in a class > c0 has len >= (c0+1)*align > need.
        if start < self.classes.len() {
            let idx = self.classes[start].1;
            debug_assert!(self.slab[idx].len >= need);
            return Some(self.take_region(idx));
        }
        None
    }

    fn take_region(&mut self, idx: usize) -> Extent {
        let node = self.slab[idx];
        debug_assert!(node.live);
        self.unlink(idx);
        self.by_offset.remove(&node.offset);
        self.release_slot(idx);
        self.total -= node.len;
        Extent::new(node.offset, node.len)
    }

    /// All free regions in address order.
    pub fn regions(&self) -> Vec<Extent> {
        self.by_offset
            .iter()
            .map(|(&off, &idx)| Extent::new(off, self.slab[idx].len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn take_from_empty() {
        let mut fl = FreeSpaceList::new(4 * MB);
        assert_eq!(fl.take(MB), None);
    }

    #[test]
    fn insert_take_roundtrip() {
        let mut fl = FreeSpaceList::new(4 * MB);
        fl.insert(Extent::new(100 * MB, 8 * MB));
        assert_eq!(fl.total_bytes(), 8 * MB);
        let got = fl.take(8 * MB).unwrap();
        assert_eq!(got, Extent::new(100 * MB, 8 * MB));
        assert_eq!(fl.total_bytes(), 0);
        assert_eq!(fl.region_count(), 0);
    }

    #[test]
    fn first_fit_within_class() {
        let mut fl = FreeSpaceList::new(4 * MB);
        // Two regions in the same class (class 1: [4MB, 8MB)).
        fl.insert(Extent::new(0, 5 * MB));
        fl.insert(Extent::new(100 * MB, 7 * MB));
        // Need 6 MB: the 5 MB region (scanned first or second) must be
        // skipped; the 7 MB one taken.
        let got = fl.take(6 * MB).unwrap();
        assert_eq!(got, Extent::new(100 * MB, 7 * MB));
        assert_eq!(fl.region_count(), 1);
    }

    #[test]
    fn falls_back_to_larger_class() {
        let mut fl = FreeSpaceList::new(4 * MB);
        fl.insert(Extent::new(0, 3 * MB)); // class 0
        fl.insert(Extent::new(50 * MB, 20 * MB)); // class 5
        let got = fl.take(10 * MB).unwrap();
        assert_eq!(got, Extent::new(50 * MB, 20 * MB));
    }

    #[test]
    fn coalesce_with_predecessor_and_successor() {
        let mut fl = FreeSpaceList::new(MB);
        fl.insert(Extent::new(0, 10 * MB));
        fl.insert(Extent::new(20 * MB, 10 * MB));
        assert_eq!(fl.region_count(), 2);
        // The middle piece glues all three into one region.
        fl.insert(Extent::new(10 * MB, 10 * MB));
        assert_eq!(fl.region_count(), 1);
        assert_eq!(fl.total_bytes(), 30 * MB);
        let got = fl.take(30 * MB).unwrap();
        assert_eq!(got, Extent::new(0, 30 * MB));
    }

    #[test]
    fn no_coalesce_across_gap() {
        let mut fl = FreeSpaceList::new(MB);
        fl.insert(Extent::new(0, MB));
        fl.insert(Extent::new(2 * MB, MB)); // 1 MB gap at [1MB, 2MB)
        assert_eq!(fl.region_count(), 2);
        assert_eq!(fl.take(2 * MB), None); // neither region is 2 MB
    }

    #[test]
    fn classes_stay_sorted_and_pruned() {
        let mut fl = FreeSpaceList::new(MB);
        for i in 0..10u64 {
            fl.insert(Extent::new(i * 100 * MB, (i + 1) * MB));
        }
        assert_eq!(fl.class_count(), 10);
        for i in (0..10u64).rev() {
            let got = fl.take((i + 1) * MB).unwrap();
            assert_eq!(got.len, (i + 1) * MB);
        }
        assert_eq!(fl.class_count(), 0);
        assert_eq!(fl.total_bytes(), 0);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut fl = FreeSpaceList::new(MB);
        for round in 0..100u64 {
            fl.insert(Extent::new(round * 10 * MB, MB));
            fl.take(MB).unwrap();
        }
        // All rounds reused the same slot.
        assert!(fl.slab.len() <= 2, "slab grew to {}", fl.slab.len());
    }

    #[test]
    fn regions_in_address_order() {
        let mut fl = FreeSpaceList::new(MB);
        fl.insert(Extent::new(50 * MB, MB));
        fl.insert(Extent::new(10 * MB, MB));
        fl.insert(Extent::new(90 * MB, MB));
        let regions = fl.regions();
        assert_eq!(
            regions,
            vec![
                Extent::new(10 * MB, MB),
                Extent::new(50 * MB, MB),
                Extent::new(90 * MB, MB)
            ]
        );
    }
}
