//! Dynamic band management (§III-B, §III-C of the paper).
//!
//! Serves allocations against a raw HM-SMR drive:
//!
//! * **Append** — while no recycled free space fits, data is appended at
//!   the frontier of the banded region. Consecutive appends need no guard
//!   (sequential shingled writes never damage earlier tracks).
//! * **Insert** — a freed region can be reused iff
//!   `S_free ≥ S_req + S_guard` (Eq. 1): the data plus a trailing guard
//!   region that protects the valid data shingled after the hole.
//! * **Split** — inserting into a larger hole returns the remainder
//!   (beyond data + guard) to the free-space list.
//! * **Coalesce** — adjacent freed regions merge (handled inside
//!   [`FreeSpaceList`]).
//!
//! Byte ranges between two guard gaps form a *dynamic band*; the
//! [`DynamicBandAlloc::bands`] snapshot reconstructs them for Fig. 13.

use crate::freelist::FreeSpaceList;
use crate::{AllocError, Allocator};
use smr_sim::{AllocEvent, Extent, ObsEventKind};
use std::collections::BTreeMap;

/// Record of one live allocation: the data extent plus any guard bytes
/// reserved immediately after it (returned to the free pool together).
#[derive(Clone, Copy, Debug)]
struct AllocRecord {
    data_len: u64,
    reserved_len: u64,
}

/// The paper's dynamic-band allocator.
#[derive(Debug)]
pub struct DynamicBandAlloc {
    capacity: u64,
    /// Guard region size (`S_guard`); one SSTable in the paper (4 MB).
    guard: u64,
    /// End of the banded region; beyond it lies the never-written
    /// residual space.
    frontier: u64,
    free: FreeSpaceList,
    live: BTreeMap<u64, AllocRecord>,
    allocated: u64,
    /// Fenced extents (sorted, non-overlapping): latent-error regions the
    /// scrubber quarantined. Never allocated from; freed space overlapping
    /// a fence is dropped rather than recycled.
    fenced: Vec<Extent>,
    /// Band-lifecycle events queued for [`Allocator::take_events`].
    events: Vec<AllocEvent>,
}

impl DynamicBandAlloc {
    /// Creates an allocator over `capacity` bytes with `sstable_size`
    /// size-class alignment and `guard` guard-region bytes.
    pub fn new(capacity: u64, sstable_size: u64, guard: u64) -> Self {
        DynamicBandAlloc {
            capacity,
            guard,
            frontier: 0,
            free: FreeSpaceList::new(sstable_size),
            live: BTreeMap::new(),
            allocated: 0,
            fenced: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Guard-region size in bytes.
    pub fn guard_bytes(&self) -> u64 {
        self.guard
    }

    /// Current frontier (end of the banded region).
    pub fn frontier(&self) -> u64 {
        self.frontier
    }

    /// Total bytes in the recycled free pool.
    pub fn free_pool_bytes(&self) -> u64 {
        self.free.total_bytes()
    }

    /// Free regions smaller than `threshold` — the paper's *fragments*
    /// (Fig. 13 ignores free regions larger than the average set size).
    pub fn fragments(&self, threshold: u64) -> Vec<Extent> {
        self.free
            .regions()
            .into_iter()
            .filter(|e| e.len < threshold)
            .collect()
    }

    /// Fenced (quarantined) extents, sorted by offset.
    pub fn fenced_extents(&self) -> &[Extent] {
        &self.fenced
    }

    /// Inserts `ext` into the free pool, dropping any parts that overlap
    /// a fenced region.
    fn insert_unfenced(&mut self, ext: Extent) {
        let mut cur = ext.offset;
        let end = ext.end();
        for f in &self.fenced {
            if f.end() <= cur || f.offset >= end {
                continue;
            }
            if f.offset > cur {
                self.free.insert(Extent::new(cur, f.offset - cur));
            }
            cur = cur.max(f.end());
        }
        if cur < end {
            self.free.insert(Extent::new(cur, end - cur));
        }
    }

    /// Reconstructs the dynamic bands: maximal runs of live allocations
    /// uninterrupted by free space, as in Fig. 6 / Fig. 13. Returns
    /// (band extent, number of live allocations inside).
    pub fn bands(&self) -> Vec<(Extent, usize)> {
        let mut bands: Vec<(Extent, usize)> = Vec::new();
        for (&off, rec) in &self.live {
            match bands.last_mut() {
                Some((ext, count)) if ext.end() == off => {
                    ext.len += rec.reserved_len;
                    *count += 1;
                }
                _ => {
                    bands.push((Extent::new(off, rec.reserved_len), 1));
                }
            }
        }
        bands
    }
}

impl Allocator for DynamicBandAlloc {
    fn allocate(&mut self, size: u64) -> Result<Extent, AllocError> {
        if size == 0 {
            return Err(AllocError::Unsupported("zero-size allocation".into()));
        }
        // Eq. 1: a recycled hole must hold the data plus a guard region.
        let need = size + self.guard;
        if let Some(hole) = self.free.take(need) {
            debug_assert!(hole.len >= need);
            // Split: data | guard | remainder (returned to the pool).
            let remainder = hole.len - need;
            if remainder > 0 {
                self.free.insert(Extent::new(hole.offset + need, remainder));
            }
            self.live.insert(
                hole.offset,
                AllocRecord {
                    data_len: size,
                    reserved_len: need,
                },
            );
            self.allocated += size;
            self.events.push(AllocEvent {
                kind: ObsEventKind::BandAllocate,
                offset: hole.offset,
                len: size,
            });
            return Ok(Extent::new(hole.offset, size));
        }
        // Append at the frontier of the banded region. No guard is
        // reserved: the space past the frontier holds no valid data.
        // Skip the frontier past any fenced region the append would touch.
        loop {
            let cand = Extent::new(self.frontier, size);
            match self
                .fenced
                .iter()
                .find(|f| f.offset < cand.end() && f.end() > cand.offset)
            {
                Some(f) => self.frontier = f.end(),
                None => break,
            }
        }
        if self.frontier + size > self.capacity {
            return Err(AllocError::OutOfSpace {
                requested: size,
                free: self.free.total_bytes() + (self.capacity - self.frontier),
            });
        }
        let ext = Extent::new(self.frontier, size);
        self.live.insert(
            ext.offset,
            AllocRecord {
                data_len: size,
                reserved_len: size,
            },
        );
        self.frontier += size;
        self.allocated += size;
        self.events.push(AllocEvent {
            kind: ObsEventKind::BandAppend,
            offset: ext.offset,
            len: size,
        });
        Ok(ext)
    }

    fn free(&mut self, ext: Extent) {
        let rec = self
            .live
            .remove(&ext.offset)
            .unwrap_or_else(|| panic!("free of unknown extent {ext:?}"));
        assert_eq!(rec.data_len, ext.len, "free with wrong length for {ext:?}");
        self.allocated -= rec.data_len;
        // The guard bytes reserved with the allocation are recycled too;
        // coalescing happens inside the free list. Parts overlapping a
        // fenced region are dropped, not recycled.
        self.insert_unfenced(Extent::new(ext.offset, rec.reserved_len));
        self.events.push(AllocEvent {
            kind: ObsEventKind::BandRecycle,
            offset: ext.offset,
            len: rec.reserved_len,
        });
    }

    fn high_water(&self) -> u64 {
        self.frontier
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    fn free_regions(&self) -> Vec<Extent> {
        self.free.regions()
    }

    fn name(&self) -> &'static str {
        "dynamic-band"
    }

    fn quarantine(&mut self, ext: Extent) -> u64 {
        // Clip to capacity, then to the parts not already fenced.
        let end = ext.end().min(self.capacity);
        if ext.offset >= end {
            return 0;
        }
        let mut fresh: Vec<Extent> = Vec::new();
        let mut cur = ext.offset;
        for f in &self.fenced {
            if f.end() <= cur || f.offset >= end {
                continue;
            }
            if f.offset > cur {
                fresh.push(Extent::new(cur, f.offset - cur));
            }
            cur = cur.max(f.end());
        }
        if cur < end {
            fresh.push(Extent::new(cur, end - cur));
        }
        if fresh.is_empty() {
            return 0;
        }
        let newly_fenced: u64 = fresh.iter().map(|e| e.len).sum();
        self.fenced.extend(fresh.iter().copied());
        self.fenced.sort_by_key(|e| e.offset);
        // Purge the fence from the recycled free pool: rebuild the list
        // from its surviving (unfenced) regions.
        let regions = self.free.regions();
        self.free = FreeSpaceList::new(self.free.align());
        for r in regions {
            self.insert_unfenced(r);
        }
        for e in &fresh {
            self.events.push(AllocEvent {
                kind: ObsEventKind::BandQuarantine,
                offset: e.offset,
                len: e.len,
            });
        }
        newly_fenced
    }

    fn quarantined_bytes(&self) -> u64 {
        self.fenced.iter().map(|e| e.len).sum()
    }

    fn rebuild(&mut self, live: &[Extent]) {
        self.live.clear();
        self.free = FreeSpaceList::new(self.free.align());
        self.allocated = 0;
        self.frontier = 0;
        // Fences are in-memory knowledge from the scrubber; after a crash
        // the restarted scrubber re-discovers and re-fences bad regions.
        self.fenced.clear();
        self.events.clear();
        for ext in live {
            // Guard bytes the lost allocation had reserved past its data
            // are unknown here, so each survivor keeps only its data
            // bytes; the gaps between survivors stay unreachable (neither
            // live nor free), which wastes them but never double-allocates.
            self.live.insert(
                ext.offset,
                AllocRecord {
                    data_len: ext.len,
                    reserved_len: ext.len,
                },
            );
            self.allocated += ext.len;
            self.frontier = self.frontier.max(ext.end());
        }
    }

    fn band_snapshot(&self) -> Vec<(Extent, usize)> {
        self.bands()
    }

    fn take_events(&mut self) -> Vec<AllocEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;
    const SST: u64 = 4 * MB;

    fn alloc() -> DynamicBandAlloc {
        DynamicBandAlloc::new(1024 * MB, SST, SST)
    }

    #[test]
    fn appends_are_contiguous() {
        let mut a = alloc();
        let e1 = a.allocate(12 * MB).unwrap();
        let e2 = a.allocate(8 * MB).unwrap();
        assert_eq!(e1, Extent::new(0, 12 * MB));
        assert_eq!(e2, Extent::new(12 * MB, 8 * MB));
        assert_eq!(a.frontier(), 20 * MB);
        assert_eq!(a.bands().len(), 1);
    }

    #[test]
    fn eq1_insert_requires_guard_headroom() {
        let mut a = alloc();
        let s1 = a.allocate(12 * MB).unwrap();
        let _s2 = a.allocate(8 * MB).unwrap();
        a.free(s1);
        // The 12 MB hole can hold at most 8 MB of data (+4 MB guard).
        let e = a.allocate(9 * MB).unwrap();
        assert_eq!(e.offset, 20 * MB, "9 MB must be appended, not inserted");
        let e = a.allocate(8 * MB).unwrap();
        assert_eq!(e.offset, 0, "8 MB fits the hole per Eq. 1");
    }

    #[test]
    fn split_returns_remainder() {
        let mut a = alloc();
        let s1 = a.allocate(40 * MB).unwrap();
        let _tail = a.allocate(8 * MB).unwrap();
        a.free(s1);
        // Insert 12 MB: uses 12 + 4 guard, leaving 24 MB in the pool.
        let e = a.allocate(12 * MB).unwrap();
        assert_eq!(e.offset, 0);
        assert_eq!(a.free_pool_bytes(), 24 * MB);
        let regions = a.free_regions();
        assert_eq!(regions, vec![Extent::new(16 * MB, 24 * MB)]);
    }

    #[test]
    fn figure7_scenario() {
        // Reproduces the §III-C walkthrough (Fig. 7), guard = 4 MB.
        let mut a = alloc();
        // (1) Three sets appended.
        let set1 = a.allocate(24 * MB).unwrap();
        let set2 = a.allocate(20 * MB).unwrap();
        let set3 = a.allocate(16 * MB).unwrap();
        assert_eq!(set2.offset, 24 * MB);
        // (2) set1 compacts: deleted, the regenerated set1' (28 MB, too
        // large for the 24 MB hole per Eq. 1) is appended.
        a.free(set1);
        let set1p = a.allocate(28 * MB).unwrap();
        assert_eq!(set1p.offset, 60 * MB, "appended at the frontier");
        // (3) set4 (12 MB) inserts into set1's old 24 MB hole: 12 data +
        // 4 guard, 8 MB remainder returned to the free list (split).
        let set4 = a.allocate(12 * MB).unwrap();
        assert_eq!(set4.offset, 0);
        assert_eq!(a.free_regions(), vec![Extent::new(16 * MB, 8 * MB)]);
        // (4) set5 (4 MB) exactly fits the remainder (4 data + 4 guard);
        // only one gap is needed to avoid overlapping set2.
        let set5 = a.allocate(4 * MB).unwrap();
        assert_eq!(set5.offset, 16 * MB);
        assert!(a.free_regions().is_empty());
        // (5) deleting set2 and set3 coalesces their adjacent holes into
        // one larger free region.
        a.free(set3);
        a.free(set2);
        assert_eq!(a.free_regions(), vec![Extent::new(24 * MB, 36 * MB)]);
    }

    #[test]
    fn bands_snapshot_counts_members() {
        let mut a = alloc();
        let s1 = a.allocate(8 * MB).unwrap();
        let _s2 = a.allocate(8 * MB).unwrap();
        let _s3 = a.allocate(8 * MB).unwrap();
        a.free(s1);
        let bands = a.bands();
        assert_eq!(bands.len(), 1);
        assert_eq!(bands[0].0, Extent::new(8 * MB, 16 * MB));
        assert_eq!(bands[0].1, 2);
    }

    #[test]
    fn fragments_below_threshold() {
        let mut a = alloc();
        let s1 = a.allocate(6 * MB).unwrap();
        let _s2 = a.allocate(8 * MB).unwrap();
        a.free(s1);
        // 6 MB hole: too small for anything + guard beyond 2 MB.
        assert_eq!(a.fragments(27 * MB).len(), 1);
        assert_eq!(a.fragments(6 * MB).len(), 0);
    }

    #[test]
    fn out_of_space() {
        let mut a = DynamicBandAlloc::new(10 * MB, SST, SST);
        a.allocate(8 * MB).unwrap();
        let err = a.allocate(4 * MB).unwrap_err();
        assert!(matches!(err, AllocError::OutOfSpace { .. }));
    }

    #[test]
    fn rebuild_restores_live_set() {
        let mut a = alloc();
        let s1 = a.allocate(8 * MB).unwrap();
        let s2 = a.allocate(12 * MB).unwrap();
        let s3 = a.allocate(4 * MB).unwrap();
        a.free(s2);
        // Pretend a crash image knows only s1 and s3 survived.
        a.rebuild(&[s1, s3]);
        assert_eq!(a.allocated_bytes(), 12 * MB);
        assert_eq!(a.frontier(), 24 * MB);
        assert_eq!(a.free_pool_bytes(), 0, "free pool restarts empty");
        // The survivors can be freed without panicking...
        a.free(s1);
        a.free(s3);
        assert_eq!(a.allocated_bytes(), 0);
        // ...and new allocations append past the old frontier.
        let e = a.allocate(4 * MB).unwrap();
        assert!(e.offset == 0 || e.offset >= 20 * MB);
    }

    #[test]
    fn rebuild_empty_resets_frontier() {
        let mut a = alloc();
        a.allocate(8 * MB).unwrap();
        a.rebuild(&[]);
        assert_eq!(a.allocated_bytes(), 0);
        assert_eq!(a.frontier(), 0);
        let e = a.allocate(4 * MB).unwrap();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn lifecycle_events_are_queued_and_drained() {
        let mut a = alloc();
        let s1 = a.allocate(24 * MB).unwrap(); // append
        a.free(s1); // recycle
        let _s2 = a.allocate(8 * MB).unwrap(); // insert into the hole
        let evs = a.take_events();
        let kinds: Vec<ObsEventKind> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ObsEventKind::BandAppend,
                ObsEventKind::BandRecycle,
                ObsEventKind::BandAllocate
            ]
        );
        assert_eq!(evs[0].offset, 0);
        // A frontier append reserves no guard, so its recycle returns
        // exactly the data bytes.
        assert_eq!(evs[1].len, 24 * MB);
        // Draining empties the queue.
        assert!(a.take_events().is_empty());
    }

    #[test]
    fn quarantine_removes_fence_from_free_pool() {
        let mut a = alloc();
        let s1 = a.allocate(24 * MB).unwrap();
        let _s2 = a.allocate(8 * MB).unwrap();
        a.free(s1);
        assert_eq!(a.free_pool_bytes(), 24 * MB);
        // Fence 8 MB in the middle of the hole: the pool splits around it.
        let fenced = a.quarantine(Extent::new(8 * MB, 8 * MB));
        assert_eq!(fenced, 8 * MB);
        assert_eq!(a.quarantined_bytes(), 8 * MB);
        assert_eq!(a.free_pool_bytes(), 16 * MB);
        assert_eq!(
            a.free_regions(),
            vec![Extent::new(0, 8 * MB), Extent::new(16 * MB, 8 * MB)]
        );
        // Re-fencing the same range is a no-op.
        assert_eq!(a.quarantine(Extent::new(8 * MB, 8 * MB)), 0);
        // Allocations never land on the fence.
        let e = a.allocate(4 * MB).unwrap();
        assert!(e.end() <= 8 * MB || e.offset >= 16 * MB);
    }

    #[test]
    fn frontier_append_skips_fenced_region() {
        let mut a = alloc();
        a.allocate(8 * MB).unwrap();
        // Fence a region just past the frontier.
        a.quarantine(Extent::new(10 * MB, 6 * MB));
        let e = a.allocate(4 * MB).unwrap();
        assert_eq!(e.offset, 16 * MB, "append skips the fence");
        assert_eq!(a.frontier(), 20 * MB);
    }

    #[test]
    fn free_of_fenced_allocation_drops_fenced_part() {
        let mut a = alloc();
        let s1 = a.allocate(16 * MB).unwrap();
        let _s2 = a.allocate(8 * MB).unwrap();
        // Fence the middle of the *live* allocation, then free it: only
        // the unfenced parts return to the pool.
        a.quarantine(Extent::new(4 * MB, 4 * MB));
        a.free(s1);
        assert_eq!(a.free_pool_bytes(), 12 * MB);
        assert_eq!(
            a.free_regions(),
            vec![Extent::new(0, 4 * MB), Extent::new(8 * MB, 8 * MB)]
        );
    }

    #[test]
    fn quarantine_queues_band_quarantine_events() {
        let mut a = alloc();
        a.allocate(8 * MB).unwrap();
        a.take_events();
        a.quarantine(Extent::new(32 * MB, 4 * MB));
        let evs = a.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, ObsEventKind::BandQuarantine);
        assert_eq!(evs[0].offset, 32 * MB);
        assert_eq!(evs[0].len, 4 * MB);
    }

    #[test]
    fn rebuild_clears_fences() {
        let mut a = alloc();
        let s1 = a.allocate(8 * MB).unwrap();
        a.quarantine(Extent::new(16 * MB, 4 * MB));
        a.rebuild(&[s1]);
        assert_eq!(a.quarantined_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "free of unknown extent")]
    fn double_free_panics() {
        let mut a = alloc();
        let e = a.allocate(8 * MB).unwrap();
        a.free(e);
        a.free(e);
    }
}
