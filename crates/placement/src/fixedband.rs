//! Fixed-band allocation: one allocation per dedicated SMR band.
//!
//! This is the placement SMRDB \[24\] uses — SSTables are enlarged to the
//! band size and each is "assigned to a dedicated band", so writing a
//! table streams a whole band from its start and never triggers a
//! read-modify-write. The cost is internal waste whenever the file is
//! smaller than the band.

use crate::{AllocError, Allocator};
use smr_sim::{AllocEvent, Extent, ObsEventKind};
use std::collections::{BTreeMap, BTreeSet};

/// Dedicated-band allocator.
#[derive(Debug)]
pub struct FixedBandAlloc {
    band_size: u64,
    /// Band indices currently free, lowest first.
    free_bands: BTreeSet<u64>,
    /// Live allocations: band start -> data length.
    live: BTreeMap<u64, u64>,
    allocated: u64,
    high_water: u64,
    /// Band-lifecycle events queued for [`Allocator::take_events`].
    events: Vec<AllocEvent>,
}

impl FixedBandAlloc {
    /// Creates an allocator over `capacity` bytes divided into bands of
    /// `band_size` bytes.
    pub fn new(capacity: u64, band_size: u64) -> Self {
        assert!(band_size > 0 && capacity >= band_size);
        let bands = capacity / band_size;
        FixedBandAlloc {
            band_size,
            free_bands: (0..bands).collect(),
            live: BTreeMap::new(),
            allocated: 0,
            high_water: 0,
            events: Vec::new(),
        }
    }

    /// Band size in bytes.
    pub fn band_size(&self) -> u64 {
        self.band_size
    }

    /// Number of free bands remaining.
    pub fn free_band_count(&self) -> usize {
        self.free_bands.len()
    }

    /// Bytes wasted to internal fragmentation (band tails past the data).
    pub fn internal_waste(&self) -> u64 {
        self.live.values().map(|&len| self.band_size - len).sum()
    }
}

impl Allocator for FixedBandAlloc {
    fn allocate(&mut self, size: u64) -> Result<Extent, AllocError> {
        if size == 0 {
            return Err(AllocError::Unsupported("zero-size allocation".into()));
        }
        if size > self.band_size {
            return Err(AllocError::Unsupported(format!(
                "allocation of {size} bytes exceeds the band size {}",
                self.band_size
            )));
        }
        let band = *self
            .free_bands
            .iter()
            .next()
            .ok_or(AllocError::OutOfSpace {
                requested: size,
                free: 0,
            })?;
        self.free_bands.remove(&band);
        let base = band * self.band_size;
        // A band past the old high-water mark is a fresh append; a band
        // below it is a recycled one being reused.
        let kind = if base >= self.high_water {
            ObsEventKind::BandAppend
        } else {
            ObsEventKind::BandAllocate
        };
        self.live.insert(base, size);
        self.allocated += size;
        self.high_water = self.high_water.max(base + self.band_size);
        self.events.push(AllocEvent {
            kind,
            offset: base,
            len: size,
        });
        Ok(Extent::new(base, size))
    }

    fn free(&mut self, ext: Extent) {
        let base = ext.offset;
        let len = self
            .live
            .remove(&base)
            .unwrap_or_else(|| panic!("free of unknown extent {ext:?}"));
        assert_eq!(len, ext.len, "free with wrong length for {ext:?}");
        self.allocated -= len;
        self.free_bands.insert(base / self.band_size);
        self.events.push(AllocEvent {
            kind: ObsEventKind::BandRecycle,
            offset: base,
            len: self.band_size,
        });
    }

    fn high_water(&self) -> u64 {
        self.high_water
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    fn free_regions(&self) -> Vec<Extent> {
        self.free_bands
            .iter()
            .map(|&b| Extent::new(b * self.band_size, self.band_size))
            .collect()
    }

    fn name(&self) -> &'static str {
        "fixed-band"
    }

    fn rebuild(&mut self, live: &[Extent]) {
        // Every live allocation occupies exactly one band, so the band
        // count is recoverable from the current population.
        let bands = (self.free_bands.len() + self.live.len()) as u64;
        self.free_bands = (0..bands).collect();
        self.live.clear();
        self.allocated = 0;
        self.high_water = 0;
        self.events.clear();
        for ext in live {
            let band = ext.offset / self.band_size;
            assert_eq!(
                ext.offset % self.band_size,
                0,
                "live extent {ext:?} is not band-aligned"
            );
            self.free_bands.remove(&band);
            self.live.insert(ext.offset, ext.len);
            self.allocated += ext.len;
            self.high_water = self.high_water.max(ext.offset + self.band_size);
        }
    }

    fn take_events(&mut self) -> Vec<AllocEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn allocations_are_band_aligned() {
        let mut a = FixedBandAlloc::new(400 * MB, 40 * MB);
        let e1 = a.allocate(40 * MB).unwrap();
        let e2 = a.allocate(40 * MB).unwrap();
        assert_eq!(e1.offset % (40 * MB), 0);
        assert_eq!(e2.offset % (40 * MB), 0);
        assert_ne!(e1.offset, e2.offset);
    }

    #[test]
    fn small_file_wastes_band_tail() {
        let mut a = FixedBandAlloc::new(400 * MB, 40 * MB);
        let e1 = a.allocate(10 * MB).unwrap();
        let e2 = a.allocate(10 * MB).unwrap();
        // The second file does not share the first file's band.
        assert_eq!(e2.offset - e1.offset, 40 * MB);
        assert_eq!(a.internal_waste(), 60 * MB);
    }

    #[test]
    fn freed_bands_are_reused_lowest_first() {
        let mut a = FixedBandAlloc::new(400 * MB, 40 * MB);
        let e1 = a.allocate(40 * MB).unwrap();
        let _e2 = a.allocate(40 * MB).unwrap();
        a.free(e1);
        let e3 = a.allocate(40 * MB).unwrap();
        assert_eq!(e3.offset, e1.offset);
    }

    #[test]
    fn capacity_exhaustion() {
        let mut a = FixedBandAlloc::new(80 * MB, 40 * MB);
        a.allocate(MB).unwrap();
        a.allocate(MB).unwrap();
        assert!(matches!(a.allocate(MB), Err(AllocError::OutOfSpace { .. })));
    }

    #[test]
    fn rebuild_restores_live_set() {
        let mut a = FixedBandAlloc::new(400 * MB, 40 * MB);
        let e1 = a.allocate(10 * MB).unwrap();
        let e2 = a.allocate(40 * MB).unwrap();
        let e3 = a.allocate(20 * MB).unwrap();
        a.free(e2);
        a.rebuild(&[e1, e3]);
        assert_eq!(a.allocated_bytes(), 30 * MB);
        assert_eq!(a.free_band_count(), 8);
        assert_eq!(a.internal_waste(), 50 * MB);
        // e2's band is free again: the next full-band allocation fits.
        let e = a.allocate(40 * MB).unwrap();
        assert_eq!(e.offset, e2.offset);
        a.free(e1);
        a.free(e3);
        assert_eq!(a.allocated_bytes(), 40 * MB);
    }

    #[test]
    fn oversized_rejected() {
        let mut a = FixedBandAlloc::new(80 * MB, 40 * MB);
        assert!(matches!(
            a.allocate(41 * MB),
            Err(AllocError::Unsupported(_))
        ));
    }
}
