//! Ext4-like block-group allocation (§II-C1 of the paper).
//!
//! Ext4 "tries to put all blocks of a file in the same block group, but
//! different files — even semantically related — can be placed
//! separately". The paper's Fig. 2 measures the resulting behaviour with
//! Ext4Magic: SSTables of one compaction land scattered across the whole
//! used span, and a 10 GB database occupies a ~10 GB span. The model
//! reproduces that placement:
//!
//! * each new file goes to the block group with the most free space
//!   (spreading, as group-descriptor scans under Orlov allocation end up
//!   doing for a churning directory), so consecutive SSTables land in
//!   *different* groups;
//! * inside a group, allocation is first-fit, so holes reclaimed from
//!   deleted SSTables are reused — which on a fixed-band SMR drive means
//!   writing into the middle of written bands, provoking the
//!   read-modify-writes behind the paper's AWA (§II-C2).
//!
//! Scattered *writes* stay affordable on a conventional drive thanks to
//! its write cache; scattered *reads* pay full mechanical latency —
//! exactly the asymmetry the paper's micro-benchmarks exhibit.

use crate::{AllocError, Allocator};
use smr_sim::{AllocEvent, Extent, ExtentSet, ObsEventKind};

#[derive(Debug)]
struct BlockGroup {
    base: u64,
    size: u64,
    free: ExtentSet,
}

impl BlockGroup {
    fn free_bytes(&self) -> u64 {
        self.free.covered_bytes()
    }

    /// First-fit within the group.
    fn allocate(&mut self, size: u64) -> Option<Extent> {
        let hole = self.free.iter().find(|e| e.len >= size)?;
        let ext = Extent::new(hole.offset, size);
        self.free.remove(ext);
        Some(ext)
    }
}

/// The Ext4-like allocator.
#[derive(Debug)]
pub struct Ext4Sim {
    groups: Vec<BlockGroup>,
    group_size: u64,
    allocated: u64,
    high_water: u64,
    /// Lifecycle events queued for [`Allocator::take_events`].
    events: Vec<AllocEvent>,
}

impl Ext4Sim {
    /// Creates an allocator over `capacity` bytes divided into block
    /// groups of `group_size` bytes (Ext4 default: 128 MiB).
    pub fn new(capacity: u64, group_size: u64) -> Self {
        assert!(group_size > 0 && capacity >= group_size);
        let mut groups = Vec::new();
        let mut base = 0;
        while base + group_size <= capacity {
            let mut free = ExtentSet::new();
            free.insert(Extent::new(base, group_size));
            groups.push(BlockGroup {
                base,
                size: group_size,
                free,
            });
            base += group_size;
        }
        Ext4Sim {
            groups,
            group_size,
            allocated: 0,
            high_water: 0,
            events: Vec::new(),
        }
    }

    /// Number of block groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Block-group size in bytes.
    pub fn group_size(&self) -> u64 {
        self.group_size
    }

    fn group_of(&self, offset: u64) -> usize {
        (offset / self.group_size) as usize
    }
}

impl Allocator for Ext4Sim {
    fn allocate(&mut self, size: u64) -> Result<Extent, AllocError> {
        if size == 0 {
            return Err(AllocError::Unsupported("zero-size allocation".into()));
        }
        if size > self.group_size {
            return Err(AllocError::Unsupported(format!(
                "file of {size} bytes exceeds the block-group size {}",
                self.group_size
            )));
        }
        // Spread: try groups in descending free-space order (ties ->
        // lowest address). The emptiest group might still fail for `size`
        // due to fragmentation, so fall through the rest.
        let mut order: Vec<usize> = (0..self.groups.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.groups[i].free_bytes()));
        for i in order {
            if let Some(ext) = self.groups[i].allocate(size) {
                self.allocated += size;
                // Below the old high-water mark the extent reuses a hole
                // in already-written space; beyond it, fresh space.
                let kind = if ext.end() <= self.high_water {
                    ObsEventKind::BandAllocate
                } else {
                    ObsEventKind::BandAppend
                };
                self.high_water = self.high_water.max(ext.end());
                self.events.push(AllocEvent {
                    kind,
                    offset: ext.offset,
                    len: ext.len,
                });
                return Ok(ext);
            }
        }
        Err(AllocError::OutOfSpace {
            requested: size,
            free: self.groups.iter().map(|g| g.free_bytes()).sum(),
        })
    }

    fn free(&mut self, ext: Extent) {
        let gi = self.group_of(ext.offset);
        let group = &mut self.groups[gi];
        assert!(
            ext.end() <= group.base + group.size,
            "extent {ext:?} crosses group boundary"
        );
        debug_assert!(!group.free.overlaps(ext), "double free of {ext:?}");
        group.free.insert(ext);
        self.allocated -= ext.len;
        self.events.push(AllocEvent {
            kind: ObsEventKind::BandRecycle,
            offset: ext.offset,
            len: ext.len,
        });
    }

    fn high_water(&self) -> u64 {
        self.high_water
    }

    fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    fn free_regions(&self) -> Vec<Extent> {
        let mut out = Vec::new();
        for g in &self.groups {
            out.extend(g.free.iter());
        }
        out
    }

    fn name(&self) -> &'static str {
        "ext4-sim"
    }

    fn rebuild(&mut self, live: &[Extent]) {
        self.allocated = 0;
        self.high_water = 0;
        self.events.clear();
        for g in &mut self.groups {
            let mut free = ExtentSet::new();
            free.insert(Extent::new(g.base, g.size));
            g.free = free;
        }
        for &ext in live {
            let gi = self.group_of(ext.offset);
            let group = &mut self.groups[gi];
            assert!(
                ext.end() <= group.base + group.size,
                "live extent {ext:?} crosses group boundary"
            );
            group.free.remove(ext);
            self.allocated += ext.len;
            self.high_water = self.high_water.max(ext.end());
        }
    }

    fn take_events(&mut self) -> Vec<AllocEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn consecutive_files_spread_across_groups() {
        let mut a = Ext4Sim::new(1024 * MB, 128 * MB);
        let e1 = a.allocate(4 * MB).unwrap();
        let e2 = a.allocate(4 * MB).unwrap();
        let e3 = a.allocate(4 * MB).unwrap();
        let g = |e: Extent| e.offset / (128 * MB);
        assert_ne!(g(e1), g(e2));
        assert_ne!(g(e2), g(e3));
        assert_ne!(g(e1), g(e3));
    }

    #[test]
    fn holes_are_reused_first_fit() {
        let mut a = Ext4Sim::new(256 * MB, 128 * MB);
        // Fill both groups substantially.
        let mut files = Vec::new();
        for _ in 0..50 {
            files.push(a.allocate(4 * MB).unwrap());
        }
        let victim = files[10];
        a.free(victim);
        // The freed group now has the most free space; the hole is reused.
        let e = a.allocate(4 * MB).unwrap();
        assert_eq!(e, victim);
    }

    #[test]
    fn database_spans_roughly_its_size_in_groups() {
        // Fig. 2: a database of N bytes ends up spanning ~N of disk.
        let mut a = Ext4Sim::new(4096 * MB, 64 * MB);
        for _ in 0..256 {
            a.allocate(4 * MB).unwrap(); // 1 GiB total
        }
        // Spreading touches many groups: the span is much larger than
        // any single group, on the order of the whole disk.
        assert!(a.high_water() > 1024 * MB);
    }

    #[test]
    fn rejects_oversized_files() {
        let mut a = Ext4Sim::new(256 * MB, 128 * MB);
        assert!(matches!(
            a.allocate(200 * MB),
            Err(AllocError::Unsupported(_))
        ));
    }

    #[test]
    fn out_of_space_when_full() {
        let mut a = Ext4Sim::new(16 * MB, 8 * MB);
        a.allocate(8 * MB).unwrap();
        a.allocate(8 * MB).unwrap();
        assert!(matches!(a.allocate(MB), Err(AllocError::OutOfSpace { .. })));
    }

    #[test]
    fn rebuild_restores_live_set() {
        let mut a = Ext4Sim::new(256 * MB, 128 * MB);
        let e1 = a.allocate(4 * MB).unwrap();
        let e2 = a.allocate(8 * MB).unwrap();
        let e3 = a.allocate(16 * MB).unwrap();
        a.rebuild(&[e1, e3]);
        assert_eq!(a.allocated_bytes(), 20 * MB);
        // e2's bytes are free again and must not overlap new allocations
        // with the survivors.
        let total_free: u64 = a.free_regions().iter().map(|e| e.len).sum();
        assert_eq!(total_free, 256 * MB - 20 * MB);
        assert!(a.free_regions().iter().any(|f| f.offset == e2.offset));
        a.free(e1);
        a.free(e3);
        assert_eq!(a.allocated_bytes(), 0);
    }

    #[test]
    fn accounting() {
        let mut a = Ext4Sim::new(256 * MB, 128 * MB);
        let e = a.allocate(4 * MB).unwrap();
        assert_eq!(a.allocated_bytes(), 4 * MB);
        assert!(a.high_water() >= 4 * MB);
        a.free(e);
        assert_eq!(a.allocated_bytes(), 0);
    }
}
