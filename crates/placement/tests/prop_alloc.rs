//! Randomized tests for the allocators, including the central safety
//! claim of the paper's dynamic band management: driving a raw HM-SMR
//! disk through `DynamicBandAlloc` never violates the shingle contract —
//! "subsequent valid data will not be overlapped and no auxiliary write
//! amplification is caused".
//!
//! Seeded xorshift generation instead of a property-testing framework:
//! the build must work without network access, and fixed seeds make
//! every failure directly reproducible.

use placement::{Allocator, DynamicBandAlloc, Ext4Sim, FixedBandAlloc};
use smr_sim::{Disk, Extent, IoKind, Layout, TimeModel};

const MB: u64 = 1 << 20;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// Allocate a region of (units * unit) bytes.
    Alloc(u64),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
}

fn random_ops(rng: &mut Rng) -> Vec<Op> {
    let count = 1 + rng.below(79) as usize;
    (0..count)
        .map(|_| {
            if rng.below(2) == 0 {
                Op::Alloc(1 + rng.below(23))
            } else {
                Op::Free(rng.below(64) as usize)
            }
        })
        .collect()
}

/// Drives an allocator with a random op sequence; returns live extents.
fn drive(alloc: &mut dyn Allocator, ops: &[Op], unit: u64) -> Vec<Extent> {
    let mut live: Vec<Extent> = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(units) => {
                if let Ok(ext) = alloc.allocate(units * unit) {
                    live.push(ext);
                }
            }
            Op::Free(i) => {
                if !live.is_empty() {
                    let ext = live.remove(i % live.len());
                    alloc.free(ext);
                }
            }
        }
    }
    live
}

/// Dynamic band management never faults the raw SMR disk: every write
/// into a freshly allocated region (and the Eq. 1 guard policy) keeps
/// valid data intact, and data reads back exactly.
#[test]
fn dynamic_band_never_faults_raw_smr() {
    let mut rng = Rng::new(0xA110C);
    for _case in 0..48 {
        let ops = random_ops(&mut rng);
        let sst = 4 * MB;
        let cap = 4096 * MB;
        let mut alloc = DynamicBandAlloc::new(cap, sst, sst);
        let mut disk = Disk::new(
            cap,
            Layout::RawHmSmr { guard_bytes: sst },
            TimeModel::smr_st5000as0011(cap),
        );
        let mut live: Vec<(Extent, u8)> = Vec::new();
        let mut stamp = 0u8;
        for op in &ops {
            match op {
                Op::Alloc(units) => {
                    let size = units * MB / 4;
                    let Ok(ext) = alloc.allocate(size) else {
                        continue;
                    };
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; ext.len as usize];
                    // The allocator's contract: this write must be legal.
                    disk.write(ext, &data, IoKind::Raw).unwrap();
                    live.push((ext, stamp));
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (ext, _) = live.remove(i % live.len());
                        disk.invalidate(ext);
                        alloc.free(ext);
                    }
                }
            }
        }
        // All live regions still read back with their fill byte.
        for (ext, fill) in live {
            let back = disk.read(ext, IoKind::Raw).unwrap();
            assert!(back.iter().all(|&b| b == fill), "ops {ops:?}");
        }
        // Raw layout means zero auxiliary write amplification.
        let c = disk.stats().kind(IoKind::Raw);
        assert_eq!(c.device_written, c.logical_written, "ops {ops:?}");
    }
}

/// No allocator ever hands out overlapping live extents, and byte
/// accounting stays exact.
#[test]
fn allocators_never_overlap() {
    let mut rng = Rng::new(0x0E4A);
    for _case in 0..48 {
        let ops = random_ops(&mut rng);
        let unit = MB;
        let cap = 4096 * MB;
        let mut allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(DynamicBandAlloc::new(cap, 4 * MB, 4 * MB)),
            Box::new(Ext4Sim::new(cap, 128 * MB)),
            Box::new(FixedBandAlloc::new(cap, 40 * MB)),
        ];
        for alloc in &mut allocators {
            let live = drive(alloc.as_mut(), &ops, unit);
            let mut sorted = live.clone();
            sorted.sort();
            for pair in sorted.windows(2) {
                assert!(
                    pair[0].end() <= pair[1].offset,
                    "{} produced overlapping extents {:?} {:?} for ops {ops:?}",
                    alloc.name(),
                    pair[0],
                    pair[1]
                );
            }
            let total: u64 = live.iter().map(|e| e.len).sum();
            assert_eq!(
                alloc.allocated_bytes(),
                total,
                "{} accounting",
                alloc.name()
            );
            for e in &live {
                assert!(e.end() <= alloc.high_water());
            }
        }
    }
}

/// Dynamic-band free-pool conservation: allocated + pool + untouched
/// residual space never exceeds capacity, and freeing everything
/// returns every recycled byte to the pool.
#[test]
fn dynamic_band_conservation() {
    let mut rng = Rng::new(0xC0 << 8);
    for _case in 0..48 {
        let ops = random_ops(&mut rng);
        let sst = 4 * MB;
        let cap = 4096 * MB;
        let mut alloc = DynamicBandAlloc::new(cap, sst, sst);
        let live = drive(&mut alloc, &ops, MB);
        assert!(alloc.frontier() <= cap);
        // Everything inside the banded region is either live data,
        // reserved guard bytes, or pool free space.
        assert!(alloc.allocated_bytes() + alloc.free_pool_bytes() <= alloc.frontier());
        let frontier = alloc.frontier();
        for e in live {
            alloc.free(e);
        }
        assert_eq!(alloc.allocated_bytes(), 0);
        // With nothing live, the whole banded region is one coalesced
        // free run (guards were recycled with their owners).
        if frontier > 0 {
            let regions = alloc.free_regions();
            assert_eq!(regions.len(), 1, "ops {ops:?}");
            assert_eq!(regions[0], Extent::new(0, frontier));
        }
    }
}
