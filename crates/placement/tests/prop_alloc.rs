//! Property tests for the allocators, including the central safety claim
//! of the paper's dynamic band management: driving a raw HM-SMR disk
//! through `DynamicBandAlloc` never violates the shingle contract —
//! "subsequent valid data will not be overlapped and no auxiliary write
//! amplification is caused".

use placement::{Allocator, DynamicBandAlloc, Ext4Sim, FixedBandAlloc};
use proptest::prelude::*;
use smr_sim::{Disk, Extent, IoKind, Layout, TimeModel};

const MB: u64 = 1 << 20;

#[derive(Clone, Debug)]
enum Op {
    /// Allocate a region of (units * quarter-SSTable) bytes.
    Alloc(u64),
    /// Free the i-th live allocation (mod live count).
    Free(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1..24u64).prop_map(Op::Alloc),
            (0..64usize).prop_map(Op::Free),
        ],
        1..80,
    )
}

/// Drives an allocator with a random op sequence; returns live extents.
fn drive(alloc: &mut dyn Allocator, ops: &[Op], unit: u64) -> Vec<Extent> {
    let mut live: Vec<Extent> = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(units) => {
                if let Ok(ext) = alloc.allocate(units * unit) {
                    live.push(ext);
                }
            }
            Op::Free(i) => {
                if !live.is_empty() {
                    let ext = live.remove(i % live.len());
                    alloc.free(ext);
                }
            }
        }
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dynamic band management never faults the raw SMR disk: every write
    /// into a freshly allocated region (and the Eq. 1 guard policy) keeps
    /// valid data intact, and data reads back exactly.
    #[test]
    fn dynamic_band_never_faults_raw_smr(ops in ops()) {
        let sst = 4 * MB;
        let cap = 4096 * MB;
        let mut alloc = DynamicBandAlloc::new(cap, sst, sst);
        let mut disk = Disk::new(cap, Layout::RawHmSmr { guard_bytes: sst }, TimeModel::smr_st5000as0011(cap));
        let mut live: Vec<(Extent, u8)> = Vec::new();
        let mut stamp = 0u8;
        for op in &ops {
            match op {
                Op::Alloc(units) => {
                    let size = units * MB / 4;
                    let Ok(ext) = alloc.allocate(size) else { continue };
                    stamp = stamp.wrapping_add(1);
                    let data = vec![stamp; ext.len as usize];
                    // The allocator's contract: this write must be legal.
                    disk.write(ext, &data, IoKind::Raw).unwrap();
                    live.push((ext, stamp));
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let (ext, _) = live.remove(i % live.len());
                        disk.invalidate(ext);
                        alloc.free(ext);
                    }
                }
            }
        }
        // All live regions still read back with their fill byte.
        for (ext, fill) in live {
            let back = disk.read(ext, IoKind::Raw).unwrap();
            prop_assert!(back.iter().all(|&b| b == fill));
        }
        // Raw layout means zero auxiliary write amplification.
        let c = disk.stats().kind(IoKind::Raw);
        prop_assert_eq!(c.device_written, c.logical_written);
    }

    /// No allocator ever hands out overlapping live extents, and byte
    /// accounting stays exact.
    #[test]
    fn allocators_never_overlap(ops in ops()) {
        let unit = MB;
        let cap = 4096 * MB;
        let mut allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(DynamicBandAlloc::new(cap, 4 * MB, 4 * MB)),
            Box::new(Ext4Sim::new(cap, 128 * MB)),
            Box::new(FixedBandAlloc::new(cap, 40 * MB)),
        ];
        for alloc in &mut allocators {
            let live = drive(alloc.as_mut(), &ops, unit);
            let mut sorted = live.clone();
            sorted.sort();
            for pair in sorted.windows(2) {
                prop_assert!(
                    pair[0].end() <= pair[1].offset,
                    "{} produced overlapping extents {:?} {:?}",
                    alloc.name(), pair[0], pair[1]
                );
            }
            let total: u64 = live.iter().map(|e| e.len).sum();
            prop_assert_eq!(alloc.allocated_bytes(), total, "{} accounting", alloc.name());
            for e in &live {
                prop_assert!(e.end() <= alloc.high_water());
            }
        }
    }

    /// Dynamic-band free-pool conservation: allocated + pool + untouched
    /// residual space never exceeds capacity, and freeing everything
    /// returns every recycled byte to the pool.
    #[test]
    fn dynamic_band_conservation(ops in ops()) {
        let sst = 4 * MB;
        let cap = 4096 * MB;
        let mut alloc = DynamicBandAlloc::new(cap, sst, sst);
        let live = drive(&mut alloc, &ops, MB);
        prop_assert!(alloc.frontier() <= cap);
        // Everything inside the banded region is either live data,
        // reserved guard bytes, or pool free space.
        prop_assert!(alloc.allocated_bytes() + alloc.free_pool_bytes() <= alloc.frontier());
        let frontier = alloc.frontier();
        for e in live {
            alloc.free(e);
        }
        prop_assert_eq!(alloc.allocated_bytes(), 0);
        // With nothing live, the whole banded region is one coalesced
        // free run (guards were recycled with their owners).
        if frontier > 0 {
            let regions = alloc.free_regions();
            prop_assert_eq!(regions.len(), 1);
            prop_assert_eq!(regions[0], Extent::new(0, frontier));
        }
    }
}
