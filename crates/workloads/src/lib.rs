//! # workloads — benchmark drivers for the SEALDB reproduction
//!
//! The paper evaluates with (a) the micro-benchmarks distributed with
//! LevelDB (`fillseq` / `fillrandom` / `readseq` / `readrandom`, §IV-A)
//! and (b) the YCSB core workloads A–F (§IV-A, Fig. 9). This crate
//! reproduces both against any [`sealdb::Store`], with throughput
//! computed from the *simulated* disk clock so results are deterministic.

/// Open-loop arrival processes for latency-under-load sweeps.
pub mod arrivals;
/// Key-choice distributions: uniform, zipfian, latest.
pub mod distributions;
/// Deterministic operation-stream generation.
pub mod generator;
/// LevelDB-style micro-benchmark workloads.
pub mod micro;
/// YCSB core workloads A-F.
pub mod ycsb;

pub use arrivals::{ArrivalProcess, InterArrival};
pub use distributions::{
    Distribution, Latest, ScatterPermutation, ScrambledZipfian, Uniform, Zipfian,
};
pub use generator::RecordGenerator;
pub use micro::{fill_random, fill_seq, permute, read_random, read_seq, MicroResult};
pub use ycsb::{run as run_ycsb, Dist, Mix, WorkloadSpec, YcsbResult};
