//! The YCSB core workloads (Cooper et al., SoCC'10) as used in the
//! paper's Fig. 9:
//!
//! * **A** — 50% reads, 50% updates (zipfian)
//! * **B** — 95% reads, 5% updates (zipfian)
//! * **C** — 100% reads (zipfian)
//! * **D** — 95% reads, 5% inserts; reads skew to the latest keys
//! * **E** — 95% range scans, 5% inserts (zipfian start, uniform length)
//! * **F** — 50% reads, 50% read-modify-writes (zipfian)

use crate::distributions::{Distribution, Latest, ScrambledZipfian, Uniform};
use crate::generator::RecordGenerator;
use lsm_core::util::rng::XorShift64;
use lsm_core::Result;
use sealdb::Store;

/// Operation mix of one workload (proportions must sum to 1).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Point-read proportion.
    pub read: f64,
    /// Update (overwrite existing key) proportion.
    pub update: f64,
    /// Insert (new key) proportion.
    pub insert: f64,
    /// Range-scan proportion.
    pub scan: f64,
    /// Read-modify-write proportion.
    pub rmw: f64,
}

/// Request-distribution choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Uniform over existing keys.
    Uniform,
    /// Scrambled zipfian (YCSB default).
    Zipfian,
    /// Skewed towards recently inserted keys.
    Latest,
}

/// One YCSB workload definition.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Workload tag ("A".."F").
    pub name: &'static str,
    /// Operation mix.
    pub mix: Mix,
    /// Key-choice distribution.
    pub dist: Dist,
    /// Maximum scan length (workload E; YCSB default 100).
    pub max_scan_len: usize,
    /// Target offered load per client in ops per simulated second for
    /// the serving front-end's open-loop mode; 0.0 (the default) means
    /// unpaced — `run` issues back-to-back and the front-end falls back
    /// to closed-loop traffic.
    pub ops_per_sec: f64,
}

impl WorkloadSpec {
    /// Workload A: update heavy (50/50).
    pub fn a() -> Self {
        WorkloadSpec {
            name: "A",
            mix: Mix {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// Workload B: read mostly (95/5).
    pub fn b() -> Self {
        WorkloadSpec {
            name: "B",
            mix: Mix {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// Workload C: read only.
    pub fn c() -> Self {
        WorkloadSpec {
            name: "C",
            mix: Mix {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// Workload D: read latest (95% reads, 5% inserts).
    pub fn d() -> Self {
        WorkloadSpec {
            name: "D",
            mix: Mix {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Latest,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// Workload E: short ranges (95% scans, 5% inserts).
    pub fn e() -> Self {
        WorkloadSpec {
            name: "E",
            mix: Mix {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// Workload F: read-modify-write (50/50).
    pub fn f() -> Self {
        WorkloadSpec {
            name: "F",
            mix: Mix {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// The serving-sweep mix: 50% point reads, 50% inserts (zipfian
    /// reads over a keyspace the inserts keep growing). Reads make
    /// latency visible while the ingest stream exercises the write path
    /// — group commit, flushes, L0 backpressure — and keeps level 0
    /// populated, so no store serves reads from an artificially
    /// quiesced tree. Zipfian *updates* are deliberately absent: a
    /// band-sized memtable absorbs a hot update stream wholesale, which
    /// measures buffer capacity rather than serving capacity.
    pub fn serve_mix() -> Self {
        WorkloadSpec {
            name: "S",
            mix: Mix {
                read: 0.5,
                update: 0.0,
                insert: 0.5,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Zipfian,
            max_scan_len: 100,
            ops_per_sec: 0.0,
        }
    }

    /// The same workload paced at `ops_per_sec` per client (selects the
    /// front-end's open-loop Poisson arrivals).
    pub fn with_rate(mut self, ops_per_sec: f64) -> Self {
        self.ops_per_sec = ops_per_sec;
        self
    }

    /// The six workloads of the paper's Fig. 9, in order.
    pub fn all() -> Vec<WorkloadSpec> {
        vec![
            Self::a(),
            Self::b(),
            Self::c(),
            Self::d(),
            Self::e(),
            Self::f(),
        ]
    }
}

/// Result of one YCSB run.
#[derive(Clone, Copy, Debug)]
pub struct YcsbResult {
    /// Operations executed.
    pub ops: u64,
    /// Simulated duration, ns.
    pub sim_ns: u64,
    /// Reads that found their key.
    pub hits: u64,
    /// Reads that missed (should stay 0 in our closed keyspace).
    pub misses: u64,
}

impl YcsbResult {
    /// Operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.sim_ns as f64
        }
    }
}

/// Executes `op_count` operations of `spec` against a store preloaded
/// with `record_count` records.
pub fn run(
    store: &mut Store,
    gen: &RecordGenerator,
    spec: &WorkloadSpec,
    record_count: u64,
    op_count: u64,
    seed: u64,
) -> Result<YcsbResult> {
    let mut rng = XorShift64::new(seed);
    let mut key_rng = XorShift64::new(seed ^ 0xDEADBEEF);
    let mut n_now = record_count;
    let mut dist: Box<dyn Distribution> = match spec.dist {
        Dist::Uniform => Box::new(Uniform),
        Dist::Zipfian => Box::new(ScrambledZipfian::new(record_count)),
        Dist::Latest => Box::new(Latest::new(record_count * 2)),
    };
    let mut hits = 0;
    let mut misses = 0;
    let start = store.clock_ns();
    for _ in 0..op_count {
        let r = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let m = &spec.mix;
        if r < m.read {
            let k = gen.key(dist.next(&mut key_rng, n_now));
            if store.get(&k)?.is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
        } else if r < m.read + m.update {
            let i = dist.next(&mut key_rng, n_now);
            store.put(&gen.key(i), &gen.value(i))?;
        } else if r < m.read + m.update + m.insert {
            let i = n_now;
            n_now += 1;
            store.put(&gen.key(i), &gen.value(i))?;
        } else if r < m.read + m.update + m.insert + m.scan {
            let start_i = dist.next(&mut key_rng, n_now);
            let len = 1 + (key_rng.next_below(spec.max_scan_len as u64) as usize);
            store.scan(&gen.key(start_i), len)?;
        } else {
            // Read-modify-write.
            let i = dist.next(&mut key_rng, n_now);
            let k = gen.key(i);
            if store.get(&k)?.is_some() {
                hits += 1;
            } else {
                misses += 1;
            }
            store.put(&k, &gen.value(i))?;
        }
    }
    Ok(YcsbResult {
        ops: op_count,
        sim_ns: store.clock_ns() - start,
        hits,
        misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::fill_random;
    use sealdb::{StoreConfig, StoreKind};

    #[test]
    fn mixes_sum_to_one() {
        for w in WorkloadSpec::all() {
            let m = w.mix;
            let sum = m.read + m.update + m.insert + m.scan + m.rmw;
            assert!((sum - 1.0).abs() < 1e-9, "workload {}", w.name);
        }
    }

    #[test]
    fn paper_mix_definitions() {
        assert_eq!(WorkloadSpec::a().mix.read, 0.5);
        assert_eq!(WorkloadSpec::b().mix.read, 0.95);
        assert_eq!(WorkloadSpec::c().mix.read, 1.0);
        assert_eq!(WorkloadSpec::d().dist, Dist::Latest);
        assert_eq!(WorkloadSpec::e().mix.scan, 0.95);
        assert_eq!(WorkloadSpec::f().mix.rmw, 0.5);
    }

    #[test]
    fn update_heavy_workloads_run_against_a_vlog_store() {
        // A and F drive the key-value-separation benchmark: their
        // updates overwrite values living in the value log, so each run
        // exercises vlog append, pointer rewrite, and pointer-chase
        // reads end to end.
        let gen = RecordGenerator::new(16, 600, 1);
        let n = 600;
        for spec in [WorkloadSpec::a(), WorkloadSpec::f()] {
            let params = sealdb::VlogParams {
                segment_bytes: 16 << 10,
                value_threshold: 256,
                ..Default::default()
            };
            let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 1 << 30)
                .with_vlog(params)
                .build()
                .unwrap();
            fill_random(&mut store, &gen, n, 3).unwrap();
            let res = run(&mut store, &gen, &spec, n, 500, 11).unwrap();
            assert_eq!(res.ops, 500);
            assert_eq!(res.misses, 0, "workload {} missed reads", spec.name);
        }
    }

    #[test]
    fn all_workloads_execute_without_misses() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 1500;
        for spec in WorkloadSpec::all() {
            let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 1 << 30)
                .build()
                .unwrap();
            fill_random(&mut store, &gen, n, 3).unwrap();
            let res = run(&mut store, &gen, &spec, n, 300, 17).unwrap();
            assert_eq!(res.ops, 300);
            assert!(res.sim_ns > 0);
            assert_eq!(res.misses, 0, "workload {} missed reads", spec.name);
        }
    }
}

#[cfg(test)]
mod dist_plumbing_tests {
    use super::*;
    use crate::micro::fill_random;
    use sealdb::{StoreConfig, StoreKind};

    #[test]
    fn uniform_distribution_workload_runs() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 800;
        let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 1 << 30)
            .build()
            .unwrap();
        fill_random(&mut store, &gen, n, 3).unwrap();
        let spec = WorkloadSpec {
            name: "uniform-a",
            mix: Mix {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
            },
            dist: Dist::Uniform,
            max_scan_len: 10,
            ops_per_sec: 0.0,
        };
        let r = run(&mut store, &gen, &spec, n, 400, 5).unwrap();
        assert_eq!(r.misses, 0);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn inserts_extend_the_keyspace() {
        let gen = RecordGenerator::new(16, 100, 1);
        let n = 500;
        let mut store = StoreConfig::new(StoreKind::SealDb, 32 << 10, 1 << 30)
            .build()
            .unwrap();
        fill_random(&mut store, &gen, n, 3).unwrap();
        let spec = WorkloadSpec::d(); // 5% inserts
        run(&mut store, &gen, &spec, n, 1000, 7).unwrap();
        // Some key beyond the initial load must now exist.
        let mut extended = false;
        for i in n..n + 60 {
            if store.get(&gen.key(i)).unwrap().is_some() {
                extended = true;
                break;
            }
        }
        assert!(extended, "workload D inserts new keys");
    }
}
