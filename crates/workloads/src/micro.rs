//! The LevelDB micro-benchmarks the paper uses in §IV-A: fillseq,
//! fillrandom, readseq, readrandom. Throughput is computed from the
//! disk's *simulated* clock, so results are deterministic and
//! hardware-independent.

use crate::generator::RecordGenerator;
use lsm_core::util::rng::XorShift64;
use lsm_core::Result;
use sealdb::Store;

/// Result of one micro-benchmark phase.
#[derive(Clone, Copy, Debug)]
pub struct MicroResult {
    /// Operations executed.
    pub ops: u64,
    /// Simulated time the phase took, ns.
    pub sim_ns: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

impl MicroResult {
    /// Operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.sim_ns as f64
        }
    }

    /// Payload megabytes per simulated second.
    pub fn mb_per_sec(&self) -> f64 {
        if self.sim_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 * 1e9 / self.sim_ns as f64
        }
    }
}

fn timed<F: FnOnce(&mut Store) -> Result<u64>>(
    store: &mut Store,
    ops: u64,
    f: F,
) -> Result<MicroResult> {
    let start = store.clock_ns();
    let bytes = f(store)?;
    Ok(MicroResult {
        ops,
        sim_ns: store.clock_ns() - start,
        bytes,
    })
}

/// Loads `n` records in ascending key order (the paper's sequential
/// load), flushing at the end so all data is on disk.
pub fn fill_seq(store: &mut Store, gen: &RecordGenerator, n: u64) -> Result<MicroResult> {
    timed(store, n, |s| {
        let mut bytes = 0;
        for i in 0..n {
            let (k, v) = (gen.key(i), gen.value(i));
            bytes += (k.len() + v.len()) as u64;
            s.put(&k, &v)?;
        }
        s.flush()?;
        Ok(bytes)
    })
}

/// Loads `n` records in uniformly random order (the paper's random
/// load). Every index in `[0, n)` is written exactly once, in a
/// pseudo-random permutation, matching `db_bench`'s fillrandom.
pub fn fill_random(
    store: &mut Store,
    gen: &RecordGenerator,
    n: u64,
    seed: u64,
) -> Result<MicroResult> {
    timed(store, n, |s| {
        let mut bytes = 0;
        for i in 0..n {
            let j = permute(i, n, seed);
            let (k, v) = (gen.key(j), gen.value(j));
            bytes += (k.len() + v.len()) as u64;
            s.put(&k, &v)?;
        }
        s.flush()?;
        Ok(bytes)
    })
}

/// Feistel-style permutation of `[0, n)`: visits every index once in a
/// scrambled order, deterministically.
pub fn permute(i: u64, n: u64, seed: u64) -> u64 {
    debug_assert!(i < n);
    // Cycle-walk a power-of-two block cipher down to [0, n).
    let bits = 64 - (n - 1).max(1).leading_zeros();
    let mask = (1u64 << bits) - 1;
    let mut x = i;
    loop {
        // Two rounds of an xorshift-multiply permutation over `bits`.
        x ^= seed & mask;
        x = x.wrapping_mul(0x9E3779B97F4A7C15) & mask;
        x ^= x >> (bits / 2).max(1);
        x = x.wrapping_mul(0xC2B2AE3D27D4EB4F) & mask;
        x ^= x >> (bits / 2).max(1);
        x &= mask;
        if x < n {
            return x;
        }
    }
}

/// Reads `n` keys uniformly at random from a store holding `record_count`
/// records (the paper: 100 K reads on the 100 GB database).
pub fn read_random(
    store: &mut Store,
    gen: &RecordGenerator,
    record_count: u64,
    n: u64,
    seed: u64,
) -> Result<MicroResult> {
    timed(store, n, |s| {
        let mut rng = XorShift64::new(seed);
        let mut bytes = 0;
        for _ in 0..n {
            let i = rng.next_below(record_count);
            let k = gen.key(i);
            if let Some(v) = s.get(&k)? {
                bytes += (k.len() + v.len()) as u64;
            }
        }
        Ok(bytes)
    })
}

/// Reads `n` consecutive keys starting from a random position via range
/// scans (the paper's sequential read).
pub fn read_seq(
    store: &mut Store,
    gen: &RecordGenerator,
    record_count: u64,
    n: u64,
    seed: u64,
) -> Result<MicroResult> {
    timed(store, n, |s| {
        let mut rng = XorShift64::new(seed);
        let start_idx = rng.next_below(record_count.saturating_sub(n).max(1));
        let mut bytes = 0;
        let mut remaining = n as usize;
        let mut cursor = gen.key(start_idx);
        while remaining > 0 {
            let chunk = remaining.min(1000);
            let got = s.scan(&cursor, chunk)?;
            if got.is_empty() {
                break;
            }
            for (k, v) in &got {
                bytes += (k.len() + v.len()) as u64;
            }
            remaining -= got.len();
            // Continue after the last returned key.
            let mut next = got.last().expect("non-empty").0.clone();
            next.push(0);
            cursor = next;
        }
        Ok(bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sealdb::{StoreConfig, StoreKind};

    fn small_store(kind: StoreKind) -> Store {
        StoreConfig::new(kind, 32 << 10, 1 << 30).build().unwrap()
    }

    fn small_gen() -> RecordGenerator {
        RecordGenerator::new(16, 100, 1)
    }

    #[test]
    fn permute_is_a_permutation() {
        for n in [1u64, 2, 7, 100, 1000] {
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let j = permute(i, n, 42);
                assert!(j < n);
                assert!(!seen[j as usize], "duplicate at n={n}");
                seen[j as usize] = true;
            }
        }
    }

    #[test]
    fn fill_and_read_roundtrip() {
        let mut s = small_store(StoreKind::SealDb);
        let g = small_gen();
        let n = 2000;
        let w = fill_random(&mut s, &g, n, 7).unwrap();
        assert_eq!(w.ops, n);
        assert!(w.sim_ns > 0);
        assert!(w.ops_per_sec() > 0.0);
        let r = read_random(&mut s, &g, n, 200, 9).unwrap();
        // Every looked-up key exists: payload == 200 * record size.
        assert_eq!(r.bytes, 200 * g.record_size());
        let sq = read_seq(&mut s, &g, n, 500, 11).unwrap();
        assert_eq!(sq.bytes, 500 * g.record_size());
    }

    #[test]
    fn fill_seq_faster_than_fill_random_on_leveldb() {
        let g = small_gen();
        let n = 3000;
        let mut seq = small_store(StoreKind::LevelDb);
        let rs = fill_seq(&mut seq, &g, n).unwrap();
        let mut rnd = small_store(StoreKind::LevelDb);
        let rr = fill_random(&mut rnd, &g, n, 7).unwrap();
        assert!(
            rs.ops_per_sec() > rr.ops_per_sec(),
            "sequential load should beat random load ({} vs {})",
            rs.ops_per_sec(),
            rr.ops_per_sec()
        );
    }
}
