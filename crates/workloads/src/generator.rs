//! Key and value generation. The paper's records are 16-byte keys and
//! 4 KB values; both are parameterised so the benchmarks can run at a
//! reduced scale with identical structure.

use lsm_core::util::rng::XorShift64;

/// Produces fixed-width keys and deterministic pseudo-random values.
#[derive(Clone, Debug)]
pub struct RecordGenerator {
    key_size: usize,
    value_size: usize,
    value_seed: u64,
}

impl RecordGenerator {
    /// Creates a generator. `key_size` must be at least 12 bytes to hold
    /// the formatted index.
    pub fn new(key_size: usize, value_size: usize, value_seed: u64) -> Self {
        assert!(key_size >= 12, "key size too small for formatted indices");
        RecordGenerator {
            key_size,
            value_size,
            value_seed,
        }
    }

    /// The paper's record shape: 16-byte keys, 4 KB values.
    pub fn paper() -> Self {
        RecordGenerator::new(16, 4096, 0x5EED)
    }

    /// Key bytes for item index `i`: `"k"` + zero-padded decimal,
    /// exactly `key_size` bytes, so lexicographic order == numeric order.
    pub fn key(&self, i: u64) -> Vec<u8> {
        let mut k = format!("k{:0width$}", i, width = self.key_size - 1).into_bytes();
        debug_assert_eq!(k.len(), self.key_size);
        k.truncate(self.key_size);
        k
    }

    /// Value bytes for item index `i`: compressible-free pseudo-random
    /// fill, deterministic in `(seed, i)`.
    pub fn value(&self, i: u64) -> Vec<u8> {
        let mut rng = XorShift64::new(self.value_seed ^ i.wrapping_mul(0x9E3779B97F4A7C15));
        let mut v = Vec::with_capacity(self.value_size);
        while v.len() < self.value_size {
            v.extend_from_slice(&rng.next_u64().to_le_bytes());
        }
        v.truncate(self.value_size);
        v
    }

    /// Key size in bytes.
    pub fn key_size(&self) -> usize {
        self.key_size
    }

    /// Value size in bytes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// Bytes per record (key + value).
    pub fn record_size(&self) -> u64 {
        (self.key_size + self.value_size) as u64
    }

    /// Number of records that amount to `total_bytes` of payload.
    pub fn records_for_bytes(&self, total_bytes: u64) -> u64 {
        total_bytes / self.record_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        let g = RecordGenerator::new(16, 100, 1);
        let a = g.key(5);
        let b = g.key(50);
        let c = g.key(500_000_000);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert_eq!(c.len(), 16);
        assert!(a < b && b < c);
    }

    #[test]
    fn values_are_right_sized_and_deterministic() {
        let g = RecordGenerator::new(16, 4096, 7);
        let v1 = g.value(42);
        let v2 = g.value(42);
        let v3 = g.value(43);
        assert_eq!(v1.len(), 4096);
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn paper_shape() {
        let g = RecordGenerator::paper();
        assert_eq!(g.key(0).len(), 16);
        assert_eq!(g.value(0).len(), 4096);
        assert_eq!(g.record_size(), 4112);
        assert_eq!(g.records_for_bytes(4112 * 10), 10);
    }
}
