//! Arrival processes for the serving front-end.
//!
//! Latency-under-load experiments need traffic whose *offered* rate is
//! independent of the store's service rate. Two standard shapes:
//!
//! * **Open loop** — requests arrive by a seeded Poisson process at a
//!   target ops/s, whether or not earlier requests finished. Queueing
//!   delay appears as soon as the store saturates, which is what bends
//!   the p99-vs-load curve.
//! * **Closed loop** — each virtual client waits for its previous
//!   request and then thinks for a fixed time before issuing the next.
//!   With zero think time this measures the store's saturation
//!   throughput.
//!
//! Gaps are drawn from a deterministic [`XorShift64`] stream, so a
//! (process, seed) pair always produces the same arrival schedule.

use crate::ycsb::WorkloadSpec;
use lsm_core::util::rng::XorShift64;

/// Traffic shape of one virtual client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at `ops_per_sec` (per client).
    OpenLoopPoisson {
        /// Target offered load, operations per simulated second.
        ops_per_sec: f64,
    },
    /// Closed-loop: issue, wait for completion, think, repeat.
    ClosedLoop {
        /// Think time between completion and the next request, ns.
        think_ns: u64,
    },
}

impl ArrivalProcess {
    /// Derives the process a spec asks for: a positive
    /// [`WorkloadSpec::ops_per_sec`] selects open-loop Poisson at that
    /// rate; zero (the default) selects closed-loop with no think time.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        if spec.ops_per_sec > 0.0 {
            ArrivalProcess::OpenLoopPoisson {
                ops_per_sec: spec.ops_per_sec,
            }
        } else {
            ArrivalProcess::ClosedLoop { think_ns: 0 }
        }
    }
}

/// Seeded generator of inter-arrival (or think) gaps for one client.
#[derive(Clone, Debug)]
pub struct InterArrival {
    process: ArrivalProcess,
    rng: XorShift64,
}

impl InterArrival {
    /// A gap generator for `process` with its own RNG stream.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        InterArrival {
            process,
            rng: XorShift64::new(seed),
        }
    }

    /// Next gap, ns. For Poisson arrivals this samples the exponential
    /// inter-arrival distribution by inverse CDF; for closed-loop it is
    /// the constant think time.
    pub fn next_gap_ns(&mut self) -> u64 {
        match self.process {
            ArrivalProcess::OpenLoopPoisson { ops_per_sec } => {
                // 53 uniform bits, offset by half an ulp so u ∈ (0, 1)
                // and ln(u) is finite.
                let u = ((self.rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                let mean_ns = 1e9 / ops_per_sec;
                (-u.ln() * mean_ns) as u64
            }
            ArrivalProcess::ClosedLoop { think_ns } => think_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_gaps_match_target_rate() {
        let mut ia = InterArrival::new(
            ArrivalProcess::OpenLoopPoisson {
                ops_per_sec: 10_000.0,
            },
            42,
        );
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| ia.next_gap_ns()).sum();
        let mean = total as f64 / n as f64;
        // Expected mean gap: 1e9 / 1e4 = 100_000 ns, ±5%.
        assert!((mean - 100_000.0).abs() < 5_000.0, "mean gap {mean}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let p = ArrivalProcess::OpenLoopPoisson { ops_per_sec: 500.0 };
        let a: Vec<u64> = {
            let mut ia = InterArrival::new(p, 7);
            (0..100).map(|_| ia.next_gap_ns()).collect()
        };
        let b: Vec<u64> = {
            let mut ia = InterArrival::new(p, 7);
            (0..100).map(|_| ia.next_gap_ns()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut ia = InterArrival::new(p, 8);
            (0..100).map(|_| ia.next_gap_ns()).collect()
        };
        assert_ne!(a, c, "different seeds must shift the schedule");
    }

    #[test]
    fn closed_loop_gap_is_the_think_time() {
        let mut ia = InterArrival::new(ArrivalProcess::ClosedLoop { think_ns: 250 }, 1);
        for _ in 0..10 {
            assert_eq!(ia.next_gap_ns(), 250);
        }
    }

    #[test]
    fn from_spec_selects_by_rate() {
        let mut spec = WorkloadSpec::a();
        assert_eq!(
            ArrivalProcess::from_spec(&spec),
            ArrivalProcess::ClosedLoop { think_ns: 0 }
        );
        spec.ops_per_sec = 2_000.0;
        assert_eq!(
            ArrivalProcess::from_spec(&spec),
            ArrivalProcess::OpenLoopPoisson {
                ops_per_sec: 2_000.0
            }
        );
    }
}
