//! Request distributions, following the YCSB core generators: uniform,
//! zipfian (Gray et al.'s "Quickly generating billion-record synthetic
//! databases" method, constant 0.99), scrambled zipfian, and latest.

use lsm_core::util::rng::XorShift64;

/// YCSB's default zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A generator of item indices in `[0, n)`.
pub trait Distribution {
    /// Next item index; `n_now` is the current item count (the latest
    /// and insert-following distributions track growing keyspaces).
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64;
}

/// Uniform over `[0, n)`.
#[derive(Clone, Debug, Default)]
pub struct Uniform;

impl Distribution for Uniform {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        rng.next_below(n_now.max(1))
    }
}

fn uniform_f64(rng: &mut XorShift64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipfian over `[0, n)`: item 0 is the most popular.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Creates a zipfian generator over `n` items.
    pub fn new(n: u64) -> Self {
        let theta = ZIPFIAN_CONSTANT;
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            zeta2,
            eta,
        }
    }

    fn sample(&self, rng: &mut XorShift64) -> u64 {
        let u = uniform_f64(rng);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// The zeta(2)/zeta(n) pair (exposed for testing).
    pub fn zetas(&self) -> (f64, f64) {
        (self.zeta2, self.zetan)
    }
}

impl Distribution for Zipfian {
    fn next(&mut self, rng: &mut XorShift64, _n_now: u64) -> u64 {
        self.sample(rng)
    }
}

/// Zipfian popularity spread over the keyspace by hashing (YCSB's
/// `ScrambledZipfianGenerator`): hot items are scattered, not clustered.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

fn fnv1a64(mut x: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..8 {
        h ^= x & 0xFF;
        h = h.wrapping_mul(0x100000001b3);
        x >>= 8;
    }
    h
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `n` items.
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n),
        }
    }
}

impl Distribution for ScrambledZipfian {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a64(rank) % n_now.max(1)
    }
}

/// YCSB's latest distribution: recently inserted items are the hottest
/// (used by workload D).
#[derive(Clone, Debug)]
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// Creates a latest-skewed generator sized for up to `n_max` items.
    pub fn new(n_max: u64) -> Self {
        Latest {
            inner: Zipfian::new(n_max),
        }
    }
}

impl Distribution for Latest {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        let n = n_now.max(1);
        let rank = self.inner.sample(rng) % n;
        n - 1 - rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift64 {
        XorShift64::new(0xABCD)
    }

    #[test]
    fn uniform_covers_range() {
        let mut d = Uniform;
        let mut r = rng();
        let n = 100;
        let mut seen = vec![false; n as usize];
        for _ in 0..10_000 {
            let v = d.next(&mut r, n);
            assert!(v < n);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let n = 10_000u64;
        let mut d = Zipfian::new(n);
        let mut r = rng();
        let mut counts = vec![0u32; n as usize];
        let trials = 100_000;
        for _ in 0..trials {
            let v = d.next(&mut r, n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        // Item 0 should receive roughly 1/zeta(n) of requests (~10%).
        let p0 = counts[0] as f64 / trials as f64;
        assert!((0.07..0.15).contains(&p0), "p0 = {p0}");
        // Top 1% of items take the majority of traffic.
        let hot: u32 = counts[..(n as usize / 100)].iter().sum();
        assert!(hot as f64 / trials as f64 > 0.5);
        // Monotone-ish decay: first item beats the 100th by a lot.
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let n = 10_000u64;
        let mut d = ScrambledZipfian::new(n);
        let mut r = rng();
        let mut counts = vec![0u32; n as usize];
        for _ in 0..100_000 {
            counts[d.next(&mut r, n) as usize] += 1;
        }
        // Still skewed: some item is much hotter than the mean...
        let max = *counts.iter().max().unwrap();
        assert!(max > 1000);
        // ...but the hottest item is NOT item 0 (scrambling moved it)
        // and hot items are not clustered at the front.
        let front: u32 = counts[..100].iter().sum();
        assert!((front as f64) < 100_000.0 * 0.5);
    }

    #[test]
    fn latest_prefers_recent() {
        let n = 1000u64;
        let mut d = Latest::new(n);
        let mut r = rng();
        let mut newest = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let v = d.next(&mut r, n);
            assert!(v < n);
            if v >= n - 10 {
                newest += 1;
            }
        }
        // The newest 1% of items get far more than 1% of requests.
        assert!(newest as f64 / trials as f64 > 0.1);
    }

    #[test]
    fn latest_tracks_growing_keyspace() {
        let mut d = Latest::new(1000);
        let mut r = rng();
        for n_now in [1u64, 5, 100, 1000] {
            for _ in 0..100 {
                assert!(d.next(&mut r, n_now) < n_now);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Zipfian::new(1000);
        let mut b = Zipfian::new(1000);
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..100 {
            assert_eq!(a.next(&mut ra, 1000), b.next(&mut rb, 1000));
        }
    }
}
