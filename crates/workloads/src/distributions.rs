//! Request distributions, following the YCSB core generators: uniform,
//! zipfian (Gray et al.'s "Quickly generating billion-record synthetic
//! databases" method, constant 0.99), scrambled zipfian, and latest.

use lsm_core::util::rng::XorShift64;

/// YCSB's default zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A generator of item indices in `[0, n)`.
pub trait Distribution {
    /// Next item index; `n_now` is the current item count (the latest
    /// and insert-following distributions track growing keyspaces).
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64;
}

/// Uniform over `[0, n)`.
#[derive(Clone, Debug, Default)]
pub struct Uniform;

impl Distribution for Uniform {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        rng.next_below(n_now.max(1))
    }
}

fn uniform_f64(rng: &mut XorShift64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Zipfian over `[0, n)`: item 0 is the most popular.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    zeta2: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Creates a zipfian generator over `n` items.
    pub fn new(n: u64) -> Self {
        let theta = ZIPFIAN_CONSTANT;
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            zeta2,
            eta,
        }
    }

    fn sample(&self, rng: &mut XorShift64) -> u64 {
        let u = uniform_f64(rng);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// The zeta(2)/zeta(n) pair (exposed for testing).
    pub fn zetas(&self) -> (f64, f64) {
        (self.zeta2, self.zetan)
    }
}

impl Distribution for Zipfian {
    fn next(&mut self, rng: &mut XorShift64, _n_now: u64) -> u64 {
        self.sample(rng)
    }
}

/// Zipfian popularity spread over the keyspace by hashing (YCSB's
/// `ScrambledZipfianGenerator`): hot items are scattered, not clustered.
///
/// The scatter is a *bijection* on `[0, n)` ([`ScatterPermutation`]), not
/// a hash-mod: `fnv1a64(rank) % n` collides, so distinct ranks alias the
/// same item, the effective keyspace shrinks, and anything partitioning
/// the keyspace downstream (the shard router) inherits a silent skew.
#[derive(Clone, Debug)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    perm: ScatterPermutation,
}

/// A keyed bijection on `[0, n)`: a 4-round Feistel network over the
/// smallest even-bit-width power-of-two domain covering `n`, with
/// cycle-walking to stay inside `[0, n)`. Every rank maps to a distinct
/// item, so scattering never shrinks the keyspace.
#[derive(Clone, Copy, Debug)]
pub struct ScatterPermutation {
    n: u64,
    /// Bits per Feistel half; the walked domain is `2^(2*half_bits)`.
    half_bits: u32,
}

/// Feistel round keys — arbitrary odd constants, fixed so the scatter is
/// stable across runs and processes.
const SCATTER_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0xD6E8_FEB8_6659_FD93,
];

impl ScatterPermutation {
    /// A permutation of `[0, n)`; `n = 0` behaves as `n = 1`.
    pub fn new(n: u64) -> Self {
        let n = n.max(1);
        // Smallest even bit width whose power of two covers n, so the
        // Feistel halves are equal-width and the walk terminates fast
        // (at most ~4 steps in expectation; the domain is < 4n).
        let mut half_bits = 1u32;
        while (1u128 << (2 * half_bits)) < u128::from(n) {
            half_bits += 1;
        }
        ScatterPermutation { n, half_bits }
    }

    /// Number of items in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    fn round(&self, half: u64, key: u64) -> u64 {
        // Multiply-xor-shift mix of one half under a round key, truncated
        // to the half width. Only injectivity of the whole network
        // matters, which the Feistel structure supplies for any round
        // function.
        let mask = (1u64 << self.half_bits) - 1;
        let mut x = half ^ key;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 32;
        x & mask
    }

    fn feistel(&self, v: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (v >> self.half_bits) & mask;
        let mut right = v & mask;
        for key in SCATTER_KEYS {
            let next = left ^ self.round(right, key);
            left = right;
            right = next;
        }
        (left << self.half_bits) | right
    }

    /// Maps `v` to its scattered image; a bijection on `[0, n)`.
    /// Values at or past `n` are first folded in with `% n`.
    pub fn scatter(&self, v: u64) -> u64 {
        // Cycle-walking: iterate the power-of-two-domain bijection until
        // it lands inside [0, n). Restricting a permutation this way is
        // itself a permutation of [0, n).
        let mut x = v % self.n;
        loop {
            x = self.feistel(x);
            if x < self.n {
                return x;
            }
        }
    }
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian over `n` items.
    pub fn new(n: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(n),
            perm: ScatterPermutation::new(n),
        }
    }
}

impl Distribution for ScrambledZipfian {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        let rank = self.inner.sample(rng);
        let n_now = n_now.max(1);
        // The keyspace can grow past the permutation's domain (inserts);
        // rebuild lazily so the scatter always covers [0, n_now).
        if self.perm.domain() != n_now {
            self.perm = ScatterPermutation::new(n_now);
        }
        self.perm.scatter(rank)
    }
}

/// YCSB's latest distribution: recently inserted items are the hottest
/// (used by workload D).
#[derive(Clone, Debug)]
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// Creates a latest-skewed generator sized for up to `n_max` items.
    pub fn new(n_max: u64) -> Self {
        Latest {
            inner: Zipfian::new(n_max),
        }
    }
}

impl Distribution for Latest {
    fn next(&mut self, rng: &mut XorShift64, n_now: u64) -> u64 {
        let n = n_now.max(1);
        let rank = self.inner.sample(rng) % n;
        n - 1 - rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> XorShift64 {
        XorShift64::new(0xABCD)
    }

    #[test]
    fn uniform_covers_range() {
        let mut d = Uniform;
        let mut r = rng();
        let n = 100;
        let mut seen = vec![false; n as usize];
        for _ in 0..10_000 {
            let v = d.next(&mut r, n);
            assert!(v < n);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Share of traffic taken by the hot prefix (the top 1% of items,
    /// floored at one item so small domains still assert something
    /// instead of summing an empty slice).
    fn hot_set_share(counts: &[u32], trials: u64) -> f64 {
        let hot_len = (counts.len() / 100).max(1);
        let hot: u64 = counts[..hot_len].iter().map(|&c| u64::from(c)).sum();
        hot as f64 / trials as f64
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let n = 10_000u64;
        let mut d = Zipfian::new(n);
        let mut r = rng();
        let mut counts = vec![0u32; n as usize];
        let trials = 100_000;
        for _ in 0..trials {
            let v = d.next(&mut r, n);
            assert!(v < n);
            counts[v as usize] += 1;
        }
        // Item 0 should receive roughly 1/zeta(n) of requests (~10%).
        let p0 = counts[0] as f64 / trials as f64;
        assert!((0.07..0.15).contains(&p0), "p0 = {p0}");
        // Top 1% of items take the majority of traffic.
        assert!(hot_set_share(&counts, trials) > 0.5);
        // Monotone-ish decay: first item beats the 100th by a lot.
        assert!(counts[0] > counts[99] * 5);
    }

    #[test]
    fn zipfian_small_domains_still_assert_skew() {
        // n < 100 used to make the hot-prefix slice empty, so the skew
        // assertion passed vacuously; the floored prefix closes that.
        for n in [2u64, 10, 50, 99] {
            let mut d = Zipfian::new(n);
            let mut r = rng();
            let mut counts = vec![0u32; n as usize];
            let trials = 20_000;
            for _ in 0..trials {
                counts[d.next(&mut r, n) as usize] += 1;
            }
            let share = hot_set_share(&counts, trials);
            // The floored hot set is exactly item 0 here, which holds
            // ~1/zeta(n) of traffic — far above the uniform share.
            assert!(
                share > 1.25 / n as f64,
                "n = {n}: hot share {share} is not skewed"
            );
            assert!(counts[0] > counts[n as usize - 1], "n = {n}");
        }
    }

    #[test]
    fn scatter_is_a_bijection_on_every_domain() {
        // Full-coverage/no-collision property: over the whole domain the
        // scatter hits every item exactly once. The replaced
        // `fnv1a64(rank) % n` scatter fails this for every domain here
        // (e.g. n = 1000 reaches only ~632 distinct items).
        for n in [1u64, 2, 7, 100, 255, 256, 257, 1000, 4096, 10_000] {
            let mut seen = vec![false; n as usize];
            let p = ScatterPermutation::new(n);
            for v in 0..n {
                let s = p.scatter(v);
                assert!(s < n, "n = {n}: image {s} out of range");
                assert!(!seen[s as usize], "n = {n}: collision at image {s}");
                seen[s as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "n = {n}: coverage hole");
        }
    }

    #[test]
    fn scatter_actually_scatters() {
        // Not the identity and not order-preserving: neighbours land far
        // apart, which is the whole point of scrambling the hot set.
        let n = 10_000u64;
        let p = ScatterPermutation::new(n);
        let moved = (0..n).filter(|&v| p.scatter(v) != v).count();
        assert!(moved as u64 > n * 9 / 10, "only {moved} items moved");
        let mut adjacent = 0;
        for v in 0..n - 1 {
            if p.scatter(v).abs_diff(p.scatter(v + 1)) == 1 {
                adjacent += 1;
            }
        }
        assert!(adjacent < 50, "{adjacent} neighbour pairs stayed adjacent");
    }

    #[test]
    fn scrambled_zipfian_hot_key_skew_is_preserved() {
        // Scrambling permutes identities but must not flatten the
        // distribution: the hottest item still takes ~1/zeta(n) of
        // traffic, exactly like the unscrambled zipfian's item 0.
        let n = 10_000u64;
        let mut plain = Zipfian::new(n);
        let mut scrambled = ScrambledZipfian::new(n);
        let mut r1 = rng();
        let mut r2 = rng();
        let trials = 100_000;
        let mut plain_counts = vec![0u32; n as usize];
        let mut scr_counts = vec![0u32; n as usize];
        for _ in 0..trials {
            plain_counts[plain.next(&mut r1, n) as usize] += 1;
            scr_counts[scrambled.next(&mut r2, n) as usize] += 1;
        }
        let p0 = *plain_counts.iter().max().unwrap() as f64 / trials as f64;
        let s0 = *scr_counts.iter().max().unwrap() as f64 / trials as f64;
        // Same seed, same rank stream — the permutation only relabels, so
        // the ordered count multiset is identical.
        plain_counts.sort_unstable();
        scr_counts.sort_unstable();
        assert_eq!(plain_counts, scr_counts, "scatter changed the skew");
        assert!((s0 - p0).abs() < 1e-12);
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let n = 10_000u64;
        let mut d = ScrambledZipfian::new(n);
        let mut r = rng();
        let mut counts = vec![0u32; n as usize];
        for _ in 0..100_000 {
            counts[d.next(&mut r, n) as usize] += 1;
        }
        // Still skewed: some item is much hotter than the mean...
        let max = *counts.iter().max().unwrap();
        assert!(max > 1000);
        // ...but the hottest item is NOT item 0 (scrambling moved it)
        // and hot items are not clustered at the front.
        let front: u32 = counts[..100].iter().sum();
        assert!((front as f64) < 100_000.0 * 0.5);
    }

    #[test]
    fn latest_prefers_recent() {
        let n = 1000u64;
        let mut d = Latest::new(n);
        let mut r = rng();
        let mut newest = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let v = d.next(&mut r, n);
            assert!(v < n);
            if v >= n - 10 {
                newest += 1;
            }
        }
        // The newest 1% of items get far more than 1% of requests.
        assert!(newest as f64 / trials as f64 > 0.1);
    }

    #[test]
    fn latest_tracks_growing_keyspace() {
        let mut d = Latest::new(1000);
        let mut r = rng();
        for n_now in [1u64, 5, 100, 1000] {
            for _ in 0..100 {
                assert!(d.next(&mut r, n_now) < n_now);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Zipfian::new(1000);
        let mut b = Zipfian::new(1000);
        let mut ra = rng();
        let mut rb = rng();
        for _ in 0..100 {
            assert_eq!(a.next(&mut ra, 1000), b.next(&mut rb, 1000));
        }
    }
}
