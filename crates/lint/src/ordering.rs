//! The durability-ordering annotation table.
//!
//! Ordering facts are declared here — effect classes mapped to known
//! workspace call names — so the rules in [`crate::dataflow`] stay
//! dependency-free and auditable: to see exactly what the linter
//! believes about a function, grep this file.
//!
//! Three *effect classes* describe what a call guarantees once it
//! returns:
//! - [`DURABLE`] — bytes previously handed to the store are on stable
//!   media (`sync_wal`, `append_durable`, ...).
//! - [`CHECKPOINT`] — the manifest has committed auxiliary state, i.e.
//!   the value-log segment directory (`commit_aux_state`).
//! - [`FENCE`] — damaged or dying storage has been fenced off from
//!   future allocation and serving (`quarantine_extent`, `seal`, ...).
//!
//! *Triggers* are the calls whose correctness depends on one of those
//! effects having already happened; the dataflow pass checks each
//! trigger against the effect state accumulated on the paths leading
//! to it. Trigger matching is deliberately direct-call-only: a helper
//! that *contains* a trigger is analysed at its own call sites, in its
//! own body.

/// Effect bit: previously written bytes are on stable media.
pub const DURABLE: u8 = 1 << 0;
/// Effect bit: the manifest committed the value-log segment directory.
pub const CHECKPOINT: u8 = 1 << 1;
/// Effect bit: damaged storage is fenced from allocation and serving.
pub const FENCE: u8 = 1 << 2;

/// Effects a call with this bare name *provides* once it returns.
/// Provider matching is permissive by design: providers only ever
/// satisfy dominance requirements, never create findings.
pub fn provides(name: &str) -> u8 {
    match name {
        "sync_wal" | "append_durable" | "fsync" | "sync_all" | "sync" => DURABLE,
        // Committing aux state rides the manifest's durable append.
        "commit_aux_state" => DURABLE | CHECKPOINT,
        "quarantine_extent" | "quarantine_segment" | "quarantine" | "seal" => FENCE,
        _ => 0,
    }
}

/// Calls that acknowledge a write to a client. Each must be dominated
/// by [`DURABLE`] on every path (`SyncBeforeAck`).
pub const ACK_TRIGGERS: [&str; 4] = ["ack", "ack_write", "ack_client", "mark_acked"];

/// Calls that hand a batch to the LSM (and thus the WAL). When the
/// batch carries value-log pointers — detected by a *direct*
/// [`POINTER_MARKER`] call earlier in the same function — a
/// [`CHECKPOINT`] must have happened on at least one path before it
/// (`CheckpointBeforePointer`, the PR 8 bug class).
pub const POINTER_WRITE_TRIGGERS: [&str; 2] = ["write", "write_unaccounted"];

/// The call that turns a value-log address into LSM-visible bytes.
/// Used only as an in-function marker; it is never propagated through
/// call-graph summaries (too many functions are named `write`).
pub const POINTER_MARKER: &str = "encode_pointer";

/// Calls that rewrite or salvage damaged data. Each must be dominated
/// by [`FENCE`] on every path (`FenceBeforeRepair`), so a repair can
/// never race new allocations into the bad region.
pub const REPAIR_TRIGGERS: [&str; 2] = ["rebuild_file", "salvage_prefix"];

/// Calls that recycle a value-log segment, freeing its bytes for
/// reuse. Each must be dominated by [`DURABLE`] on every path
/// (`RecycleAfterFixupsDurable`): the pointer fixups that redirect
/// live keys away from the victim must hit stable media before the
/// victim's bytes can be overwritten.
pub const RECYCLE_TRIGGERS: [&str; 1] = ["retire_segment"];

/// Renders an effect set for diagnostics, stable order.
pub fn effect_names(set: u8) -> String {
    let mut parts = Vec::new();
    if set & DURABLE != 0 {
        parts.push("Durable");
    }
    if set & CHECKPOINT != 0 {
        parts.push("Checkpoint");
    }
    if set & FENCE != 0 {
        parts.push("Fence");
    }
    if parts.is_empty() {
        parts.push("none");
    }
    parts.join("+")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn providers_and_triggers_do_not_overlap() {
        // A name that both provides an effect and triggers a check
        // would satisfy itself; keep the sets disjoint.
        for name in ACK_TRIGGERS
            .iter()
            .chain(POINTER_WRITE_TRIGGERS.iter())
            .chain(REPAIR_TRIGGERS.iter())
            .chain(RECYCLE_TRIGGERS.iter())
        {
            assert_eq!(provides(name), 0, "`{name}` both provides and triggers");
        }
    }

    #[test]
    fn effect_rendering_is_stable() {
        assert_eq!(effect_names(0), "none");
        assert_eq!(effect_names(DURABLE | FENCE), "Durable+Fence");
        assert_eq!(effect_names(DURABLE | CHECKPOINT), "Durable+Checkpoint");
    }
}
