//! Intra-procedural durability-ordering dataflow with a call-graph
//! summary layer.
//!
//! For each function body the pass tracks two effect sets as it walks
//! statements in evaluation order:
//! - **must** — effects guaranteed on *every* path reaching this point
//!   (branch alternatives intersect);
//! - **may** — effects possible on *some* path (branch alternatives
//!   union).
//!
//! A call contributes the effects of its own name (the annotation
//! table in [`crate::ordering`]) plus the summary of every same-named
//! function defined in the linted tree, computed to a fixed point so
//! helpers like `fence_extent` (which calls `quarantine_extent`)
//! transitively provide `Fence`. Loop bodies are treated optimistically
//! for *must* — a loop that fences each damaged extent counts as a
//! fence even though the loop could run zero times; this is a lint, a
//! heuristic dominance check, not a verifier.
//!
//! Trigger checks are direct-call-site-only; see `DESIGN.md` §16 for
//! the rule catalogue.

use crate::ordering::{
    self, ACK_TRIGGERS, CHECKPOINT, DURABLE, FENCE, POINTER_MARKER, POINTER_WRITE_TRIGGERS,
    RECYCLE_TRIGGERS, REPAIR_TRIGGERS,
};
use crate::parser::{Block, CallSite, FnDef, Stmt};
use crate::rules::Rule;
use std::collections::BTreeMap;

/// Per-function effect summary: what a call to it guarantees (`must`)
/// and what it might do (`may`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Effects present on every path through the function.
    pub must: u8,
    /// Effects present on at least one path.
    pub may: u8,
}

/// Call-graph summaries keyed by bare function name. Same-named
/// functions merge conservatively: `must` intersects, `may` unions.
#[derive(Clone, Debug, Default)]
pub struct Summaries {
    map: BTreeMap<String, FnSummary>,
}

impl Summaries {
    /// The summary for a bare callee name, if any function by that
    /// name was seen.
    pub fn get(&self, name: &str) -> Option<FnSummary> {
        self.map.get(name).copied()
    }

    /// Number of summarised names (diagnostics/tests).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no functions were summarised.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Computes fixed-point effect summaries for every parsed function.
pub fn summarize(fns: &[FnDef]) -> Summaries {
    let mut sums = Summaries::default();
    // Monotone iteration from bottom (no effects); the effect lattice
    // is tiny so this converges in a handful of rounds.
    for _ in 0..16 {
        let mut next: BTreeMap<String, FnSummary> = BTreeMap::new();
        for f in fns {
            let (must, may) = eval_fn(f, &sums);
            next.entry(f.name.clone())
                .and_modify(|s| {
                    s.must &= must;
                    s.may |= may;
                })
                .or_insert(FnSummary { must, may });
        }
        if next == sums.map {
            break;
        }
        sums.map = next;
    }
    sums
}

/// Walks one function, returning its (must, may) effect sets.
fn eval_fn(f: &FnDef, sums: &Summaries) -> (u8, u8) {
    let mut must = 0u8;
    let mut may = 0u8;
    walk_effects(&f.body, &mut must, &mut may, sums);
    (must, may)
}

fn walk_effects(block: &Block, must: &mut u8, may: &mut u8, sums: &Summaries) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Call(c) => {
                // Checkpoint credit does not propagate *through*
                // summaries: only a function that directly calls the
                // commit carries it (one level deep). Otherwise
                // ubiquitous names like `put` transitively inherit
                // `Checkpoint` via `write` → `commit_aux_state` and
                // the pointer rule can never fire.
                let direct = ordering::provides(&c.name);
                let (sm, sy) = sums
                    .get(&c.name)
                    .map_or((0, 0), |s| (s.must & !CHECKPOINT, s.may & !CHECKPOINT));
                *must |= direct | sm;
                *may |= direct | sy;
            }
            Stmt::Branch(arms) => {
                if arms.is_empty() {
                    continue;
                }
                let mut inter = u8::MAX;
                for arm in arms {
                    let mut am = *must;
                    let mut ay = *may;
                    walk_effects(arm, &mut am, &mut ay, sums);
                    inter &= am;
                    *may |= ay;
                }
                *must = inter;
            }
            Stmt::Loop(body) => {
                // Loop-optimistic: body effects count as guaranteed.
                walk_effects(body, must, may, sums);
            }
        }
    }
}

/// Effects contributed by calling `name`: its own annotation plus the
/// summary of any same-named function in the linted tree.
fn call_effects(name: &str, sums: &Summaries) -> (u8, u8) {
    let direct = ordering::provides(name);
    match sums.get(name) {
        Some(s) => (direct | s.must, direct | s.may),
        None => (direct, direct),
    }
}

/// The ordering-rule family routed through this pass.
pub const ORDERING_RULES: [Rule; 5] = [
    Rule::SyncBeforeAck,
    Rule::CheckpointBeforePointer,
    Rule::FenceBeforeRepair,
    Rule::RecycleAfterFixupsDurable,
    Rule::NoDurabilityInDrop,
];

/// Checks one function against the active ordering rules, emitting a
/// finding per violated trigger.
pub fn check_fn(
    f: &FnDef,
    sums: &Summaries,
    rules: &[Rule],
    emit: &mut dyn FnMut(u32, Rule, String),
) {
    let mut st = FlowState {
        must: 0,
        may: 0,
        pointer_pending: false,
    };
    let in_drop = f.is_drop && rules.contains(&Rule::NoDurabilityInDrop);
    walk_check(&f.body, &mut st, f, sums, rules, in_drop, emit);
}

struct FlowState {
    must: u8,
    may: u8,
    /// A direct `encode_pointer` call happened on some path with no
    /// checkpoint commit since function entry.
    pointer_pending: bool,
}

#[allow(clippy::too_many_arguments)]
fn walk_check(
    block: &Block,
    st: &mut FlowState,
    f: &FnDef,
    sums: &Summaries,
    rules: &[Rule],
    in_drop: bool,
    emit: &mut dyn FnMut(u32, Rule, String),
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Call(c) => check_call(c, st, f, sums, rules, in_drop, emit),
            Stmt::Branch(arms) => {
                if arms.is_empty() {
                    continue;
                }
                let mut inter_must = u8::MAX;
                let mut union_may = st.may;
                let mut union_pending = false;
                for arm in arms {
                    let mut sub = FlowState {
                        must: st.must,
                        may: st.may,
                        pointer_pending: st.pointer_pending,
                    };
                    walk_check(arm, &mut sub, f, sums, rules, in_drop, emit);
                    inter_must &= sub.must;
                    union_may |= sub.may;
                    union_pending |= sub.pointer_pending;
                }
                st.must = inter_must;
                st.may = union_may;
                st.pointer_pending = union_pending;
            }
            Stmt::Loop(body) => {
                walk_check(body, st, f, sums, rules, in_drop, emit);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_call(
    c: &CallSite,
    st: &mut FlowState,
    f: &FnDef,
    sums: &Summaries,
    rules: &[Rule],
    in_drop: bool,
    emit: &mut dyn FnMut(u32, Rule, String),
) {
    let name = c.name.as_str();
    let (cm, cy) = call_effects(name, sums);

    // Trigger checks run against the state *before* this call's own
    // effects land.
    if rules.contains(&Rule::SyncBeforeAck)
        && ACK_TRIGGERS.contains(&name)
        && st.must & DURABLE == 0
    {
        emit(
            c.line,
            Rule::SyncBeforeAck,
            format!(
                "`{}` acknowledges a write without a dominating durability \
                 barrier (guaranteed effects here: {}); call `sync_wal`/\
                 `append_durable` on every path first",
                name,
                ordering::effect_names(st.must)
            ),
        );
    }
    if rules.contains(&Rule::CheckpointBeforePointer)
        && POINTER_WRITE_TRIGGERS.contains(&name)
        && st.pointer_pending
        && st.may & CHECKPOINT == 0
    {
        emit(
            c.line,
            Rule::CheckpointBeforePointer,
            format!(
                "`{}` hands value-log pointers (`encode_pointer` above) to the \
                 LSM with no manifest checkpoint before it; commit the segment \
                 directory (`commit_aux_state`) before pointers reach the WAL",
                name
            ),
        );
    }
    if rules.contains(&Rule::FenceBeforeRepair)
        && REPAIR_TRIGGERS.contains(&name)
        && st.must & FENCE == 0
    {
        emit(
            c.line,
            Rule::FenceBeforeRepair,
            format!(
                "`{}` repairs or salvages damaged storage without a dominating \
                 fence (guaranteed effects here: {}); quarantine the damaged \
                 region (`quarantine_extent`/`seal`) on every path first",
                name,
                ordering::effect_names(st.must)
            ),
        );
    }
    if rules.contains(&Rule::RecycleAfterFixupsDurable)
        && RECYCLE_TRIGGERS.contains(&name)
        && st.must & DURABLE == 0
    {
        emit(
            c.line,
            Rule::RecycleAfterFixupsDurable,
            format!(
                "`{}` recycles a segment without a dominating durability barrier \
                 (guaranteed effects here: {}); `sync_wal` the pointer fixups on \
                 every path before the victim's bytes are freed",
                name,
                ordering::effect_names(st.must)
            ),
        );
    }
    if in_drop && cy & (DURABLE | CHECKPOINT) != 0 {
        emit(
            c.line,
            Rule::NoDurabilityInDrop,
            format!(
                "`{}` reaches durability work ({}) inside `impl Drop for {}`, \
                 where ordering at crash is undefined; make durability explicit \
                 in a named method instead",
                name,
                ordering::effect_names(cy & (DURABLE | CHECKPOINT)),
                f.impl_ty.as_deref().unwrap_or("_")
            ),
        );
    }

    // Now land this call's effects.
    st.must |= cm;
    st.may |= cy;
    if name == POINTER_MARKER {
        st.pointer_pending = true;
    }
    if cy & CHECKPOINT != 0 {
        // A checkpoint commit (even a conditional one, via `may`)
        // satisfies pending pointers encoded so far.
        st.pointer_pending = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};
    use crate::parser::parse;

    fn analyze(src: &str, rules: &[Rule]) -> Vec<(u32, Rule)> {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !matches!(tokens[i].kind, TokenKind::Comment | TokenKind::DocComment))
            .collect();
        let fns = parse(&tokens, &code);
        let sums = summarize(&fns);
        let mut out = Vec::new();
        for f in &fns {
            check_fn(f, &sums, rules, &mut |line, rule, _msg| {
                out.push((line, rule));
            });
        }
        out
    }

    #[test]
    fn ack_requires_dominating_sync() {
        let bad = analyze("fn f(db: &mut Db) { db.ack_write(1); }", &ORDERING_RULES);
        assert_eq!(bad, [(1, Rule::SyncBeforeAck)]);
        let good = analyze(
            "fn f(db: &mut Db) { db.sync_wal(); db.ack_write(1); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn branch_sync_must_cover_every_path() {
        let bad = analyze(
            "fn f(db: &mut Db, fast: bool) { if !fast { db.sync_wal(); } db.ack_write(1); }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(1, Rule::SyncBeforeAck)]);
        let good = analyze(
            "fn f(db: &mut Db, fast: bool) { if fast { db.sync_wal(); } else { db.sync_all(); } \
             db.ack_write(1); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn pointer_write_needs_checkpoint_in_may() {
        let bad = analyze(
            "fn f(db: &mut Db, b: Batch, p: Ptr) { let e = encode_pointer(p); db.write(b); }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(1, Rule::CheckpointBeforePointer)]);
        // The real store commits conditionally: `may` suffices.
        let good = analyze(
            "fn f(db: &mut Db, v: &mut V, b: Batch, p: Ptr) { let e = encode_pointer(p); \
             if v.take_dirty() { db.commit_aux_state(v.checkpoint()); } db.write(b); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
        // No pointers encoded: plain writes never trigger.
        let plain = analyze(
            "fn f(db: &mut Db, b: Batch) { db.write(b); }",
            &ORDERING_RULES,
        );
        assert!(plain.is_empty(), "{plain:?}");
    }

    #[test]
    fn repair_needs_fence_possibly_via_helper() {
        let bad = analyze(
            "fn f(db: &mut Db, id: u64) { db.rebuild_file(id); }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(1, Rule::FenceBeforeRepair)]);
        // The fence arrives transitively through a local helper: the
        // call-graph summary layer must see through it.
        let good = analyze(
            "fn fence_all(db: &mut Db, id: u64) { db.quarantine_extent(id); }\n\
             fn f(db: &mut Db, id: u64) { fence_all(db, id); db.rebuild_file(id); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn loop_body_fence_counts_as_dominating() {
        let good = analyze(
            "fn f(db: &mut Db, bad: &[u64]) { for e in bad.iter() { db.quarantine_extent(e); } \
             db.rebuild_file(0); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn recycle_needs_durable_fixups() {
        let bad = analyze(
            "fn f(db: &mut Db, v: &mut V, s: u64) { db.write_unaccounted(b); v.retire_segment(s); \
             db.sync_wal(); }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(1, Rule::RecycleAfterFixupsDurable)]);
        let good = analyze(
            "fn f(db: &mut Db, v: &mut V, s: u64) { db.write_unaccounted(b); db.sync_wal(); \
             v.retire_segment(s); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn checkpoint_credit_is_one_call_deep() {
        // `commit_dir` commits directly: calling it satisfies the rule.
        let good = analyze(
            "fn commit_dir(db: &mut Db, v: &mut V) { db.commit_aux_state(v.checkpoint()); }\n\
             fn f(db: &mut Db, v: &mut V, p: Ptr, b: Batch) { let e = encode_pointer(p); \
             commit_dir(db, v); db.write(b); }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
        // ...but a helper that merely *calls* `commit_dir` does not
        // carry the checkpoint credit onward: ubiquitous names must
        // not transitively satisfy the pointer rule.
        let bad = analyze(
            "fn commit_dir(db: &mut Db, v: &mut V) { db.commit_aux_state(v.checkpoint()); }\n\
             fn maybe(db: &mut Db, v: &mut V) { commit_dir(db, v); }\n\
             fn f(db: &mut Db, v: &mut V, p: Ptr, b: Batch) { let e = encode_pointer(p); \
             maybe(db, v); db.write(b); }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(3, Rule::CheckpointBeforePointer)]);
    }

    #[test]
    fn drop_impls_reject_durability_transitively() {
        let bad = analyze(
            "fn hidden(db: &mut Db) { db.commit_aux_state(v); }\n\
             impl Drop for C { fn drop(&mut self) { hidden(&mut self.db); } }",
            &ORDERING_RULES,
        );
        assert_eq!(bad, [(2, Rule::NoDurabilityInDrop)]);
        let direct = analyze(
            "impl Drop for F { fn drop(&mut self) { self.db.sync_wal(); } }",
            &ORDERING_RULES,
        );
        assert_eq!(direct, [(1, Rule::NoDurabilityInDrop)]);
        let good = analyze(
            "impl Drop for F { fn drop(&mut self) { self.stats.clear(); } }",
            &ORDERING_RULES,
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn summaries_reach_fixed_point_through_chains() {
        let fns = {
            let src = "fn a(db: &mut Db) { db.sync_wal(); }\n\
                       fn b(db: &mut Db) { a(db); }\n\
                       fn c(db: &mut Db) { b(db); }";
            let tokens = lex(src);
            let code: Vec<usize> = (0..tokens.len()).collect();
            parse(&tokens, &code)
        };
        let sums = summarize(&fns);
        assert_eq!(sums.get("c").unwrap().must & DURABLE, DURABLE);
    }

    #[test]
    fn same_named_fns_merge_conservatively() {
        let src = "fn h(db: &mut Db) { db.sync_wal(); }\n\
                   mod other { fn h(db: &mut Db) { db.noop(); } }\n\
                   fn f(db: &mut Db) { h(db); db.ack_write(1); }";
        // One `h` syncs, the other does not: must-intersection means the
        // call to `h` cannot be trusted to sync, so the ack is flagged.
        let out = analyze(src, &ORDERING_RULES);
        assert_eq!(out, [(3, Rule::SyncBeforeAck)]);
    }
}
