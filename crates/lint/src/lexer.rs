//! A small hand-rolled Rust lexer — just enough token structure for the
//! seal-lint rules. It is deliberately not a full Rust grammar: rules
//! operate on identifier/punctuation/string-literal streams with line
//! numbers, which is sufficient to recognise every invariant in the
//! catalogue without external parser crates (the workspace builds
//! offline).
//!
//! The lexer understands the parts of the language that would otherwise
//! produce false positives in a plain text scan: line and (nested) block
//! comments, doc comments, string literals (including raw strings with
//! arbitrary `#` fences), char literals vs lifetimes, and numeric
//! literals.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (`"..."`, `r"..."`, `r#"..."#`, byte strings).
    Str,
    /// Character literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal.
    Number,
    /// Single punctuation character (`(`, `)`, `{`, `:`, `#`, ...).
    Punct,
    /// Outer or inner doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
    /// Ordinary comment (`//`, `/* */`) — kept so suppression markers
    /// can be read back out of the stream.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// The token text. For string literals this is the *unquoted* raw
    /// source contents; for comments it includes the comment markers.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream. Unknown bytes are skipped (the tool
/// lints its own workspace, so input is always valid Rust; resilience
/// here just keeps a stray byte from aborting a whole-file scan).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.chars.len() {
            let c = self.chars[self.pos];
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_string() => {}
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, c.to_string(), self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let doc = matches!(self.peek(2), Some('/') | Some('!'))
            // `////...` is an ordinary comment, not a doc comment.
            && !(self.peek(2) == Some('/') && self.peek(3) == Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        let kind = if doc {
            TokenKind::DocComment
        } else {
            TokenKind::Comment
        };
        self.push(kind, text, start_line);
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let doc = matches!(self.peek(2), Some('*') | Some('!')) && self.peek(3) != Some('/');
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        let kind = if doc {
            TokenKind::DocComment
        } else {
            TokenKind::Comment
        };
        self.push(kind, text, start_line);
    }

    fn string(&mut self) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(next) = self.peek(1) {
                        text.push(next);
                        if next == '\n' {
                            self.line += 1;
                        }
                    }
                    self.pos += 2;
                }
                '"' => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    if c == '\n' {
                        self.line += 1;
                    }
                    text.push(c);
                    self.pos += 1;
                }
            }
        }
        self.push(TokenKind::Str, text, start_line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`. Returns false
    /// when the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut look = self.pos;
        // Skip the r/b/rb/br prefix letters.
        while matches!(self.chars.get(look), Some('r') | Some('b')) && look < self.pos + 2 {
            look += 1;
        }
        let mut fences = 0usize;
        while self.chars.get(look) == Some(&'#') {
            fences += 1;
            look += 1;
        }
        if self.chars.get(look) != Some(&'"') {
            return false;
        }
        let raw = self.chars[self.pos..look].contains(&'r');
        let start_line = self.line;
        self.pos = look + 1; // past the opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !raw && c == '\\' {
                text.push(c);
                if let Some(next) = self.peek(1) {
                    text.push(next);
                    if next == '\n' {
                        self.line += 1;
                    }
                }
                self.pos += 2;
                continue;
            }
            if c == '"' {
                // A raw string ends only at `"` followed by the right
                // number of `#` fences.
                let mut ok = true;
                for i in 0..fences {
                    if self.peek(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + fences;
                    break;
                }
            }
            if c == '\n' {
                self.line += 1;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokenKind::Str, text, start_line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let start_line = self.line;
        // `'a` with no closing quote within two characters is a lifetime;
        // `'a'`, `'\n'` are char literals.
        let one = self.peek(1);
        let two = self.peek(2);
        let is_char = matches!((one, two), (Some('\\'), _) | (Some(_), Some('\'')));
        if !is_char {
            // Lifetime: consume `'` + identifier.
            self.pos += 1;
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, start_line);
            return;
        }
        self.pos += 1; // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                if let Some(next) = self.peek(1) {
                    text.push(next);
                }
                self.pos += 2;
                continue;
            }
            if c == '\'' {
                self.pos += 1;
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.push(TokenKind::Char, text, start_line);
    }

    fn number(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            // Accept digits, radix prefixes, underscores, type suffixes
            // and float forms; precision is unnecessary — rules only need
            // numbers to not be mistaken for identifiers.
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                // A `..` range after an integer is punctuation.
                if c == '.' && self.peek(1) == Some('.') {
                    break;
                }
                // `1.method()` — treat the dot as punctuation.
                if c == '.' && self.peek(1).is_some_and(|n| n.is_alphabetic() || n == '_') {
                    break;
                }
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, start_line);
    }

    fn ident(&mut self) {
        let start_line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = foo(y);");
        assert_eq!(t[0], (TokenKind::Ident, "let".into()));
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
        assert_eq!(t[2], (TokenKind::Punct, "=".into()));
        assert_eq!(t[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(t[4], (TokenKind::Punct, "(".into()));
    }

    #[test]
    fn strings_do_not_leak_idents() {
        // "HashMap" inside a string literal must not lex as an identifier.
        let t = kinds(r#"let s = "HashMap iteration";"#);
        assert!(t
            .iter()
            .all(|(k, text)| *k != TokenKind::Ident || text != "HashMap"));
        assert!(t
            .iter()
            .any(|(k, text)| *k == TokenKind::Str && text.contains("HashMap")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = kinds(r##"let s = r#"a "quoted" thing"#; let y = 1;"##);
        assert!(t
            .iter()
            .any(|(k, text)| *k == TokenKind::Str && text.contains("quoted")));
        assert!(t
            .iter()
            .any(|(k, text)| *k == TokenKind::Ident && text == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(t.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_and_doc_comments() {
        let src = "/// doc\n// seal-lint: allow(x)\nfn f() {}\n/* block */ /** docblock */";
        let t = kinds(src);
        assert_eq!(
            t.iter()
                .filter(|(k, _)| *k == TokenKind::DocComment)
                .count(),
            2
        );
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Comment).count(),
            2
        );
        assert!(t
            .iter()
            .any(|(k, text)| *k == TokenKind::Comment && text.contains("seal-lint")));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb\n/* c1\nc2 */\nc";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn unwrap_after_number_is_ident() {
        let t = kinds("x.1.unwrap()");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
    }
}
