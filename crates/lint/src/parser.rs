//! A dependency-free recursive-descent parser over the lexer's token
//! stream, producing the lightweight item/statement AST the ordering
//! rules analyse.
//!
//! The parser is deliberately *approximate*: it recognises exactly the
//! structure the dataflow pass needs — function definitions (including
//! `impl Drop for` methods), call sites, branch alternatives (`if`/
//! `else` chains and `match` arms) and loop bodies — and degrades
//! gracefully on anything else by skipping tokens. It never panics on
//! malformed input; a misparse costs precision, not correctness of the
//! surrounding build.
//!
//! Shapes the parser understands:
//! - `ident(...)`, `recv.ident(...)`, `path::ident(...)` and turbofish
//!   `ident::<T>(...)` are [`CallSite`]s; `ident!(...)` is a macro, not
//!   a call (so `write!` never looks like a pointer write).
//! - `if`/`else if`/`else` chains and `match` arms become a
//!   [`Stmt::Branch`] holding one block per alternative; an `if` with
//!   no `else` carries an implicit empty arm.
//! - `loop`/`while`/`for` bodies become [`Stmt::Loop`].
//! - Bare nested blocks (`{ ... }`, including the diverging arm of
//!   `let`-`else`) are treated as a single-alternative branch so their
//!   effects never count as guaranteed.

use crate::lexer::{Token, TokenKind};

/// One function definition with its parsed body.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name (no path).
    pub name: String,
    /// Self type when defined inside an `impl` block.
    pub impl_ty: Option<String>,
    /// True when the enclosing impl is `impl Drop for ...`.
    pub is_drop: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The function body.
    pub body: Block,
}

/// A `{ ... }` region: an ordered statement list.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// The statement shapes the dataflow pass distinguishes.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A call site, in evaluation-order position.
    Call(CallSite),
    /// Mutually exclusive alternatives (if/else arms, match arms). An
    /// `if` without `else` carries an implicit empty arm.
    Branch(Vec<Block>),
    /// A loop body, which may execute zero or more times.
    Loop(Block),
}

/// One resolved call: `name(...)`, `recv.name(...)` or `path::name(...)`.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The called function or method name (last path segment).
    pub name: String,
    /// The receiver or path segment directly before the name, if any.
    pub recv: Option<String>,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Keywords that can never be call names.
const KEYWORDS: [&str; 30] = [
    "if", "else", "match", "while", "for", "loop", "return", "let", "fn", "move", "unsafe", "as",
    "in", "ref", "mut", "pub", "use", "where", "impl", "dyn", "break", "continue", "await",
    "async", "struct", "enum", "trait", "type", "const", "static",
];

/// Parses the code view (`code` indexes into `tokens`, comments and
/// test-masked tokens already removed) into function definitions.
pub fn parse(tokens: &[Token], code: &[usize]) -> Vec<FnDef> {
    let view: Vec<&Token> = code.iter().map(|&i| &tokens[i]).collect();
    let mut p = Parser {
        t: view,
        pos: 0,
        fns: Vec::new(),
    };
    p.items(&None);
    p.fns
}

struct Parser<'a> {
    t: Vec<&'a Token>,
    pos: usize,
    fns: Vec<FnDef>,
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&'a Token> {
        self.t.get(at).copied()
    }

    fn at_ident(&self, s: &str) -> bool {
        self.tok(self.pos).is_some_and(|t| t.is_ident(s))
    }

    fn at_punct(&self, c: char) -> bool {
        self.tok(self.pos).is_some_and(|t| t.is_punct(c))
    }

    /// Item loop: runs until end of stream or a closing `}` (left for
    /// the caller to consume).
    fn items(&mut self, impl_ctx: &Option<(Option<String>, bool)>) {
        while self.pos < self.t.len() {
            let start = self.pos;
            if self.at_punct('}') {
                return;
            }
            if self.at_punct('#') {
                self.skip_attr();
            } else if self.at_ident("fn") {
                self.function(impl_ctx);
            } else if self.at_ident("impl") {
                self.impl_block();
            } else if self.at_ident("mod") || self.at_ident("trait") {
                self.mod_or_trait();
            } else if self.at_punct('{') {
                // struct/enum/const bodies at item level: skip wholesale.
                self.skip_balanced('{', '}');
            } else {
                self.pos += 1;
            }
            if self.pos == start {
                self.pos += 1; // safety: always make progress
            }
        }
    }

    /// Skips `#[...]` / `#![...]` (pos at `#`).
    fn skip_attr(&mut self) {
        self.pos += 1; // '#'
        if self.at_punct('!') {
            self.pos += 1;
        }
        if self.at_punct('[') {
            self.skip_balanced('[', ']');
        }
    }

    /// Skips a balanced delimiter region (pos at the opener).
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// `impl [Trait for] Type { items }` — pos at `impl`.
    fn impl_block(&mut self) {
        self.pos += 1; // 'impl'
        let mut saw_for = false;
        let mut is_drop = false;
        let mut impl_ty: Option<String> = None;
        let mut depth = 0usize; // (), []
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct(';') {
                    self.pos += 1;
                    return;
                }
                if t.is_ident("for") {
                    saw_for = true;
                    impl_ty = None;
                } else if t.kind == TokenKind::Ident {
                    if !saw_for && t.text == "Drop" {
                        is_drop = true;
                    }
                    let skip = matches!(t.text.as_str(), "crate" | "super" | "self" | "dyn");
                    if impl_ty.is_none() && !skip && !KEYWORDS.contains(&t.text.as_str()) {
                        impl_ty = Some(t.text.clone());
                    }
                }
            }
            self.pos += 1;
        }
        // `impl Drop for X`: only a trait impl of Drop counts.
        let is_drop = is_drop && saw_for;
        if self.at_punct('{') {
            self.pos += 1;
            self.items(&Some((impl_ty, is_drop)));
            if self.at_punct('}') {
                self.pos += 1;
            }
        }
    }

    /// `mod name { items }` / `trait Name { default methods }`.
    fn mod_or_trait(&mut self) {
        self.pos += 1; // keyword
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('{') {
                self.pos += 1;
                self.items(&None);
                if self.at_punct('}') {
                    self.pos += 1;
                }
                return;
            }
            if t.is_punct(';') {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// `fn name(sig) [-> T] { body }` — pos at `fn`.
    fn function(&mut self, impl_ctx: &Option<(Option<String>, bool)>) {
        let line = self.tok(self.pos).map_or(0, |t| t.line);
        self.pos += 1; // 'fn'
        let Some(name_tok) = self.tok(self.pos) else {
            return;
        };
        if name_tok.kind != TokenKind::Ident {
            return; // `fn(u8)` pointer type etc.
        }
        let name = name_tok.text.clone();
        self.pos += 1;
        // Signature: skip to the body `{` (or `;` for trait signatures)
        // at paren/bracket depth zero.
        let mut depth = 0usize;
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct(';') {
                    self.pos += 1;
                    return; // bodyless trait signature
                }
            }
            self.pos += 1;
        }
        if !self.at_punct('{') {
            return;
        }
        let body = self.block();
        let (impl_ty, is_drop) = match impl_ctx {
            Some((ty, d)) => (ty.clone(), *d),
            None => (None, false),
        };
        self.fns.push(FnDef {
            name,
            impl_ty,
            is_drop,
            line,
            body,
        });
    }

    /// `{ stmts }` — pos at `{`; consumes the closing `}`.
    fn block(&mut self) -> Block {
        let mut blk = Block::default();
        if !self.at_punct('{') {
            return blk;
        }
        self.pos += 1;
        while self.pos < self.t.len() {
            let start = self.pos;
            if self.at_punct('}') {
                self.pos += 1;
                return blk;
            }
            if self.at_punct('#') {
                self.skip_attr();
            } else if self.at_ident("if") {
                let stmt = self.if_stmt(&mut blk.stmts);
                blk.stmts.push(stmt);
            } else if self.at_ident("match") {
                let stmt = self.match_stmt(&mut blk.stmts);
                blk.stmts.push(stmt);
            } else if self.at_ident("loop") {
                self.pos += 1;
                if self.at_punct('{') {
                    let body = self.block();
                    blk.stmts.push(Stmt::Loop(body));
                }
            } else if self.at_ident("while") || self.at_ident("for") {
                self.pos += 1;
                self.header_calls(&mut blk.stmts);
                if self.at_punct('{') {
                    let body = self.block();
                    blk.stmts.push(Stmt::Loop(body));
                }
            } else if self.at_punct('{') {
                // Bare nested block (incl. the diverging `let`-`else`
                // arm): effects may happen, but are never guaranteed.
                let inner = self.block();
                blk.stmts.push(Stmt::Branch(vec![inner, Block::default()]));
            } else if self.at_punct(';') {
                self.pos += 1;
            } else {
                self.simple_stmt(&mut blk.stmts);
            }
            if self.pos == start {
                self.pos += 1; // safety: always make progress
            }
        }
        blk
    }

    /// Scans a statement that is not itself a branch/loop, extracting
    /// call sites in evaluation order. Stops (without consuming) at a
    /// control keyword, `{` or `}` at depth zero; consumes a
    /// terminating `;`.
    fn simple_stmt(&mut self, out: &mut Vec<Stmt>) {
        let mut depth = 0usize; // (), []
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 {
                if t.is_punct(';') {
                    self.pos += 1;
                    return;
                }
                if t.is_punct('{') || t.is_punct('}') {
                    return;
                }
                if t.kind == TokenKind::Ident
                    && matches!(t.text.as_str(), "if" | "match" | "loop" | "while" | "for")
                {
                    return;
                }
            }
            if t.kind == TokenKind::Ident {
                self.maybe_call(out);
            }
            self.pos += 1;
        }
    }

    /// Extracts calls from an `if`/`while`/`for`/`match` header up to
    /// the body `{` at paren depth zero (not consumed).
    fn header_calls(&mut self, out: &mut Vec<Stmt>) {
        let mut depth = 0usize;
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct('{') {
                return;
            }
            if t.kind == TokenKind::Ident {
                self.maybe_call(out);
            }
            self.pos += 1;
        }
    }

    /// `if cond { .. } [else if .. | else { .. }]` — pos at `if`.
    /// Header calls are pushed to `pre` (they always execute).
    fn if_stmt(&mut self, pre: &mut Vec<Stmt>) -> Stmt {
        self.pos += 1; // 'if'
        self.header_calls(pre);
        let then_blk = self.block();
        let else_blk = if self.at_ident("else") {
            self.pos += 1;
            if self.at_ident("if") {
                let mut stmts = Vec::new();
                let nested = self.if_stmt(&mut stmts);
                stmts.push(nested);
                Block { stmts }
            } else {
                self.block()
            }
        } else {
            Block::default()
        };
        Stmt::Branch(vec![then_blk, else_blk])
    }

    /// `match scrutinee { arms }` — pos at `match`. Header calls go to
    /// `pre`; each arm becomes one branch alternative.
    fn match_stmt(&mut self, pre: &mut Vec<Stmt>) -> Stmt {
        self.pos += 1; // 'match'
        self.header_calls(pre);
        if !self.at_punct('{') {
            return Stmt::Branch(Vec::new());
        }
        self.pos += 1;
        let mut arms: Vec<Block> = Vec::new();
        while self.pos < self.t.len() {
            if self.at_punct('}') {
                self.pos += 1;
                break;
            }
            let mut arm = Block::default();
            if !self.match_arm_pattern(&mut arm.stmts) {
                break; // malformed: bail at the region end
            }
            self.match_arm_body(&mut arm);
            arms.push(arm);
        }
        Stmt::Branch(arms)
    }

    /// Scans a match arm's pattern (and guard) up to `=>`, collecting
    /// guard calls. Returns false if the arm region ended instead.
    fn match_arm_pattern(&mut self, out: &mut Vec<Stmt>) -> bool {
        let mut depth = 0usize; // (), [], {}
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('}') {
                if depth == 0 {
                    return false; // end of the match region
                }
                depth -= 1;
            } else if depth == 0
                && t.is_punct('=')
                && self.tok(self.pos + 1).is_some_and(|n| n.is_punct('>'))
            {
                self.pos += 2; // '=>'
                return true;
            }
            if t.kind == TokenKind::Ident {
                self.maybe_call(out);
            }
            self.pos += 1;
        }
        false
    }

    /// Scans a match arm's body: a block, or an expression up to `,`
    /// or the closing `}` at depth zero.
    fn match_arm_body(&mut self, arm: &mut Block) {
        if self.at_punct('{') {
            let body = self.block();
            arm.stmts.extend(body.stmts);
            if self.at_punct(',') {
                self.pos += 1;
            }
            return;
        }
        let mut depth = 0usize; // (), [], {} — nested exprs scan linearly
        while let Some(t) = self.tok(self.pos) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct('}') {
                if depth == 0 {
                    return; // closing `}` of the match: leave it
                }
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                self.pos += 1;
                return;
            }
            if t.kind == TokenKind::Ident {
                self.maybe_call(&mut arm.stmts);
            }
            self.pos += 1;
        }
    }

    /// If the ident at `pos` heads a call (`name(`, `name::<T>(`), and
    /// is not a keyword or macro name (`name!`), records a [`CallSite`].
    /// Never advances `pos` past the ident — delimiters stay visible to
    /// the caller's depth tracking.
    fn maybe_call(&mut self, out: &mut Vec<Stmt>) {
        let Some(t) = self.tok(self.pos) else {
            return;
        };
        if KEYWORDS.contains(&t.text.as_str()) {
            return;
        }
        let mut j = self.pos + 1;
        // Turbofish: `name::<T...>(`.
        if self.tok(j).is_some_and(|a| a.is_punct(':'))
            && self.tok(j + 1).is_some_and(|a| a.is_punct(':'))
            && self.tok(j + 2).is_some_and(|a| a.is_punct('<'))
        {
            let mut angle = 0usize;
            let mut k = j + 2;
            while let Some(a) = self.tok(k) {
                if a.is_punct('<') {
                    angle += 1;
                } else if a.is_punct('>') {
                    angle = angle.saturating_sub(1);
                    if angle == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if !self.tok(j).is_some_and(|a| a.is_punct('(')) {
            return;
        }
        if self.tok(self.pos + 1).is_some_and(|a| a.is_punct('!')) {
            return; // macro, not a call
        }
        // Receiver: `recv.name(` or `path::name(`.
        let recv = if self.pos >= 2 && self.tok(self.pos - 1).is_some_and(|a| a.is_punct('.')) {
            self.tok(self.pos - 2)
                .filter(|a| a.kind == TokenKind::Ident)
                .map(|a| a.text.clone())
        } else if self.pos >= 3
            && self.tok(self.pos - 1).is_some_and(|a| a.is_punct(':'))
            && self.tok(self.pos - 2).is_some_and(|a| a.is_punct(':'))
        {
            self.tok(self.pos - 3)
                .filter(|a| a.kind == TokenKind::Ident)
                .map(|a| a.text.clone())
        } else {
            None
        };
        out.push(Stmt::Call(CallSite {
            name: t.text.clone(),
            recv,
            line: t.line,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Vec<FnDef> {
        let tokens = lex(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !matches!(tokens[i].kind, TokenKind::Comment | TokenKind::DocComment))
            .collect();
        parse(&tokens, &code)
    }

    fn calls(block: &Block) -> Vec<String> {
        let mut out = Vec::new();
        collect_calls(block, &mut out);
        out
    }

    fn collect_calls(block: &Block, out: &mut Vec<String>) {
        for s in &block.stmts {
            match s {
                Stmt::Call(c) => out.push(c.name.clone()),
                Stmt::Branch(arms) => {
                    for a in arms {
                        collect_calls(a, out);
                    }
                }
                Stmt::Loop(b) => collect_calls(b, out),
            }
        }
    }

    #[test]
    fn plain_calls_in_order() {
        let fns = parse_src("fn f(x: &mut Db) { x.sync_wal(); ack(1); }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert_eq!(calls(&fns[0].body), ["sync_wal", "ack"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let fns = parse_src("fn f() { write!(w, \"x\")?; println!(\"y\"); g(); }");
        assert_eq!(calls(&fns[0].body), ["g"]);
    }

    #[test]
    fn turbofish_and_paths() {
        let fns = parse_src("fn f() { Vec::<u8>::new(); it.collect::<Vec<_>>(); }");
        assert_eq!(calls(&fns[0].body), ["new", "collect"]);
    }

    #[test]
    fn if_else_becomes_branch() {
        let fns = parse_src("fn f(c: bool) { if c { a(); } else { b(); } d(); }");
        let body = &fns[0].body;
        assert_eq!(body.stmts.len(), 2);
        match &body.stmts[0] {
            Stmt::Branch(arms) => {
                assert_eq!(arms.len(), 2);
                assert_eq!(calls(&arms[0]), ["a"]);
                assert_eq!(calls(&arms[1]), ["b"]);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_without_else_gets_empty_arm() {
        let fns = parse_src("fn f(c: bool) { if c { a(); } }");
        match &fns[0].body.stmts[0] {
            Stmt::Branch(arms) => {
                assert_eq!(arms.len(), 2);
                assert!(arms[1].stmts.is_empty());
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn match_arms_are_alternatives() {
        let fns = parse_src("fn f(x: u8) { match x { 0 => a(), 1 => { b(); c(); } _ => {} } }");
        match &fns[0].body.stmts[0] {
            Stmt::Branch(arms) => {
                assert_eq!(arms.len(), 3);
                assert_eq!(calls(&arms[0]), ["a"]);
                assert_eq!(calls(&arms[1]), ["b", "c"]);
                assert!(arms[2].stmts.is_empty());
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn loops_and_headers() {
        let fns = parse_src("fn f(v: &[u8]) { for x in v.iter() { g(x); } }");
        let body = &fns[0].body;
        // `iter` from the header, then the loop.
        assert_eq!(calls(body), ["iter", "g"]);
        assert!(matches!(body.stmts[1], Stmt::Loop(_)));
    }

    #[test]
    fn drop_impls_are_recognised() {
        let fns = parse_src(
            "impl Drop for Flusher { fn drop(&mut self) { self.db.sync_wal(); } }\n\
             impl Flusher { fn poke(&self) {} }",
        );
        assert_eq!(fns.len(), 2);
        assert!(fns[0].is_drop);
        assert_eq!(fns[0].name, "drop");
        assert_eq!(fns[0].impl_ty.as_deref(), Some("Flusher"));
        assert!(!fns[1].is_drop);
        assert_eq!(fns[1].impl_ty.as_deref(), Some("Flusher"));
    }

    #[test]
    fn let_else_arm_is_not_guaranteed() {
        let fns = parse_src(
            "fn f(y: Option<u8>) { let Some(x) = y else { early(); return; }; late(x); }",
        );
        let body = &fns[0].body;
        // `early` sits under a Branch (not guaranteed), `late` at top
        // level. (`Some(x)` in the pattern scans as a harmless call —
        // tuple-struct patterns are indistinguishable from calls at
        // token level, and `Some` carries no effects.)
        let mut top = Vec::new();
        for s in &body.stmts {
            if let Stmt::Call(c) = s {
                top.push(c.name.clone());
            }
        }
        assert_eq!(top, ["Some", "late"]);
        assert!(calls(body).contains(&"early".to_string()));
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let fns = parse_src("trait T { fn a(&self); fn b(&self) { helper(); } }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "b");
    }

    #[test]
    fn receivers_are_captured() {
        let fns = parse_src("fn f() { db.write(b); Store::open(x); }");
        let mut sites = Vec::new();
        for s in &fns[0].body.stmts {
            if let Stmt::Call(c) = s {
                sites.push((c.name.clone(), c.recv.clone()));
            }
        }
        assert_eq!(
            sites,
            [
                ("write".to_string(), Some("db".to_string())),
                ("open".to_string(), Some("Store".to_string())),
            ]
        );
    }
}
