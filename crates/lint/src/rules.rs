//! The rule catalogue and the per-file checking engine.
//!
//! Rules operate on the token stream produced by [`crate::lexer`]. Two
//! stream-wide analyses run before any rule: test-code masking (tokens
//! inside `#[cfg(test)]`-gated modules and `#[test]` functions are
//! invisible to every rule — tests may unwrap freely) and suppression
//! collection (`// seal-lint: allow(rule-name)` on the same line or the
//! line above a finding silences it).

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// The enforced invariants. See `DESIGN.md` §11 for the full catalogue
/// with rationale and examples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Instant`/`SystemTime` outside the bench crate: simulated results
    /// must be a pure function of the seed, never of the host clock.
    NoWallClock,
    /// `thread_rng`/`RandomState`/argless `from_entropy`: all randomness
    /// must flow from an explicit seed.
    NoAmbientRandomness,
    /// `HashMap`/`HashSet` in artifact-adjacent modules: anything that
    /// feeds metrics, JSON/CSV artifacts or manifest bytes must iterate
    /// in a defined order (`BTreeMap`/`BTreeSet`, or an explicit sort).
    NoUnorderedIteration,
    /// `.unwrap()`/`.expect()` in WAL/manifest/crash-restore paths:
    /// recovery must degrade to contextful errors, never panic.
    NoUnwrapInRecovery,
    /// Corruption errors built from a bare string literal: recovery
    /// diagnostics must say *where* (file, offset, record) the bad bytes
    /// live.
    ErrorContext,
    /// Truncating integer casts (`as u32` and narrower) in
    /// byte-accounting code, where silent wraparound corrupts WA/AWA/MWA.
    NoLossyCastInAccounting,
    /// Metric names passed to the obs layer must be snake_case and the
    /// call must name a declared `ObsLayer`.
    ObsMetricNaming,
    /// Public items of library crates carry doc comments.
    PubItemDocs,
    /// A write acknowledgement must be dominated by a durability
    /// barrier (`sync_wal`/`append_durable`) on every path.
    SyncBeforeAck,
    /// Value-log pointers must not reach the WAL before the segment
    /// directory checkpoint commits (the PR 8 bug class).
    CheckpointBeforePointer,
    /// Repair/salvage of damaged storage must be dominated by a fence
    /// (`quarantine_extent`/`seal`) on every path.
    FenceBeforeRepair,
    /// Segment recycle must be dominated by a durability barrier so
    /// pointer fixups are on stable media before bytes are freed.
    RecycleAfterFixupsDurable,
    /// No durability work (`sync`/checkpoint) reachable from `Drop`
    /// impls, where ordering at crash is undefined.
    NoDurabilityInDrop,
}

impl Rule {
    /// Every rule, in diagnostic order.
    pub const ALL: [Rule; 13] = [
        Rule::NoWallClock,
        Rule::NoAmbientRandomness,
        Rule::NoUnorderedIteration,
        Rule::NoUnwrapInRecovery,
        Rule::ErrorContext,
        Rule::NoLossyCastInAccounting,
        Rule::ObsMetricNaming,
        Rule::PubItemDocs,
        Rule::SyncBeforeAck,
        Rule::CheckpointBeforePointer,
        Rule::FenceBeforeRepair,
        Rule::RecycleAfterFixupsDurable,
        Rule::NoDurabilityInDrop,
    ];

    /// Stable kebab-case name used in diagnostics and suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoAmbientRandomness => "no-ambient-randomness",
            Rule::NoUnorderedIteration => "no-unordered-iteration",
            Rule::NoUnwrapInRecovery => "no-unwrap-in-recovery",
            Rule::ErrorContext => "error-context",
            Rule::NoLossyCastInAccounting => "no-lossy-cast-in-accounting",
            Rule::ObsMetricNaming => "obs-metric-naming",
            Rule::PubItemDocs => "pub-item-docs",
            Rule::SyncBeforeAck => "sync-before-ack",
            Rule::CheckpointBeforePointer => "checkpoint-before-pointer",
            Rule::FenceBeforeRepair => "fence-before-repair",
            Rule::RecycleAfterFixupsDurable => "recycle-after-fixups-durable",
            Rule::NoDurabilityInDrop => "no-durability-in-drop",
        }
    }

    /// Parses a kebab-case rule name (for suppression comments).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description shown by `seal-lint --rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NoWallClock => "no Instant/SystemTime outside the bench crate",
            Rule::NoAmbientRandomness => "no thread_rng/RandomState/argless from_entropy",
            Rule::NoUnorderedIteration => {
                "no HashMap/HashSet in modules that feed artifacts or manifests"
            }
            Rule::NoUnwrapInRecovery => "no unwrap/expect in WAL/manifest/crash-restore paths",
            Rule::ErrorContext => "corruption errors must carry file/offset context",
            Rule::NoLossyCastInAccounting => "no truncating casts in byte-accounting code",
            Rule::ObsMetricNaming => {
                "metric names snake_case, registered under a declared ObsLayer"
            }
            Rule::PubItemDocs => "public items of library crates carry doc comments",
            Rule::SyncBeforeAck => "write acks dominated by a durability barrier on every path",
            Rule::CheckpointBeforePointer => {
                "segment-directory checkpoint commits before vlog pointers reach the WAL"
            }
            Rule::FenceBeforeRepair => "repair/salvage dominated by a fence on every path",
            Rule::RecycleAfterFixupsDurable => {
                "segment recycle dominated by durable pointer fixups"
            }
            Rule::NoDurabilityInDrop => "no sync/checkpoint work reachable from Drop impls",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violated at a file and line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Convenience for single-file checks (unit tests, doc examples): the
/// call-graph summary layer sees only this file's own functions.
pub fn check_source(path: &str, src: &str, rules: &[Rule]) -> Vec<Finding> {
    let tokens = lex(src);
    let test_mask = mask_test_code(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(tokens[i].kind, TokenKind::Comment | TokenKind::DocComment) && !test_mask[i]
        })
        .collect();
    let fns = crate::parser::parse(&tokens, &code);
    let summaries = crate::dataflow::summarize(&fns);
    check_file(path, src, rules, &summaries)
}

/// Checks one file's source against `rules`, honouring suppression
/// comments and skipping test-gated code. `path` is only stamped into
/// findings; scoping decisions happen in [`crate::lint_root`], which
/// also computes the cross-file call-graph `summaries`.
pub fn check_file(
    path: &str,
    src: &str,
    rules: &[Rule],
    summaries: &crate::dataflow::Summaries,
) -> Vec<Finding> {
    let tokens = lex(src);
    let suppressed = collect_suppressions(&tokens);
    let test_mask = mask_test_code(&tokens);
    // Code view: comments and doc comments removed, with a map back to
    // the full stream so the test mask stays aligned.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(tokens[i].kind, TokenKind::Comment | TokenKind::DocComment) && !test_mask[i]
        })
        .collect();
    let mut out = Vec::new();
    let mut emit = |line: u32, rule: Rule, message: String| {
        let hit = |l: u32| suppressed.get(&l).is_some_and(|set| set.contains(&rule));
        if !(hit(line) || (line > 1 && hit(line - 1))) {
            out.push(Finding {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };
    let mut ordering_rules: Vec<Rule> = Vec::new();
    for &rule in rules {
        match rule {
            Rule::NoWallClock => no_wall_clock(&tokens, &code, rule, &mut emit),
            Rule::NoAmbientRandomness => no_ambient_randomness(&tokens, &code, rule, &mut emit),
            Rule::NoUnorderedIteration => no_unordered_iteration(&tokens, &code, rule, &mut emit),
            Rule::NoUnwrapInRecovery => no_unwrap_in_recovery(&tokens, &code, rule, &mut emit),
            Rule::ErrorContext => error_context(&tokens, &code, rule, &mut emit),
            Rule::NoLossyCastInAccounting => no_lossy_cast(&tokens, &code, rule, &mut emit),
            Rule::ObsMetricNaming => obs_metric_naming(&tokens, &code, rule, &mut emit),
            Rule::PubItemDocs => pub_item_docs(&tokens, &test_mask, rule, &mut emit),
            Rule::SyncBeforeAck
            | Rule::CheckpointBeforePointer
            | Rule::FenceBeforeRepair
            | Rule::RecycleAfterFixupsDurable
            | Rule::NoDurabilityInDrop => ordering_rules.push(rule),
        }
    }
    if !ordering_rules.is_empty() {
        let fns = crate::parser::parse(&tokens, &code);
        for f in &fns {
            crate::dataflow::check_fn(f, summaries, &ordering_rules, &mut emit);
        }
    }
    out.sort();
    out
}

/// Parses `// seal-lint: allow(rule-a, rule-b)` comments into a line →
/// allowed-rules map. A suppression covers findings on its own line and
/// on the line directly below it (comment-above style).
fn collect_suppressions(tokens: &[Token]) -> BTreeMap<u32, Vec<Rule>> {
    let mut map: BTreeMap<u32, Vec<Rule>> = BTreeMap::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::Comment | TokenKind::DocComment) {
            continue;
        }
        let Some(at) = t.text.find("seal-lint:") else {
            continue;
        };
        let rest = &t.text[at + "seal-lint:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let Some(close) = rest[open..].find(')') else {
            continue;
        };
        let inner = &rest[open + "allow(".len()..open + close];
        let entry = map.entry(t.line).or_default();
        for name in inner.split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                entry.push(rule);
            }
        }
    }
    map
}

/// Marks tokens inside `#[cfg(test)]`-gated items and `#[test]`
/// functions. The mask is computed on the *full* stream (comments
/// included) so indices line up everywhere.
pub(crate) fn mask_test_code(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let attr = &tokens[attr_start..=j.min(tokens.len() - 1)];
        let has = |s: &str| attr.iter().any(|t| t.is_ident(s));
        // `#[test]` or `#[cfg(test)]` (but not `#[cfg(not(test))]`,
        // which gates *non*-test code).
        let gates_test = has("test") && !has("not");
        if !gates_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then the item header, up to the
        // body `{` (or a terminating `;` for brace-less items).
        let mut k = j + 1;
        while k < tokens.len() {
            if tokens[k].is_punct('#') && tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                let mut d = 0usize;
                while k < tokens.len() {
                    if tokens[k].is_punct('[') {
                        d += 1;
                    } else if tokens[k].is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k += 1;
                continue;
            }
            if tokens[k].is_punct(';') {
                // `#[cfg(test)] use ...;` — nothing to mask beyond it.
                break;
            }
            if tokens[k].is_punct('{') {
                // Mask the attribute, header and the whole body.
                let mut d = 0usize;
                let mut m = k;
                while m < tokens.len() {
                    if tokens[m].is_punct('{') {
                        d += 1;
                    } else if tokens[m].is_punct('}') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                for slot in mask
                    .iter_mut()
                    .take(m.min(tokens.len() - 1) + 1)
                    .skip(attr_start)
                {
                    *slot = true;
                }
                k = m;
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    mask
}

type Emit<'a> = dyn FnMut(u32, Rule, String) + 'a;

fn no_wall_clock(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for &i in code {
        let t = &tokens[i];
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            emit(
                t.line,
                rule,
                format!(
                    "`{}` reads the host clock; simulated results must be a pure \
                     function of the seed (use the simulated clock, or move timing \
                     into crates/bench)",
                    t.text
                ),
            );
        }
    }
}

fn no_ambient_randomness(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.is_ident("thread_rng") || t.is_ident("RandomState") {
            emit(
                t.line,
                rule,
                format!(
                    "`{}` draws ambient entropy; derive all randomness from an \
                     explicit seed instead",
                    t.text
                ),
            );
        }
        // `from_entropy()` with no arguments; `from_entropy(seed)` or a
        // mere mention in a path is fine.
        if t.is_ident("from_entropy")
            && code.get(pos + 1).is_some_and(|&a| tokens[a].is_punct('('))
            && code.get(pos + 2).is_some_and(|&a| tokens[a].is_punct(')'))
        {
            emit(
                t.line,
                rule,
                "argless `from_entropy()` seeds from the OS; thread an explicit \
                 seed through instead"
                    .to_string(),
            );
        }
    }
}

fn no_unordered_iteration(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for &i in code {
        let t = &tokens[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            let ordered = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            emit(
                t.line,
                rule,
                format!(
                    "`{}` in an artifact-adjacent module: iteration order feeds \
                     exported bytes; use `{}` or sort explicitly before export",
                    t.text, ordered
                ),
            );
        }
    }
}

fn no_unwrap_in_recovery(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        let is_call = (t.is_ident("unwrap") || t.is_ident("expect"))
            && pos > 0
            && tokens[code[pos - 1]].is_punct('.')
            && code.get(pos + 1).is_some_and(|&a| tokens[a].is_punct('('));
        if is_call {
            emit(
                t.line,
                rule,
                format!(
                    "`.{}()` in a recovery path can turn a recoverable torn tail \
                     into a panic; return a contextful error instead",
                    t.text
                ),
            );
        }
    }
}

fn error_context(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        // `corruption("literal")` / `Corruption("literal"...)`: the next
        // code token after `(` being a bare string literal means no
        // file/offset/record context was formatted in.
        if (t.is_ident("corruption") || t.is_ident("Corruption"))
            && code.get(pos + 1).is_some_and(|&a| tokens[a].is_punct('('))
            && code
                .get(pos + 2)
                .is_some_and(|&a| tokens[a].kind == TokenKind::Str)
        {
            emit(
                t.line,
                rule,
                "corruption error built from a bare string literal; include where \
                 the bad bytes live (file id, byte offset, record index)"
                    .to_string(),
            );
        }
    }
}

const LOSSY_CAST_TARGETS: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

fn no_lossy_cast(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if !t.is_ident("as") {
            continue;
        }
        if let Some(&n) = code.get(pos + 1) {
            let target = &tokens[n];
            if target.kind == TokenKind::Ident && LOSSY_CAST_TARGETS.contains(&target.text.as_str())
            {
                emit(
                    t.line,
                    rule,
                    format!(
                        "`as {}` silently truncates in byte-accounting code; use \
                         `try_from` with an error, or keep the wider type",
                        target.text
                    ),
                );
            }
        }
    }
}

const OBS_SINKS: [&str; 3] = ["counter_add", "gauge_set", "latency"];

fn obs_metric_naming(tokens: &[Token], code: &[usize], rule: Rule, emit: &mut Emit) {
    for (pos, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        let is_sink_call = t.kind == TokenKind::Ident
            && OBS_SINKS.contains(&t.text.as_str())
            && pos > 0
            && tokens[code[pos - 1]].is_punct('.')
            && code.get(pos + 1).is_some_and(|&a| tokens[a].is_punct('('));
        if !is_sink_call {
            continue;
        }
        // Walk the argument list to the matching `)`.
        let mut depth = 0usize;
        let mut first_arg: Option<&Token> = None;
        let mut names: Vec<&Token> = Vec::new();
        for &a in &code[pos + 1..] {
            let tok = &tokens[a];
            if tok.is_punct('(') {
                depth += 1;
                continue;
            }
            if tok.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                continue;
            }
            if depth == 1 {
                if first_arg.is_none() {
                    first_arg = Some(tok);
                }
                if tok.kind == TokenKind::Str {
                    names.push(tok);
                }
            }
        }
        // The layer argument must be a declared `ObsLayer` variant or a
        // lowercase local carrying one.
        if let Some(arg) = first_arg {
            let declared = arg.is_ident("ObsLayer")
                || arg.is_ident("self")
                || (arg.kind == TokenKind::Ident
                    && arg.text.chars().next().is_some_and(|c| c.is_lowercase()));
            if !declared {
                emit(
                    t.line,
                    rule,
                    format!(
                        "`{}` call must register under a declared `ObsLayer` \
                         (got `{}`)",
                        t.text, arg.text
                    ),
                );
            }
        }
        for name in names {
            if !is_snake_case(&name.text) {
                emit(
                    name.line,
                    rule,
                    format!(
                        "metric name \"{}\" is not snake_case (lowercase letters, \
                         digits and underscores, starting with a letter)",
                        name.text
                    ),
                );
            }
        }
    }
}

fn is_snake_case(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

fn pub_item_docs(tokens: &[Token], test_mask: &[bool], rule: Rule, emit: &mut Emit) {
    // This rule needs doc comments, so it walks the full stream (minus
    // test code) rather than the comment-stripped view.
    let stream: Vec<usize> = (0..tokens.len())
        .filter(|&i| !test_mask[i] && tokens[i].kind != TokenKind::Comment)
        .collect();
    for (pos, &i) in stream.iter().enumerate() {
        let t = &tokens[i];
        if !t.is_ident("pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` items are not public API.
        if stream
            .get(pos + 1)
            .is_some_and(|&a| tokens[a].is_punct('('))
        {
            continue;
        }
        // Find the item keyword, skipping modifiers (`pub async unsafe fn`).
        let mut kw: Option<&Token> = None;
        for &a in stream.iter().skip(pos + 1).take(3) {
            let cand = &tokens[a];
            if cand.kind != TokenKind::Ident {
                break;
            }
            if ITEM_KEYWORDS.contains(&cand.text.as_str()) {
                kw = Some(cand);
                break;
            }
            if !matches!(cand.text.as_str(), "async" | "unsafe" | "extern") {
                break;
            }
        }
        let Some(kw) = kw else {
            continue;
        };
        // Walk backwards over attributes to the token before the item.
        let mut back = pos;
        loop {
            if back == 0 {
                break;
            }
            let prev = &tokens[stream[back - 1]];
            if prev.is_punct(']') {
                // Skip the attribute group `#[...]`.
                let mut depth = 0usize;
                let mut b = back - 1;
                loop {
                    let tok = &tokens[stream[b]];
                    if tok.is_punct(']') {
                        depth += 1;
                    } else if tok.is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if b == 0 {
                        break;
                    }
                    b -= 1;
                }
                // Expect `#` before the `[`.
                back = b.saturating_sub(1);
                continue;
            }
            break;
        }
        // Inner docs (`//!`, `/*!`) document the enclosing module, not
        // the item that happens to follow them.
        let documented = back > 0 && {
            let prev = &tokens[stream[back - 1]];
            prev.kind == TokenKind::DocComment
                && !prev.text.starts_with("//!")
                && !prev.text.starts_with("/*!")
        };
        if !documented {
            emit(
                t.line,
                rule,
                format!(
                    "public `{}` item lacks a doc comment; library crates document \
                     their public API",
                    kw.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, rules: &[Rule]) -> Vec<Finding> {
        check_source("f.rs", src, rules)
    }

    #[test]
    fn ordering_rules_route_through_the_dataflow_pass() {
        let bad = run(
            "fn f(db: &mut Db) { db.ack_write(1); }",
            &[Rule::SyncBeforeAck],
        );
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("sync_wal"));
        // Suppression comments work on dataflow findings too.
        let ok = run(
            "fn f(db: &mut Db) {\n    // seal-lint: allow(sync-before-ack)\n    db.ack_write(1);\n}",
            &[Rule::SyncBeforeAck],
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn wall_clock_flagged_and_suppressed() {
        let f = run("let t = Instant::now();", &[Rule::NoWallClock]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        let ok = run(
            "// seal-lint: allow(no-wall-clock)\nlet t = Instant::now();",
            &[Rule::NoWallClock],
        );
        assert!(ok.is_empty());
        let same_line = run(
            "let t = Instant::now(); // seal-lint: allow(no-wall-clock)",
            &[Rule::NoWallClock],
        );
        assert!(same_line.is_empty());
    }

    #[test]
    fn string_mentions_are_not_findings() {
        let f = run(r#"let s = "Instant::now and HashMap";"#, &Rule::ALL);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn randomness_variants() {
        let f = run(
            "let a = thread_rng(); let b = RandomState::new(); let c = Rng::from_entropy();",
            &[Rule::NoAmbientRandomness],
        );
        assert_eq!(f.len(), 3);
        // Seeded from_entropy(seed) is not ambient.
        let ok = run(
            "let c = Rng::from_entropy(seed);",
            &[Rule::NoAmbientRandomness],
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn unordered_iteration_and_unwraps() {
        let f = run(
            "use std::collections::HashMap;\nfn r() { x.unwrap(); y.expect(\"m\"); }",
            &[Rule::NoUnorderedIteration, Rule::NoUnwrapInRecovery],
        );
        assert_eq!(f.len(), 3);
        // `unwrap` as a free identifier (fn name) is not a call.
        let ok = run("fn unwrap() {}", &[Rule::NoUnwrapInRecovery]);
        assert!(ok.is_empty());
    }

    #[test]
    fn test_code_is_invisible() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let m = HashMap::new(); }\n}";
        assert!(run(src, &Rule::ALL).is_empty());
        let src2 = "#[test]\nfn t() { x.unwrap(); }";
        assert!(run(src2, &Rule::ALL).is_empty());
        // ...but cfg(not(test)) code is linted.
        let src3 = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(run(src3, &[Rule::NoUnwrapInRecovery]).len(), 1);
    }

    #[test]
    fn error_context_literal_vs_format() {
        let bad = run(r#"return corruption("bad crc");"#, &[Rule::ErrorContext]);
        assert_eq!(bad.len(), 1);
        let good = run(
            r#"return corruption(format!("bad crc at {off}"));"#,
            &[Rule::ErrorContext],
        );
        assert!(good.is_empty());
    }

    #[test]
    fn lossy_casts() {
        let f = run(
            "let x = total as u32; let y = n as u64;",
            &[Rule::NoLossyCastInAccounting],
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("as u32"));
    }

    #[test]
    fn metric_naming() {
        let bad = run(
            r#"obs.counter_add(ObsLayer::Device, "BadName", 1);"#,
            &[Rule::ObsMetricNaming],
        );
        assert_eq!(bad.len(), 1);
        let good = run(
            r#"obs.counter_add(ObsLayer::Device, "band_rmw_bytes", 1);"#,
            &[Rule::ObsMetricNaming],
        );
        assert!(good.is_empty());
        let undeclared = run(
            r#"obs.counter_add(LAYER, "ok_name", 1);"#,
            &[Rule::ObsMetricNaming],
        );
        assert_eq!(undeclared.len(), 1);
        assert!(undeclared[0].message.contains("ObsLayer"));
    }

    #[test]
    fn pub_docs() {
        let bad = run("pub fn f() {}", &[Rule::PubItemDocs]);
        assert_eq!(bad.len(), 1);
        let good = run("/// Documented.\npub fn f() {}", &[Rule::PubItemDocs]);
        assert!(good.is_empty());
        let attr = run(
            "/// Doc.\n#[derive(Debug)]\npub struct S;",
            &[Rule::PubItemDocs],
        );
        assert!(attr.is_empty());
        let crate_vis = run("pub(crate) fn f() {}", &[Rule::PubItemDocs]);
        assert!(crate_vis.is_empty());
        let field = run("struct S { pub x: u64 }", &[Rule::PubItemDocs]);
        assert!(field.is_empty());
    }

    #[test]
    fn findings_sort_deterministically() {
        let src = "let a = SystemTime::now();\nlet b = Instant::now();";
        let f = run(src, &[Rule::NoWallClock]);
        assert_eq!(f.len(), 2);
        assert!(f[0].line < f[1].line);
    }

    #[test]
    fn rule_names_roundtrip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
