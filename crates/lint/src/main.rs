//! CLI for seal-lint.
//!
//! `cargo run -p seal-lint --release` lints the workspace and exits
//! non-zero if any finding survives scoping, the allowlist and
//! suppression comments. `--rules` and `--allowlist` print the catalogue.

use seal_lint::config::default_allowlist;
use seal_lint::rules::Rule;
use seal_lint::{
    apply_baseline, lint_root, parse_baseline, render, render_json, BaselineEntry, Options,
};
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::workspace();
    let mut format = Format::Text;
    let mut baseline: Vec<BaselineEntry> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("seal-lint: --root requires a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--format" => {
                match args.next().as_deref() {
                    Some("text") => format = Format::Text,
                    Some("json") => format = Format::Json,
                    other => {
                        eprintln!("seal-lint: --format requires `text` or `json` (got {other:?})");
                        return ExitCode::from(2);
                    }
                };
            }
            "--baseline" => {
                let Some(file) = args.next() else {
                    eprintln!("seal-lint: --baseline requires a file path");
                    return ExitCode::from(2);
                };
                let text = match std::fs::read_to_string(&file) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("seal-lint: cannot read baseline {file}: {e}");
                        return ExitCode::from(2);
                    }
                };
                match parse_baseline(&text) {
                    Ok(entries) => baseline = entries,
                    Err(e) => {
                        eprintln!("seal-lint: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--everything" => opts = Options::everything(),
            "--rules" => {
                for rule in Rule::ALL {
                    println!("{:28} {}", rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--allowlist" => {
                for e in default_allowlist() {
                    println!("{:28} {:32} {}", e.rule.name(), e.pattern, e.justification);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "seal-lint: workspace static analysis for determinism and \
                     recovery safety\n\n\
                     usage: seal-lint [--root DIR] [--everything] [--format FMT] \
                     [--baseline FILE] [--rules] [--allowlist]\n\n\
                     --root DIR      lint DIR instead of the enclosing workspace\n\
                     --everything    run every rule on every file, ignoring scopes\n\
                     --format FMT    output format: text (default) or json\n\
                     --baseline FILE suppress findings listed in FILE (one\n\
                     \x20                `path-pattern: rule-name: justification` per line)\n\
                     --rules         print the rule catalogue and exit\n\
                     --allowlist     print the allowlist with justifications and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("seal-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match lint_root(&root, &opts) {
        Ok(findings) => {
            let (findings, stale) = apply_baseline(findings, &baseline);
            for i in &stale {
                let e = &baseline[*i];
                eprintln!(
                    "seal-lint: stale baseline entry `{}: {}` matched nothing \
                     (justified: {})",
                    e.pattern,
                    e.rule.name(),
                    e.justification
                );
            }
            match format {
                Format::Json => print!("{}", render_json(&findings)),
                Format::Text if findings.is_empty() => {
                    println!("seal-lint: clean ({})", root.display());
                }
                Format::Text => {
                    print!("{}", render(&findings));
                    println!("seal-lint: {} finding(s)", findings.len());
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("seal-lint: io error under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        Err(_) => PathBuf::from("."),
    }
}
