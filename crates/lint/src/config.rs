//! Rule scoping and the per-crate allowlist.
//!
//! Each rule applies to a *scope* — a set of workspace-relative path
//! patterns — and may be switched off for specific files by the
//! allowlist, which pairs every exemption with a written justification
//! (printed by `seal-lint --allowlist`). Paths always use `/` separators
//! relative to the workspace root, e.g. `crates/smr-sim/src/disk.rs`.

use crate::rules::Rule;

/// Matches workspace-relative paths against a small glob dialect:
/// `**` matches any number of path segments (including zero), `*`
/// matches any characters within one segment. Everything else is
/// literal.
pub fn path_matches(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` may absorb zero or more leading segments.
            (0..=segs.len()).any(|skip| match_segments(&pat[1..], &segs[skip..]))
        }
        Some(p) => match segs.first() {
            Some(s) if segment_matches(p, s) => match_segments(&pat[1..], &segs[1..]),
            _ => false,
        },
    }
}

fn segment_matches(pat: &str, seg: &str) -> bool {
    // `*` within one segment: split the pattern on stars and greedily
    // match the literal pieces left to right.
    if !pat.contains('*') {
        return pat == seg;
    }
    let pieces: Vec<&str> = pat.split('*').collect();
    let mut rest = seg;
    for (i, piece) in pieces.iter().enumerate() {
        if piece.is_empty() {
            continue;
        }
        if i == 0 {
            match rest.strip_prefix(piece) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == pieces.len() - 1 && !pat.ends_with('*') {
            return rest.ends_with(piece);
        } else {
            match rest.find(piece) {
                Some(at) => rest = &rest[at + piece.len()..],
                None => return false,
            }
        }
    }
    true
}

/// One allowlist entry: a rule switched off for files matching `pattern`,
/// with a human-readable justification.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// The rule being exempted.
    pub rule: Rule,
    /// Path pattern (see [`path_matches`]).
    pub pattern: &'static str,
    /// Why the exemption is sound. Shown by `seal-lint --allowlist`.
    pub justification: &'static str,
}

/// The workspace allowlist. Every entry must carry a justification; an
/// exemption nobody can explain should be a suppression comment in the
/// code instead, where review will see it.
pub fn default_allowlist() -> Vec<AllowEntry> {
    vec![
        AllowEntry {
            rule: Rule::NoWallClock,
            pattern: "crates/bench/src/timing.rs",
            justification: "the timing harness measures real elapsed wall time by design",
        },
        AllowEntry {
            rule: Rule::NoWallClock,
            pattern: "crates/bench/src/main.rs",
            justification: "progress reporting on stderr times the run itself, not results",
        },
        AllowEntry {
            rule: Rule::PubItemDocs,
            pattern: "crates/bench/**",
            justification: "bench is a binary crate; its pub items are not a library API",
        },
    ]
}

/// Scope table: which files each rule examines. Patterns are matched with
/// [`path_matches`] against workspace-relative paths.
pub fn default_scope(rule: Rule) -> Vec<&'static str> {
    match rule {
        // Determinism rules sweep every crate: one stray wall-clock read
        // or ambient RNG anywhere poisons byte-identical artifacts.
        Rule::NoWallClock | Rule::NoAmbientRandomness => vec!["**/*.rs"],
        // Every crate's source feeds artifacts somewhere downstream
        // (metrics, JSON/CSV exports, manifest bytes, placement
        // decisions), so unordered iteration is banned workspace-wide
        // rather than by a grow-by-hand module list.
        Rule::NoUnorderedIteration => vec!["crates/*/src/**", "src/**"],
        // Crash-recovery paths must degrade to errors, never panic: a
        // panic during reopen turns a recoverable torn tail into an
        // outage.
        Rule::NoUnwrapInRecovery => vec![
            "crates/lsm-core/src/wal.rs",
            "crates/lsm-core/src/version/**",
            "crates/lsm-core/src/filestore.rs",
            "crates/lsm-core/src/db/scrub.rs",
            "crates/vlog/src/**",
        ],
        // Corruption errors raised during recovery or repair must say
        // where the bad bytes live.
        Rule::ErrorContext => vec![
            "crates/lsm-core/src/wal.rs",
            "crates/lsm-core/src/version/**",
            "crates/lsm-core/src/db/scrub.rs",
            "crates/vlog/src/**",
        ],
        // Byte-accounting code must not silently truncate counters.
        Rule::NoLossyCastInAccounting => {
            vec!["crates/smr-sim/src/stats.rs", "crates/smr-sim/src/obs.rs"]
        }
        Rule::ObsMetricNaming => vec!["crates/**/src/**"],
        // Library crates document their public API. Binary-only trees
        // (main.rs, bin/, benches, tests) are exempt by scope.
        Rule::PubItemDocs => vec![
            "crates/smr-sim/src/**",
            "crates/placement/src/**",
            "crates/lsm-core/src/**",
            "crates/sealdb/src/**",
            "crates/smrdb/src/**",
            "crates/workloads/src/**",
            "crates/frontend/src/**",
            "crates/replica/src/**",
            "crates/shard/src/**",
            "crates/lint/src/**",
            "crates/vlog/src/**",
            "crates/chaos/src/**",
            "src/lib.rs",
        ],
        // The durability-ordering family applies to all crate sources:
        // the trigger names are specific enough that out-of-scope code
        // simply never trips them, and a new crate that grows an ack,
        // repair or recycle path is covered from day one.
        Rule::SyncBeforeAck
        | Rule::CheckpointBeforePointer
        | Rule::FenceBeforeRepair
        | Rule::RecycleAfterFixupsDurable
        | Rule::NoDurabilityInDrop => vec!["crates/*/src/**", "src/**"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_star() {
        assert!(path_matches(
            "crates/bench/src/timing.rs",
            "crates/bench/src/timing.rs"
        ));
        assert!(path_matches(
            "crates/*/src/lib.rs",
            "crates/bench/src/lib.rs"
        ));
        assert!(!path_matches(
            "crates/*/src/lib.rs",
            "crates/bench/src/main.rs"
        ));
        assert!(path_matches("**/wal.rs", "crates/lsm-core/src/wal.rs"));
        assert!(path_matches("**/*.rs", "src/lib.rs"));
    }

    #[test]
    fn double_star_spans_segments() {
        assert!(path_matches(
            "crates/smr-sim/src/**",
            "crates/smr-sim/src/disk.rs"
        ));
        assert!(path_matches(
            "crates/lsm-core/src/version/**",
            "crates/lsm-core/src/version/set.rs"
        ));
        assert!(!path_matches(
            "crates/smr-sim/src/**",
            "crates/sealdb/src/store.rs"
        ));
        // `**` may match zero segments.
        assert!(path_matches("crates/bench/**", "crates/bench/Cargo.toml"));
    }

    #[test]
    fn within_segment_star() {
        assert!(path_matches(
            "**/prop_*.rs",
            "crates/placement/tests/prop_alloc.rs"
        ));
        assert!(!path_matches(
            "**/prop_*.rs",
            "crates/placement/tests/alloc.rs"
        ));
    }

    #[test]
    fn scrub_module_is_in_repair_rule_scopes() {
        // The scrubber's repair path is held to the same standard as
        // crash recovery: no panics, and corruption errors carry
        // file/offset context.
        let scrub = "crates/lsm-core/src/db/scrub.rs";
        for rule in [Rule::NoUnwrapInRecovery, Rule::ErrorContext] {
            assert!(
                default_scope(rule).iter().any(|p| path_matches(p, scrub)),
                "{rule:?} does not cover the scrub module"
            );
        }
    }

    #[test]
    fn every_workspace_crate_is_covered_by_determinism_and_ordering_rules() {
        // The meta-test that replaces grow-by-hand per-crate scope
        // tests: enumerate `crates/*/src` from disk at test time, so a
        // new crate that is not covered by the determinism and
        // ordering rules fails CI the day it lands (the "new crate
        // silently unlinted" failure mode seen at PRs 5–8).
        let workspace = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("crates/lint sits two levels below the workspace root")
            .to_path_buf();
        let mut crates: Vec<String> = std::fs::read_dir(workspace.join("crates"))
            .expect("workspace has a crates/ directory")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("src").is_dir())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .collect();
        crates.sort();
        assert!(
            crates.len() >= 12,
            "expected the full workspace, found only {crates:?}"
        );
        let blanket = [
            Rule::NoWallClock,
            Rule::NoAmbientRandomness,
            Rule::NoUnorderedIteration,
            Rule::SyncBeforeAck,
            Rule::CheckpointBeforePointer,
            Rule::FenceBeforeRepair,
            Rule::RecycleAfterFixupsDurable,
            Rule::NoDurabilityInDrop,
        ];
        for krate in &crates {
            let probe = format!("crates/{krate}/src/lib.rs");
            for rule in blanket {
                assert!(
                    default_scope(rule).iter().any(|p| path_matches(p, &probe)),
                    "{rule:?} does not cover crate `{krate}` ({probe})"
                );
            }
            // Every library crate documents its public API; only the
            // bench binary is exempt (and carries an allowlist entry
            // with a justification).
            if krate != "bench" {
                assert!(
                    default_scope(Rule::PubItemDocs)
                        .iter()
                        .any(|p| path_matches(p, &probe)),
                    "PubItemDocs does not cover crate `{krate}`"
                );
            }
        }
        // The root façade crate too.
        for rule in blanket {
            assert!(
                default_scope(rule)
                    .iter()
                    .any(|p| path_matches(p, "src/lib.rs")),
                "{rule:?} does not cover src/lib.rs"
            );
        }
    }

    #[test]
    fn vlog_crate_is_in_recovery_and_api_rule_scopes() {
        // The value log is a recovery surface (torn-tail scans, segment
        // checkpoint decode) and feeds the BENCH_pr8 artifact: its
        // iteration order and error discipline are held to the same bar
        // as the WAL and manifest, and its public API is documented.
        let vlog = "crates/vlog/src/lib.rs";
        for rule in [
            Rule::NoWallClock,
            Rule::NoAmbientRandomness,
            Rule::NoUnorderedIteration,
            Rule::NoUnwrapInRecovery,
            Rule::ErrorContext,
            Rule::PubItemDocs,
        ] {
            assert!(
                default_scope(rule).iter().any(|p| path_matches(p, vlog)),
                "{rule:?} does not cover the vlog crate"
            );
        }
    }

    #[test]
    fn allowlist_entries_all_carry_justifications() {
        for e in default_allowlist() {
            assert!(
                !e.justification.is_empty(),
                "{:?} lacks justification",
                e.rule
            );
        }
    }
}
