//! seal-lint: workspace-native static analysis for sealdb.
//!
//! Enforces the determinism and recovery-safety invariants the benchmark
//! artifacts depend on — no wall clock or ambient randomness in simulated
//! code, ordered iteration wherever bytes are exported, no panics in
//! crash-recovery paths — with zero external dependencies so the
//! workspace builds offline. See `DESIGN.md` §11 for the rule catalogue.

/// Rule scoping, path matching and the justified allowlist.
pub mod config;
/// Durability-ordering dataflow analysis with call-graph summaries.
pub mod dataflow;
/// Hand-rolled Rust token lexer (no external parser crates).
pub mod lexer;
/// The durability-ordering effect annotation table.
pub mod ordering;
/// Recursive-descent parser producing the item/statement AST.
pub mod parser;
/// The rule catalogue and per-file checking engine.
pub mod rules;

use config::{default_allowlist, default_scope, path_matches, AllowEntry};
use rules::{Finding, Rule};
use std::path::{Path, PathBuf};

/// How a lint run is scoped. The default (`Options::workspace()`) applies
/// the per-rule scope table and the allowlist; fixture tests use
/// `Options::everything()` to run every rule on every file with no
/// exemptions.
#[derive(Clone, Debug)]
pub struct Options {
    /// Ignore the scope table: run every rule on every file.
    pub all_rules_everywhere: bool,
    /// Apply the allowlist from [`config::default_allowlist`].
    pub use_allowlist: bool,
}

impl Options {
    /// Production scoping: per-rule scopes plus the allowlist.
    pub fn workspace() -> Options {
        Options {
            all_rules_everywhere: false,
            use_allowlist: true,
        }
    }

    /// Fixture scoping: all rules, no exemptions.
    pub fn everything() -> Options {
        Options {
            all_rules_everywhere: true,
            use_allowlist: false,
        }
    }
}

/// Directory *names* never descended into: build output, VCS state,
/// and the related-repo reference trees.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "related"];

/// The one fixtures directory the linter skips: its files are known-bad
/// on purpose. The skip is by exact workspace-relative path — a crate
/// cannot hide code from the linter by naming a source dir `fixtures`.
const LINT_FIXTURES_DIR: &str = "crates/lint/tests/fixtures";

/// Lints every `.rs` file under `root`, returning findings sorted by
/// (path, line, rule, message). Paths in findings are `/`-separated and
/// relative to `root`.
///
/// Runs in two passes: pass one reads and parses every file to build
/// the cross-file call-graph summaries the ordering rules consume;
/// pass two checks each file against its applicable rules.
pub fn lint_root(root: &Path, opts: &Options) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let allowlist = if opts.use_allowlist {
        default_allowlist()
    } else {
        Vec::new()
    };
    // Pass 1: parse everything for the summary layer. Summaries come
    // from the whole tree regardless of per-file rule scoping, so a
    // helper in one crate can satisfy a dominance requirement in
    // another.
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push((rel.clone(), std::fs::read_to_string(root.join(rel))?));
    }
    let mut all_fns = Vec::new();
    for (_, src) in &sources {
        let tokens = lexer::lex(src);
        let test_mask = rules::mask_test_code(&tokens);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| {
                !matches!(
                    tokens[i].kind,
                    lexer::TokenKind::Comment | lexer::TokenKind::DocComment
                ) && !test_mask[i]
            })
            .collect();
        all_fns.extend(parser::parse(&tokens, &code));
    }
    let summaries = dataflow::summarize(&all_fns);
    // Pass 2: per-file rule checks.
    let mut findings = Vec::new();
    for (rel, src) in &sources {
        let applicable = applicable_rules(rel, opts, &allowlist);
        if applicable.is_empty() {
            continue;
        }
        findings.extend(rules::check_file(rel, src, &applicable, &summaries));
    }
    findings.sort();
    Ok(findings)
}

/// Rules that apply to the file at workspace-relative path `rel`.
fn applicable_rules(rel: &str, opts: &Options, allowlist: &[AllowEntry]) -> Vec<Rule> {
    Rule::ALL
        .iter()
        .copied()
        .filter(|&rule| {
            let in_scope = opts.all_rules_everywhere
                || default_scope(rule).iter().any(|pat| path_matches(pat, rel));
            let allowed = allowlist
                .iter()
                .any(|e| e.rule == rule && path_matches(e.pattern, rel));
            in_scope && !allowed
        })
        .collect()
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            let rel = path
                .strip_prefix(root)
                .map(|r| {
                    r.components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/")
                })
                .unwrap_or_default();
            if rel == LINT_FIXTURES_DIR {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Renders findings one per line in the stable `path:line: rule: message`
/// format used by the golden fixture file.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as deterministic JSON: stable field order
/// (`path`, `line`, `rule`, `message`), findings in their sorted
/// order, a trailing `count`, and a final newline. Byte-identical
/// across runs for identical findings.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        json_string(&mut out, &f.path);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, f.rule.name());
        out.push_str(",\"message\":");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    out.push_str("],\"count\":");
    out.push_str(&findings.len().to_string());
    out.push_str("}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// One parsed `--baseline` entry: a known finding being suppressed,
/// with a written justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Path pattern matched with [`config::path_matches`].
    pub pattern: String,
    /// The rule being suppressed.
    pub rule: rules::Rule,
    /// Why the suppression is sound. Must be non-empty.
    pub justification: String,
}

/// Parses a baseline file: one `path-pattern: rule-name: justification`
/// entry per line; `#` comments and blank lines are skipped. Every
/// entry must name a real rule and carry a non-empty justification.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ':');
        let (Some(pattern), Some(rule_name), Some(justification)) =
            (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `path-pattern: rule-name: justification`",
                lineno + 1
            ));
        };
        let rule_name = rule_name.trim();
        let Some(rule) = rules::Rule::from_name(rule_name) else {
            return Err(format!(
                "baseline line {}: unknown rule `{rule_name}`",
                lineno + 1
            ));
        };
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!(
                "baseline line {}: entry for `{rule_name}` lacks a justification",
                lineno + 1
            ));
        }
        entries.push(BaselineEntry {
            pattern: pattern.trim().to_string(),
            rule,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// Applies a baseline: findings matched by an entry are suppressed.
/// Returns the surviving findings and the (0-based) indices of entries
/// that matched nothing — stale entries a CI run should warn about.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &[BaselineEntry],
) -> (Vec<Finding>, Vec<usize>) {
    let mut used = vec![false; baseline.len()];
    let kept: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, e) in baseline.iter().enumerate() {
                if e.rule == f.rule && path_matches(&e.pattern, &f.path) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    let stale = (0..baseline.len()).filter(|&i| !used[i]).collect();
    (kept, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicable_rules_respect_scope_and_allowlist() {
        let opts = Options::workspace();
        let allow = default_allowlist();
        // timing.rs: wall clock allowed, ambient randomness still banned.
        let rules = applicable_rules("crates/bench/src/timing.rs", &opts, &allow);
        assert!(!rules.contains(&Rule::NoWallClock));
        assert!(rules.contains(&Rule::NoAmbientRandomness));
        // disk.rs: ordered-iteration rule in force.
        let rules = applicable_rules("crates/smr-sim/src/disk.rs", &opts, &allow);
        assert!(rules.contains(&Rule::NoUnorderedIteration));
        assert!(rules.contains(&Rule::NoWallClock));
        // wal.rs: recovery rules in force.
        let rules = applicable_rules("crates/lsm-core/src/wal.rs", &opts, &allow);
        assert!(rules.contains(&Rule::NoUnwrapInRecovery));
        assert!(rules.contains(&Rule::ErrorContext));
    }

    #[test]
    fn everything_mode_ignores_scope_and_allowlist() {
        let opts = Options::everything();
        let rules = applicable_rules("crates/bench/src/timing.rs", &opts, &[]);
        assert_eq!(rules.len(), Rule::ALL.len());
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let findings = vec![rules::Finding {
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            rule: Rule::NoWallClock,
            message: "a \"quoted\"\nmessage".to_string(),
        }];
        let a = render_json(&findings);
        let b = render_json(&findings);
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"findings\":[{\"path\":\"crates/x/src/lib.rs\",\"line\":3,\
             \"rule\":\"no-wall-clock\",\"message\":\"a \\\"quoted\\\"\\nmessage\"}],\
             \"count\":1}\n"
        );
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}\n");
    }

    #[test]
    fn baseline_parses_and_suppresses() {
        let text = "# known findings\n\
                    crates/x/src/*.rs: no-wall-clock: migration in flight\n";
        let entries = parse_baseline(text).unwrap();
        assert_eq!(entries.len(), 1);
        let findings = vec![
            rules::Finding {
                path: "crates/x/src/lib.rs".to_string(),
                line: 1,
                rule: Rule::NoWallClock,
                message: "m".to_string(),
            },
            rules::Finding {
                path: "crates/y/src/lib.rs".to_string(),
                line: 1,
                rule: Rule::NoWallClock,
                message: "m".to_string(),
            },
        ];
        let (kept, stale) = apply_baseline(findings, &entries);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/y/src/lib.rs");
        assert!(stale.is_empty());
    }

    #[test]
    fn baseline_rejects_missing_justification_and_unknown_rules() {
        assert!(parse_baseline("crates/x/**: no-wall-clock:").is_err());
        assert!(parse_baseline("crates/x/**: no-wall-clock:   ").is_err());
        assert!(parse_baseline("crates/x/**: not-a-rule: because").is_err());
        assert!(parse_baseline("just-one-field").is_err());
    }

    #[test]
    fn baseline_reports_stale_entries() {
        let entries = parse_baseline("crates/gone/**: no-wall-clock: was removed\n").unwrap();
        let (kept, stale) = apply_baseline(Vec::new(), &entries);
        assert!(kept.is_empty());
        assert_eq!(stale, [0]);
    }
}
